//! The one-line backend switch: [`BackendBuilder`].
//!
//! Every deployment shape of the reproduction — a single in-process
//! [`DataServer`], an N-node brokering [`Fabric`], a disk-backed
//! [`DurableServer`] — is built through the
//! same builder and handed back as an `Arc<dyn Backend>`, so swapping a
//! scenario from one node to N (or onto disk) is literally one changed
//! line:
//!
//! ```
//! use exacml::prelude::*;
//!
//! let local = BackendBuilder::local().build();
//! let cluster = BackendBuilder::fabric(3).build(); // ← the only change
//! assert_eq!(local.backend_kind(), "data-server");
//! assert_eq!(cluster.backend_kind(), "fabric-3");
//! ```
//!
//! For the unconfigured cases, `exacml_plus` also ships
//! `<dyn Backend>::local()` / `<dyn Backend>::fabric(n)` shorthands.

use exacml_durable::{
    DurableConfig, DurableServer, ReplicatedConfig, ReplicatedFabric, TopologyPreset,
};
use exacml_plus::{
    Backend, DataServer, ExacmlError, Fabric, FabricConfig, MergeOptions, ServerConfig,
};
use exacml_simnet::Topology;
use std::path::PathBuf;
use std::sync::Arc;

use crate::session::Session;

/// Which deployment shape to build.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    /// One in-process data server.
    Single,
    /// N data-server nodes behind the routing broker.
    Fabric(usize),
    /// One data server wrapped in WAL + snapshot persistence at this path.
    Durable(PathBuf),
    /// N durable nodes behind the broker, with WAL shipping and failover,
    /// rooted at this path.
    Replicated(usize, PathBuf),
}

/// Builds any eXACML+ backend behind one API.
///
/// Constructors pick the deployment shape and a sensible topology; the
/// `with_*` methods refine seeds, link topology and merge behaviour; and
/// [`BackendBuilder::build`] returns the backend as an `Arc<dyn Backend>`
/// ready for scenario code, [`Session`]s, feeds and benches.
#[derive(Debug, Clone)]
pub struct BackendBuilder {
    shape: Shape,
    topology: Topology,
    /// The named preset `topology` was constructed from — what a durable
    /// store persists, since an arbitrary link table has no name on disk.
    preset: TopologyPreset,
    seed: u64,
    deploy_on_partial_result: bool,
    merge: MergeOptions,
    share_plans: bool,
    replication: usize,
}

impl BackendBuilder {
    fn new(shape: Shape, preset: TopologyPreset) -> Self {
        BackendBuilder {
            shape,
            topology: preset.topology(),
            preset,
            seed: 42,
            deploy_on_partial_result: false,
            merge: MergeOptions::default(),
            share_plans: true,
            replication: 1,
        }
    }

    /// A single in-process data server on loopback links (unit tests,
    /// quickstarts).
    #[must_use]
    pub fn local() -> Self {
        BackendBuilder::new(Shape::Single, TopologyPreset::Local)
    }

    /// A single data server on the paper's coordinator/broker/server
    /// testbed links.
    #[deprecated(note = "use `BackendBuilder::local().topology(TopologyPreset::PaperTestbed)`")]
    #[must_use]
    pub fn server() -> Self {
        BackendBuilder::local().topology(TopologyPreset::PaperTestbed)
    }

    /// An N-node brokering fabric on loopback links.
    #[must_use]
    pub fn fabric(nodes: usize) -> Self {
        BackendBuilder::new(Shape::Fabric(nodes.max(1)), TopologyPreset::Local)
    }

    /// An N-node fabric on the paper's testbed links.
    #[deprecated(note = "use `BackendBuilder::fabric(n).topology(TopologyPreset::PaperTestbed)`")]
    #[must_use]
    pub fn paper_testbed(nodes: usize) -> Self {
        BackendBuilder::fabric(nodes).topology(TopologyPreset::PaperTestbed)
    }

    /// An N-node fabric whose client-facing hop crosses a WAN (the paper's
    /// "migrate to a commercial cloud" what-if).
    #[deprecated(note = "use `BackendBuilder::fabric(n).topology(TopologyPreset::PublicCloud)`")]
    #[must_use]
    pub fn public_cloud(nodes: usize) -> Self {
        BackendBuilder::fabric(nodes).topology(TopologyPreset::PublicCloud)
    }

    /// Pick the deployment topology by its named preset — **the** way to
    /// choose where a backend's simulated links come from, orthogonal to
    /// the shape constructor:
    ///
    /// ```
    /// use exacml::prelude::*;
    ///
    /// let testbed = BackendBuilder::fabric(3).topology(TopologyPreset::PaperTestbed).build();
    /// let cloud = BackendBuilder::fabric(3).topology(TopologyPreset::PublicCloud).build();
    /// assert_eq!(testbed.backend_kind(), "fabric-3");
    /// assert_eq!(cloud.backend_kind(), "fabric-3");
    /// ```
    ///
    /// This replaces the old per-preset constructor fan
    /// (`server()` / `paper_testbed(n)` / `public_cloud(n)`), which survive
    /// as deprecated wrappers. Unlike
    /// [`with_topology`](BackendBuilder::with_topology) (a raw link-table
    /// override), the preset has a *name*, so durable stores can persist it
    /// and recover onto the same topology.
    #[must_use]
    pub fn topology(mut self, preset: TopologyPreset) -> Self {
        self.topology = preset.topology();
        self.preset = preset;
        self
    }

    /// A single data server wrapped in WAL + snapshot persistence rooted at
    /// `path`, on loopback links: the store is created when the directory
    /// holds none, **recovered** when it does — so restarting a process
    /// with the same builder line brings policies, live handles and the
    /// audit trail back (see `docs/RECOVERY.md`).
    ///
    /// ```
    /// use exacml::prelude::*;
    /// use exacml::exacml_dsms::Schema;
    ///
    /// let dir = std::env::temp_dir().join(format!("exacml-doc-durable-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    ///
    /// {
    ///     let backend = BackendBuilder::durable(&dir).build();
    ///     assert_eq!(backend.backend_kind(), "durable-server");
    ///     backend.register_stream("weather", Schema::weather_example())?;
    ///     backend.load_policy(
    ///         StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build(),
    ///     )?;
    /// } // ← process "crashes": the backend is dropped with no shutdown
    ///
    /// let recovered = BackendBuilder::durable(&dir).build(); // same line = recovery
    /// assert_eq!(recovered.policy_count(), 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), exacml::prelude::ExacmlError>(())
    /// ```
    ///
    /// Note on builder knobs: when the directory already holds a store,
    /// **recovery uses the configuration persisted in its `meta.json`** —
    /// the builder's [`with_seed`](BackendBuilder::with_seed),
    /// [`deploy_on_partial_result`](BackendBuilder::deploy_on_partial_result)
    /// and [`with_topology`](BackendBuilder::with_topology) settings apply
    /// only when the store is being *created* (and a custom `with_topology`
    /// link table is never persisted — the store records the builder's
    /// named preset). To reopen a store under different knobs, use
    /// [`DurableServer::recover_with`](exacml_durable::DurableServer::recover_with)
    /// directly.
    #[must_use]
    pub fn durable(path: impl Into<PathBuf>) -> Self {
        BackendBuilder::new(Shape::Durable(path.into()), TopologyPreset::Local)
    }

    /// An N-node **replicated** durable fabric rooted at `path`, on
    /// loopback links: every node journals to its own WAL + snapshot store,
    /// the journal's bytes are shipped to K peer hosts
    /// ([`BackendBuilder::replicate`], default K = 1), and when a host dies
    /// a surviving peer replays the shipped journal and re-mints the dead
    /// node's handles at their recorded URIs — scenario code keeps its
    /// grants across a node loss without changing a line.
    ///
    /// The directories are created fresh; `path` must not already hold
    /// stores.
    #[must_use]
    pub fn replicated(nodes: usize, path: impl Into<PathBuf>) -> Self {
        BackendBuilder::new(Shape::Replicated(nodes.max(1), path.into()), TopologyPreset::Local)
    }

    /// Replication factor K for the replicated shape: each node's journal
    /// is mirrored onto K peer hosts (clamped to `nodes - 1`; 0 disables
    /// replication and with it failover). Ignored by the other shapes.
    #[must_use]
    pub fn replicate(mut self, k: usize) -> Self {
        self.replication = k;
        self
    }

    /// Override the deployment topology the simulated links are drawn from.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Override the base seed (node and link seeds derive from it).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Deploy even when merging raised partial-result warnings (the
    /// warnings are still returned to the caller — Section 3.5).
    #[must_use]
    pub fn deploy_on_partial_result(mut self, deploy: bool) -> Self {
        self.deploy_on_partial_result = deploy;
        self
    }

    /// How the PEP merges the policy graph with a user's customised query
    /// (Section 3.1). The default is the *safe* combination:
    ///
    /// * **Projections — safe intersection vs literal union.** With
    ///   `map_union: false` (default) merged map operators keep only the
    ///   attributes *both* sides project — the user never sees an attribute
    ///   the policy withheld, and asking for one raises a PR warning
    ///   instead of leaking it. `map_union: true` applies the paper's
    ///   literal `S3 = S1 ∪ S2` rule, which reproduces the paper's algebra
    ///   verbatim but widens a projection past what one side declared —
    ///   use it only for fidelity experiments, never where the policy's
    ///   projection is the enforcement boundary.
    /// * **Filters** are always conjoined (an intersection, inherently
    ///   safe); `simplify_filters: false` keeps the raw concatenation the
    ///   paper's baseline measures.
    ///
    /// Merge options shape the merged graph and therefore its canonical
    /// signature: backends only share a compiled plan between grants whose
    /// *merged* graphs agree, so the safety of plan sharing is independent
    /// of the options chosen here.
    #[must_use]
    pub fn merge_options(mut self, merge: MergeOptions) -> Self {
        self.merge = merge;
        self
    }

    /// Share compiled operator subgraphs across overlapping grants
    /// (default `true`): grants whose core graphs canonicalize identically
    /// ride one deployment and each pays only a per-grant residual at
    /// fan-out. `false` deploys one graph per grant — the unmerged
    /// baseline the `merge_scale` benchmark measures against.
    #[must_use]
    pub fn share_plans(mut self, share: bool) -> Self {
        self.share_plans = share;
        self
    }

    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            merge: self.merge,
            deploy_on_partial_result: self.deploy_on_partial_result,
            topology: self.topology.clone(),
            seed: self.seed,
            share_plans: self.share_plans,
            ..ServerConfig::default()
        }
    }

    fn durable_config(&self) -> DurableConfig {
        DurableConfig {
            topology: self.preset,
            deploy_on_partial_result: self.deploy_on_partial_result,
            seed: self.seed,
            map_union: self.merge.map_union,
            simplify_filters: self.merge.simplify_filters,
            share_plans: self.share_plans,
            ..DurableConfig::default()
        }
    }

    /// Build the backend, surfacing durability failures (an unreadable or
    /// inconsistent store) as errors. The in-memory shapes cannot fail.
    ///
    /// # Errors
    /// [`ExacmlError::Durability`] when a durable store cannot be created
    /// or recovered.
    pub fn try_build(self) -> Result<Arc<dyn Backend>, ExacmlError> {
        Ok(match self.shape {
            Shape::Single => Arc::new(DataServer::new(self.server_config())),
            Shape::Fabric(nodes) => {
                let config = FabricConfig::new(nodes, self.topology.clone())
                    .with_seed(self.seed)
                    .with_server_template(self.server_config());
                Arc::new(Fabric::new(config))
            }
            Shape::Durable(ref path) => {
                let config = self.durable_config();
                Arc::new(DurableServer::open(path, config)?)
            }
            Shape::Replicated(nodes, ref path) => {
                let config = ReplicatedConfig::new(nodes, path)
                    .with_topology(self.topology.clone())
                    .with_seed(self.seed)
                    .with_replication(self.replication)
                    .with_durable_template(self.durable_config());
                Arc::new(ReplicatedFabric::create(config)?)
            }
        })
    }

    /// Build the backend.
    ///
    /// # Panics
    /// Panics when a durable store cannot be created or recovered (use
    /// [`BackendBuilder::try_build`] to handle that as an error).
    #[must_use]
    pub fn build(self) -> Arc<dyn Backend> {
        self.try_build().expect("backend store is unusable")
    }

    /// Build the backend and open a [`Session`] for `subject` on it in one
    /// step.
    #[must_use]
    pub fn session(self, subject: impl Into<String>) -> Session {
        Session::new(self.build(), subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_dsms::Schema;
    use exacml_plus::StreamPolicyBuilder;
    use exacml_xacml::Request;

    #[test]
    fn builder_shapes_and_kinds() {
        assert_eq!(BackendBuilder::local().build().backend_kind(), "data-server");
        assert_eq!(
            BackendBuilder::local().topology(TopologyPreset::PaperTestbed).build().backend_kind(),
            "data-server"
        );
        assert_eq!(BackendBuilder::fabric(4).build().backend_kind(), "fabric-4");
        assert_eq!(
            BackendBuilder::fabric(2).topology(TopologyPreset::PaperTestbed).build().backend_kind(),
            "fabric-2"
        );
        assert_eq!(
            BackendBuilder::fabric(2).topology(TopologyPreset::PublicCloud).build().backend_kind(),
            "fabric-2"
        );
        // A zero-node fabric is clamped to one node rather than panicking.
        assert_eq!(BackendBuilder::fabric(0).build().backend_kind(), "fabric-1");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_preset_constructors_still_build_the_same_backends() {
        // The old method fan survives as thin wrappers over `.topology()`.
        assert_eq!(BackendBuilder::server().build().backend_kind(), "data-server");
        assert_eq!(BackendBuilder::paper_testbed(2).build().backend_kind(), "fabric-2");
        assert_eq!(BackendBuilder::public_cloud(2).build().backend_kind(), "fabric-2");
    }

    #[test]
    fn topology_preset_reaches_the_node_configs() {
        // The preset's link table (not loopback) must reach the built
        // backend: a WAN-preset grant pays a visibly larger brokering
        // round trip than a loopback one.
        let slow = BackendBuilder::fabric(1).topology(TopologyPreset::PublicCloud).build();
        let fast = BackendBuilder::fabric(1).build();
        for backend in [&slow, &fast] {
            backend.register_stream("weather", Schema::weather_example()).unwrap();
            backend
                .load_policy(
                    StreamPolicyBuilder::new("p", "weather")
                        .subject("LTA")
                        .filter("rainrate > 5")
                        .build(),
                )
                .unwrap();
        }
        let slow_hop = slow
            .handle_request(&Request::subscribe("LTA", "weather"), None)
            .unwrap()
            .broker_network;
        let fast_hop = fast
            .handle_request(&Request::subscribe("LTA", "weather"), None)
            .unwrap()
            .broker_network;
        assert!(
            slow_hop > fast_hop * 10,
            "WAN hop {slow_hop:?} should dwarf loopback hop {fast_hop:?}"
        );
    }

    #[test]
    fn durable_shape_builds_creates_and_recovers_a_store() {
        let dir =
            std::env::temp_dir().join(format!("exacml-builder-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let backend = BackendBuilder::durable(&dir).build();
            assert_eq!(backend.backend_kind(), "durable-server");
            backend.register_stream("weather", Schema::weather_example()).unwrap();
        }
        // The same builder line on an existing store recovers it.
        let recovered = BackendBuilder::durable(&dir).try_build().unwrap();
        let granted = recovered
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .and_then(|_| recovered.handle_request(&Request::subscribe("LTA", "weather"), None));
        assert!(granted.is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replicated_shape_builds_and_survives_a_host_kill_through_the_trait() {
        let dir =
            std::env::temp_dir().join(format!("exacml-builder-replicated-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = BackendBuilder::replicated(3, &dir).replicate(1).with_seed(11).build();
        assert_eq!(backend.backend_kind(), "fabric-replicated");
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(backend.handle_is_live(granted.handle()));
        assert!(backend.health().degraded_nodes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_and_sharing_knobs_reach_every_shape() {
        use exacml_plus::MergeOptions;
        // share_plans(false): each overlapping grant deploys its own graph.
        for builder in [BackendBuilder::local(), BackendBuilder::fabric(1)] {
            let backend = builder
                .merge_options(MergeOptions { map_union: false, simplify_filters: false })
                .share_plans(false)
                .build();
            backend.register_stream("weather", Schema::weather_example()).unwrap();
            backend
                .load_policy(
                    StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build(),
                )
                .unwrap();
            for subject in ["a", "b", "c"] {
                backend.handle_request(&Request::subscribe(subject, "weather"), None).unwrap();
            }
            assert_eq!(backend.live_plans(), 3);
            assert_eq!(backend.live_deployments(), 3);
        }
        // The default shares: same scenario, one compiled plan.
        let shared = BackendBuilder::local().build();
        shared.register_stream("weather", Schema::weather_example()).unwrap();
        shared
            .load_policy(StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build())
            .unwrap();
        for subject in ["a", "b", "c"] {
            shared.handle_request(&Request::subscribe(subject, "weather"), None).unwrap();
        }
        assert_eq!(shared.live_plans(), 1);
        assert_eq!(shared.live_deployments(), 1);
    }

    #[test]
    fn partial_result_deployments_are_builder_controlled() {
        for backend in [BackendBuilder::local(), BackendBuilder::fabric(2)]
            .map(|b| b.deploy_on_partial_result(true).with_seed(7).build())
        {
            backend.register_stream("weather", Schema::weather_example()).unwrap();
            backend
                .load_policy(
                    StreamPolicyBuilder::new("p", "weather")
                        .subject("LTA")
                        .filter("rainrate > 5")
                        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
                        .build(),
                )
                .unwrap();
            // Narrowing the visible attributes raises a PR warning; the
            // builder told both backends to deploy anyway.
            let query = exacml_plus::UserQuery::for_stream("weather")
                .with_filter("rainrate > 50")
                .with_map(["samplingtime", "rainrate"]);
            let granted = backend
                .handle_request(&Request::subscribe("LTA", "weather"), Some(&query))
                .unwrap();
            assert!(!granted.response.warnings.is_empty());
            assert!(backend.handle_is_live(granted.handle()));
        }
    }
}
