pub use exacml_plus; pub use exacml_dsms; pub use exacml_xacml; pub use exacml_expr; pub use exacml_simnet; pub use exacml_workload;
