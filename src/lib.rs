//! eXACML+ umbrella crate: one API over every deployment shape.
//!
//! This crate is the front door of the reproduction of *"Cloud and the
//! City: Facilitating Flexible Access Control over Data Streams"* (Wang,
//! Dinh, Lim, Datta — SDMW 2012). It re-exports every subsystem of the
//! workspace **and** carries the ergonomic entry layer most code should
//! start from:
//!
//! ```
//! use exacml::prelude::*;
//! use exacml::exacml_dsms::Schema;
//!
//! // One line decides the deployment shape: a single in-process server …
//! let backend = BackendBuilder::local().build();
//! // … or an N-node brokering fabric: `BackendBuilder::fabric(3).build()`.
//!
//! backend.register_stream("weather", Schema::weather_example())?;
//! backend.load_policy(
//!     StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
//!         .subject("LTA")
//!         .filter("rainrate > 5")
//!         .build(),
//! )?;
//!
//! let session = Session::new(backend.clone(), "LTA");
//! let granted = session.request_access("weather", None)?;
//! let mut subscription = session.subscribe("weather")?;
//! assert!(backend.handle_is_live(granted.handle()));
//! drop(session); // RAII: every grant the session held is released
//! assert_eq!(backend.live_deployments(), 0);
//! # Ok::<(), exacml::prelude::ExacmlError>(())
//! ```
//!
//! # The backend trait layer
//!
//! Every backend — [`DataServer`](exacml_plus::DataServer) for one node,
//! [`Fabric`](exacml_plus::Fabric) for N nodes behind the routing broker,
//! [`DurableServer`](exacml_durable::DurableServer) for a single node whose
//! state survives a restart — implements the object-safe trait stack of
//! [`exacml_plus::backend`]:
//!
//! * [`StreamBackend`](exacml_plus::StreamBackend) — register streams, push
//!   tuples (single or batched), subscribe to granted handles via the
//!   backend-agnostic [`Subscription`](exacml_plus::Subscription);
//! * [`AccessControl`](exacml_plus::AccessControl) — the Section 3.2
//!   request workflow returning a unified
//!   [`BackendResponse`](exacml_plus::BackendResponse), plus release;
//! * [`PolicyAdmin`](exacml_plus::PolicyAdmin) — Section 3.3 policy
//!   load/remove/update/count (fabric-wide propagation included);
//! * [`Backend`](exacml_plus::Backend) — the composition, adding the
//!   node-tagged audit trail and deployment observability.
//!
//! Scenario code, tests, feeds and benches written against `&dyn Backend`
//! (or a generic `B: Backend + ?Sized`) run unchanged on any shape —
//! `tests/backend_conformance.rs` executes one suite against all four,
//! and `examples/backend_swap.rs` is the same scenario twice with only the
//! builder line changed.
//!
//! [`BackendBuilder`] constructs every shape (`local()`, `fabric(n)`,
//! `durable(path)`, `replicated(n, path)`), with the deployment topology
//! chosen orthogonally by `.topology(TopologyPreset)` — e.g.
//! `BackendBuilder::fabric(3).topology(TopologyPreset::PaperTestbed)`;
//! [`Session`] owns a subject's identity and live grants and releases them
//! RAII-style on drop.
//!
//! # Durability
//!
//! [`exacml_durable`] adds the persistence layer: `BackendBuilder::
//! durable(path)` wraps the data server in a write-ahead log + snapshot
//! store over plain `std::fs`, and the same builder line *recovers* the
//! store after a crash — policies, live handles (same URIs), guard state
//! and the audit trail come back; `examples/durable_restart.rs` shows the
//! kill/recover cycle. `BackendBuilder::replicated(n, path)` goes further:
//! a fabric of N durable nodes whose journals ship to K peer hosts, so a
//! *node loss* (not just a restart) keeps every acknowledged grant — a
//! surviving peer replays the shipped journal and re-mints the dead node's
//! handles at their recorded URIs ([`exacml_durable::ReplicatedFabric`]).
//! The record format and crash-consistency guarantees are specified in
//! `docs/RECOVERY.md`; where every layer sits is mapped in
//! `docs/ARCHITECTURE.md`.
//!
//! # Migrating from the `ClientInterface` entry point
//!
//! Before the unified API the entry point was the paper-faithful chain
//! `ClientInterface → Proxy → DataServer` (and, separately, `Fabric` with
//! its own near-duplicate method surface). That chain still exists — it
//! models the Figure 3 deployment entities and their network hops, and the
//! evaluation figures are measured through it — but it is no longer the
//! recommended way to *use* the system:
//!
//! * `ClientInterface::request_access(subject, stream, query)` →
//!   [`Session::request_access`] (the session carries the subject) — or,
//!   in one step with the subscription, `session.subscribe(Query::on(…))`;
//! * hand-written `<Query>` XML documents → the typed [`Query`] builder
//!   (`Query::on("weather").filter("rainrate > 30").select([…])`). Raw
//!   wire-form XML is accepted only through [`Query::from_xml`]; every
//!   other path is typed;
//! * `ClientInterface::release(subject, stream)` → [`Session::release`]
//!   (or just drop the session);
//! * `server.subscribe(&handle)` / `fabric.subscribe(&handle)` →
//!   [`Session::subscribe`] (any `impl Into<Query>`: a bare stream name
//!   attaches to an existing grant, a structured [`Query`] requests and
//!   attaches) returning a [`QuerySubscription`] that carries the shared
//!   [plan id](exacml_plus::PlanId) and the NR/PR warnings on top of the
//!   transport [`Subscription`](exacml_plus::Subscription) it derefs to —
//!   or `backend.subscribe(&handle)` through the trait for the raw
//!   transport;
//! * `feed.pump_into(&engine, …)` / `feed.pump_into_fabric(&fabric, …)` →
//!   one generic `feed.pump_into(&backend, …)` accepting any
//!   [`StreamBackend`](exacml_plus::StreamBackend);
//! * the per-preset builder constructors `BackendBuilder::server()`,
//!   `BackendBuilder::paper_testbed(n)` and
//!   `BackendBuilder::public_cloud(n)` are `#[deprecated]`: the topology is
//!   an orthogonal axis now, picked by name on any shape —
//!   `BackendBuilder::local().topology(TopologyPreset::PaperTestbed)`,
//!   `BackendBuilder::fabric(n).topology(TopologyPreset::PublicCloud)`,
//!   and so on (see [`BackendBuilder::topology`]).
//!
//! # Workspace map
//!
//! The member crates keep their own identities:
//!
//! * [`exacml_plus`] — the framework core: obligation ⇄ query-graph
//!   translation, NR/PR merge analysis, graph management, proxy, data
//!   server, the brokering fabric, and the unified backend trait layer
//!   (package `exacml-plus`, `crates/core`).
//! * [`exacml_durable`] — the persistence subsystem: WAL, snapshots, and
//!   the `DurableServer` backend (package `exacml-durable`,
//!   `crates/durable`).
//! * [`exacml_dsms`] — the from-scratch stream engine: Aurora-style query
//!   graphs, operators, sliding windows, StreamSQL (package `exacml-dsms`).
//! * [`exacml_xacml`] — the XACML policy model, repository, XML round-trip,
//!   and PDP (package `exacml-xacml`).
//! * [`exacml_expr`] — the filter-expression algebra: parsing, DNF,
//!   simplification, and the NR/PR pairwise check (package `exacml-expr`).
//! * [`exacml_simnet`] — the simulated network used by the experiments
//!   (package `exacml-simnet`).
//! * [`exacml_workload`] — Section 4.2 workload generation (package
//!   `exacml-workload`).
//! * [`exacml_bench`] — experiment harnesses for the paper's figures and
//!   tables (package `exacml-bench`).
//!
//! Package names are hyphenated; the re-exports use the underscore form
//! rustc gives each library target.

pub use exacml_bench;
pub use exacml_dsms;
pub use exacml_durable;
pub use exacml_expr;
pub use exacml_plus;
pub use exacml_simnet;
pub use exacml_telemetry;
pub use exacml_workload;
pub use exacml_xacml;

pub mod builder;
pub mod query;
pub mod session;

pub use builder::BackendBuilder;
pub use query::{Query, QuerySubscription};
pub use session::Session;

/// Everything a scenario needs, importable in one line.
///
/// Brings in the entry layer ([`BackendBuilder`], [`Session`]), the backend
/// trait stack and its unified types, the durable backend, the policy/query
/// authoring helpers, the error type, and the workload feeds:
///
/// ```
/// use exacml::prelude::*;
/// use exacml::exacml_dsms::Schema;
///
/// let backend = BackendBuilder::local().build();
/// backend.register_stream("weather", Schema::weather_example())?;
/// backend.load_policy(
///     StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build(),
/// )?;
///
/// let session = BackendBuilder::local().session("LTA"); // or Session::new(backend, "LTA")
/// assert_eq!(session.subject(), "LTA");
/// assert_eq!(backend.policy_count(), 1);
/// # Ok::<(), exacml::prelude::ExacmlError>(())
/// ```
pub mod prelude {
    pub use crate::builder::BackendBuilder;
    pub use crate::query::{Query, QuerySubscription};
    pub use crate::session::Session;
    pub use exacml_dsms::{AggFunc, AggSpec, WindowSpec};
    pub use exacml_durable::{
        DurableConfig, DurableServer, FailMode, RecoveryReport, ReplicatedConfig, ReplicatedFabric,
        TopologyPreset, WalFailpoint,
    };
    pub use exacml_plus::{
        AccessControl, AccessResponse, Backend, BackendHealth, BackendResponse, DataServer,
        ExacmlError, Fabric, FabricConfig, MergeOptions, PlanId, PolicyAdmin, RetryPolicy,
        RobustnessStats, ServerConfig, StreamBackend, StreamBatch, StreamPolicyBuilder,
        Subscription, TaggedAuditEvent, UserQuery, Warning, WarningKind,
    };
    pub use exacml_simnet::{Fault, FaultPlan, NodeId, TimedFault, Topology};
    pub use exacml_telemetry::{Metric, Stage, StageSnapshot, Telemetry, TelemetrySnapshot};
    pub use exacml_workload::{GpsFeed, WeatherFeed};
    pub use exacml_xacml::{Policy, Request};
}
