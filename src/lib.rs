//! eXACML+ umbrella crate.
//!
//! Re-exports every subsystem of the workspace under one roof so downstream
//! users (and the integration tests under `tests/`) can depend on a single
//! crate. The member crates keep their own identities:
//!
//! * [`exacml_plus`] — the framework core: obligation ⇄ query-graph
//!   translation, NR/PR merge analysis, graph management, proxy, data server,
//!   and the Section 3.4 attack model (package `exacml-plus`, `crates/core`).
//! * [`exacml_dsms`] — the from-scratch stream engine: Aurora-style query
//!   graphs, operators, sliding windows, StreamSQL (package `exacml-dsms`).
//! * [`exacml_xacml`] — the XACML policy model, repository, XML round-trip,
//!   and PDP (package `exacml-xacml`).
//! * [`exacml_expr`] — the filter-expression algebra: parsing, DNF,
//!   simplification, and the NR/PR pairwise check (package `exacml-expr`).
//! * [`exacml_simnet`] — the simulated network used by the experiments
//!   (package `exacml-simnet`).
//! * [`exacml_workload`] — Section 4.2 workload generation (package
//!   `exacml-workload`).
//! * [`exacml_bench`] — experiment harnesses for the paper's figures and
//!   tables (package `exacml-bench`).
//!
//! Package names are hyphenated; the re-exports below use the underscore
//! form rustc gives each library target.

pub use exacml_bench;
pub use exacml_dsms;
pub use exacml_expr;
pub use exacml_plus;
pub use exacml_simnet;
pub use exacml_workload;
pub use exacml_xacml;
