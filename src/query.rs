//! The typed query layer: describe what you want from a stream without
//! writing wire-form XML.
//!
//! [`Query`] is the front-door type [`Session::subscribe`] accepts (via
//! `impl Into<Query>`). It comes in three shapes:
//!
//! * **Bare stream name** — `session.subscribe("weather")` attaches to the
//!   grant the session *already* holds on that stream and never issues a
//!   new access request ([`ExacmlError::UnknownHandle`] when there is
//!   none). This is the pre-existing `Session::subscribe` contract,
//!   preserved verbatim.
//! * **Structured** — `Query::on("weather").filter("rainrate > 30")`
//!   requests access (the Section 3.2 workflow: PDP decision, NR/PR merge
//!   analysis, shared-plan deployment) and subscribes in one step.
//! * **Wire form** — [`Query::from_xml`] parses the `<Query>` document a
//!   remote client ships (the same encoding the durable WAL journals), for
//!   callers that really do hold raw XML. Everything else should use the
//!   builder.
//!
//! The result is a [`QuerySubscription`]: the transport
//! [`Subscription`] plus the grant's identity —
//! which shared plan it rides ([`QuerySubscription::plan`]) and the NR/PR
//! [`Warning`]s the merge raised.
//!
//! ```
//! use exacml::prelude::*;
//! use exacml::exacml_dsms::Schema;
//!
//! let backend = BackendBuilder::local().build();
//! backend.register_stream("weather", Schema::weather_example())?;
//! backend.load_policy(
//!     StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build(),
//! )?;
//!
//! let lta = Session::new(backend.clone(), "LTA");
//! let nea = Session::new(backend.clone(), "NEA");
//! let a = lta.subscribe(Query::on("weather").filter("rainrate > 30"))?;
//! let b = nea.subscribe(Query::on("weather").filter("rainrate > 60"))?;
//! // Different filters, same policy core: one compiled plan serves both.
//! assert_eq!(a.plan(), b.plan());
//! assert_eq!(backend.live_plans(), 1);
//! # Ok::<(), exacml::prelude::ExacmlError>(())
//! ```

use exacml_dsms::{AggSpec, StreamHandle, Tuple, WindowSpec};
use exacml_plus::{ExacmlError, PlanId, Subscription, UserQuery, Warning};

use crate::session::Session;

/// How a [`Query`] binds to a grant.
#[derive(Debug, Clone, PartialEq)]
enum Shape {
    /// Attach to the session's existing grant on the stream; never request.
    Lookup,
    /// Request access with this customised query (empty = policy default
    /// view), then subscribe.
    Structured(UserQuery),
}

/// A typed description of what a consumer wants from a stream.
///
/// Built with [`Query::on`] and the chainable refinements, converted from a
/// bare stream name (lookup-only), or parsed from wire form with
/// [`Query::from_xml`]. See the [module docs](self) for the three shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    stream: String,
    shape: Shape,
}

impl Query {
    /// A structured query over `stream` with no refinements yet: subscribing
    /// it requests access to the policy's default view of the stream.
    #[must_use]
    pub fn on(stream: impl Into<String>) -> Self {
        let stream = stream.into();
        Query { shape: Shape::Structured(UserQuery::for_stream(&stream)), stream }
    }

    /// Parse the wire-form `<Query>` document (the encoding remote clients
    /// ship and the durable WAL journals). The raw-XML escape hatch — use
    /// the [`Query::on`] builder everywhere you are not literally holding
    /// XML.
    ///
    /// # Errors
    /// [`ExacmlError::InvalidUserQuery`] when the document does not parse.
    pub fn from_xml(xml: &str) -> Result<Self, ExacmlError> {
        let query = UserQuery::from_xml(xml)?;
        Ok(Query { stream: query.stream.clone(), shape: Shape::Structured(query) })
    }

    /// The stream this query targets.
    #[must_use]
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// Whether this is a bare-name lookup (attach to an existing grant
    /// only) rather than a structured access request.
    #[must_use]
    pub fn is_lookup(&self) -> bool {
        self.shape == Shape::Lookup
    }

    /// The structured query, upgrading a bare lookup in place: refining a
    /// query is what turns "attach to what I have" into "request this".
    fn structured(&mut self) -> &mut UserQuery {
        if let Shape::Lookup = self.shape {
            self.shape = Shape::Structured(UserQuery::for_stream(&self.stream));
        }
        match &mut self.shape {
            Shape::Structured(query) => query,
            Shape::Lookup => unreachable!("just upgraded"),
        }
    }

    /// Refine with an additional filter condition, e.g. `"rainrate > 30"`.
    /// The PEP conjoins it with the policy's own filter (safe
    /// intersection), so it can only narrow what the policy allows.
    #[must_use]
    pub fn filter(mut self, condition: impl Into<String>) -> Self {
        self.structured().filter = Some(condition.into());
        self
    }

    /// Project onto these attributes. Attributes the policy withholds raise
    /// a PR [`Warning`] at subscribe time instead of leaking.
    #[must_use]
    pub fn select<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.structured().map = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Aggregate over a sliding window: `function(attribute)` pairs
    /// evaluated per window close. The window must coarsen the policy's
    /// own, if the policy aggregates.
    #[must_use]
    pub fn window<I>(mut self, window: WindowSpec, specs: I) -> Self
    where
        I: IntoIterator<Item = AggSpec>,
    {
        let query = self.structured();
        *query = query.clone().with_aggregation(window, specs.into_iter().collect());
        self
    }

    /// The equivalent [`UserQuery`] to attach to the access request: `None`
    /// for a bare lookup *and* for a structured query with no refinements
    /// (the policy's default view needs no customised query).
    #[must_use]
    pub fn to_user_query(&self) -> Option<UserQuery> {
        match &self.shape {
            Shape::Lookup => None,
            Shape::Structured(query) => (!query.is_empty()).then(|| query.clone()),
        }
    }
}

/// A bare stream name: attach to the session's existing grant, never
/// request access. `session.subscribe("weather")` keeps its historical
/// meaning — [`ExacmlError::UnknownHandle`] before `request_access`.
impl From<&str> for Query {
    fn from(stream: &str) -> Self {
        Query { stream: stream.to_string(), shape: Shape::Lookup }
    }
}

/// See [`From<&str>`](#impl-From<%26str>-for-Query): bare names are
/// lookup-only.
impl From<String> for Query {
    fn from(stream: String) -> Self {
        Query { stream, shape: Shape::Lookup }
    }
}

/// See [`From<&str>`](#impl-From<%26str>-for-Query): bare names are
/// lookup-only.
impl From<&String> for Query {
    fn from(stream: &String) -> Self {
        Query { stream: stream.clone(), shape: Shape::Lookup }
    }
}

/// A hand-built [`UserQuery`] subscribes as a structured query.
impl From<UserQuery> for Query {
    fn from(query: UserQuery) -> Self {
        Query { stream: query.stream.clone(), shape: Shape::Structured(query) }
    }
}

/// A live subscription plus the identity of the grant behind it: the
/// shared plan it rides and the NR/PR warnings its merge raised.
///
/// Dereferences to the transport [`Subscription`], so `drain()` and
/// friends work unchanged.
pub struct QuerySubscription {
    inner: Subscription,
    handle: StreamHandle,
    plan: PlanId,
    warnings: Vec<Warning>,
}

impl QuerySubscription {
    pub(crate) fn new(
        inner: Subscription,
        handle: StreamHandle,
        plan: PlanId,
        warnings: Vec<Warning>,
    ) -> Self {
        QuerySubscription { inner, handle, plan, warnings }
    }

    /// The shared operator plan this subscription rides. Subscriptions with
    /// equal plan ids are served by **one** compiled subgraph on the DSMS,
    /// however many subscribers hold them.
    #[must_use]
    pub fn plan(&self) -> PlanId {
        self.plan
    }

    /// The NR/PR warnings the policy/query merge raised (Section 3.5):
    /// empty when the subscriber sees exactly what it asked for.
    #[must_use]
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The granted stream handle this subscription is attached to.
    #[must_use]
    pub fn handle(&self) -> &StreamHandle {
        &self.handle
    }

    /// Drain every tuple delivered so far (delegates to the transport
    /// subscription).
    pub fn drain(&mut self) -> Vec<Tuple> {
        self.inner.drain()
    }

    /// Unwrap the transport subscription, dropping the grant metadata.
    #[must_use]
    pub fn into_inner(self) -> Subscription {
        self.inner
    }
}

impl std::ops::Deref for QuerySubscription {
    type Target = Subscription;
    fn deref(&self) -> &Subscription {
        &self.inner
    }
}

impl std::ops::DerefMut for QuerySubscription {
    fn deref_mut(&mut self) -> &mut Subscription {
        &mut self.inner
    }
}

/// `Session::subscribe` accepts anything convertible into a [`Query`]; the
/// conversions above make `&str`, `String`, [`UserQuery`] and [`Query`]
/// itself all work.
impl Session {
    /// Subscribe this session to a [`Query`] (or anything convertible into
    /// one — see the [module docs](self) for the three shapes).
    ///
    /// A structured query runs the full Section 3.2 workflow first; the
    /// granted handle joins the session's RAII-released grants exactly as
    /// with [`Session::request_access`]. A bare stream name only attaches
    /// to a grant the session already holds.
    ///
    /// # Errors
    /// [`ExacmlError::UnknownHandle`] for a bare name with no live grant;
    /// otherwise propagates denial, conflict and substrate errors from the
    /// backend.
    pub fn subscribe(&self, query: impl Into<Query>) -> Result<QuerySubscription, ExacmlError> {
        let query: Query = query.into();
        if query.is_lookup() {
            return self.attach(query.stream());
        }
        let user_query = query.to_user_query();
        let response = self.request_access(query.stream(), user_query.as_ref())?;
        let inner = self.backend().subscribe(response.handle())?;
        Ok(QuerySubscription::new(
            inner,
            response.response.handle,
            response.response.plan,
            response.response.warnings,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BackendBuilder;
    use exacml_dsms::{AggFunc, Schema, Value};
    use exacml_plus::{Backend, StreamPolicyBuilder, WarningKind};
    use exacml_xacml::Request;
    use std::sync::Arc;

    fn open_backend() -> Arc<dyn Backend> {
        let backend = BackendBuilder::local().deploy_on_partial_result(true).build();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build())
            .unwrap();
        backend
    }

    fn rain(schema: &Arc<Schema>, i: i64, rate: f64) -> Tuple {
        Tuple::builder_shared(schema)
            .set("samplingtime", Value::Timestamp(i * 1000))
            .set("rainrate", rate)
            .finish_with_defaults()
    }

    #[test]
    fn bare_names_are_lookup_only_and_structured_queries_request() {
        let backend = open_backend();
        let session = Session::new(backend.clone(), "LTA");
        // The historical contract: a bare name never requests access.
        assert!(matches!(session.subscribe("weather"), Err(ExacmlError::UnknownHandle(_))));

        // A structured query requests and subscribes in one step …
        let granted = session.subscribe(Query::on("weather")).unwrap();
        assert!(granted.warnings().is_empty());
        assert!(backend.handle_is_live(granted.handle()));
        // … after which the bare name attaches to that same grant.
        let again = session.subscribe("weather").unwrap();
        assert_eq!(again.plan(), granted.plan());
        assert_eq!(again.handle(), granted.handle());
    }

    #[test]
    fn overlapping_typed_queries_share_one_plan_and_deliver_refined_views() {
        let backend = open_backend();
        let schema = Schema::weather_example().shared();
        let lta = Session::new(backend.clone(), "LTA");
        let nea = Session::new(backend.clone(), "NEA");

        let mut heavy = lta.subscribe(Query::on("weather").filter("rainrate > 30")).unwrap();
        let mut all = nea.subscribe(Query::on("weather")).unwrap();
        assert_eq!(heavy.plan(), all.plan(), "same policy core → one shared plan");
        assert_eq!(backend.live_plans(), 1);

        backend.push_batch("weather", (0..4).map(|i| rain(&schema, i, 20.0)).collect()).unwrap();
        backend.push_batch("weather", (4..6).map(|i| rain(&schema, i, 50.0)).collect()).unwrap();
        assert_eq!(all.drain().len(), 6, "policy view: everything above 5");
        assert_eq!(heavy.drain().len(), 2, "residual narrows to above 30");
    }

    #[test]
    fn typed_subscriptions_surface_merge_warnings() {
        let backend = BackendBuilder::local().deploy_on_partial_result(true).build();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("narrow", "weather")
                    .filter("rainrate > 5")
                    .visible_attributes(["samplingtime", "rainrate", "windspeed"])
                    .build(),
            )
            .unwrap();
        let session = Session::new(backend, "LTA");
        let narrowed = session
            .subscribe(
                Query::on("weather").filter("rainrate > 30").select(["samplingtime", "rainrate"]),
            )
            .unwrap();
        assert!(
            narrowed.warnings().iter().any(|w| w.kind == WarningKind::PartialResult),
            "projecting away the filtered attribute is a PR warning: {:?}",
            narrowed.warnings()
        );
    }

    #[test]
    fn windowed_queries_aggregate_per_window_close() {
        let backend = open_backend();
        let schema = Schema::weather_example().shared();
        let session = Session::new(backend.clone(), "LTA");
        let mut averages = session
            .subscribe(
                Query::on("weather")
                    .window(WindowSpec::tuples(4, 4), [AggSpec::new("rainrate", AggFunc::Avg)]),
            )
            .unwrap();
        backend.push_batch("weather", (0..8).map(|i| rain(&schema, i, 10.0)).collect()).unwrap();
        let out = averages.drain();
        assert_eq!(out.len(), 2, "two tumbling windows of four tuples each");
    }

    #[test]
    fn wire_form_round_trips_through_from_xml() {
        let typed = Query::on("weather").filter("rainrate > 30").select(["samplingtime"]);
        let xml = typed.to_user_query().unwrap().to_xml();
        assert_eq!(Query::from_xml(&xml).unwrap(), typed);
        assert!(Query::from_xml("<not a query>").is_err());
    }

    #[test]
    fn session_raii_still_covers_typed_grants() {
        let backend = open_backend();
        {
            let session = Session::new(backend.clone(), "LTA");
            let _sub = session.subscribe(Query::on("weather").filter("rainrate > 30")).unwrap();
            assert_eq!(backend.live_deployments(), 1);
        }
        assert_eq!(backend.live_deployments(), 0, "dropping the session released the plan");
    }

    #[test]
    fn user_queries_convert_and_hand_rolled_requests_agree() {
        let backend = open_backend();
        let typed = Session::new(backend.clone(), "LTA");
        let raw = Session::new(backend.clone(), "NEA");

        let via_query = typed
            .subscribe(Query::from(
                exacml_plus::UserQuery::for_stream("weather").with_filter("rainrate > 30"),
            ))
            .unwrap();
        let via_request = backend
            .handle_request(
                &Request::subscribe("NEA", "weather"),
                Some(&exacml_plus::UserQuery::for_stream("weather").with_filter("rainrate > 30")),
            )
            .unwrap();
        drop(raw);
        assert_eq!(via_query.plan(), via_request.response.plan);
    }
}
