//! A consumer session: subject identity + live grants, RAII-released.
//!
//! The paper's client interface hands back raw stream handles and leaves
//! releasing them to the caller; [`Session`] replaces that bookkeeping. It
//! owns the requesting subject's identity and every handle the subject was
//! granted through it, releases them all when dropped (so a crashed or
//! finished consumer never leaks live query graphs — on a fabric the
//! handle's routing entry is pruned too), and works against **any**
//! backend because it only speaks `dyn Backend`.

use exacml_plus::{Backend, BackendResponse, ExacmlError, PlanId, UserQuery, Warning};
use exacml_xacml::Request;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::query::QuerySubscription;
use exacml_dsms::StreamHandle;

/// What a session remembers about one of its grants: the handle plus the
/// identity [`QuerySubscription`] exposes when re-attaching by bare name.
#[derive(Debug, Clone)]
struct Granted {
    handle: StreamHandle,
    plan: PlanId,
    warnings: Vec<Warning>,
}

/// A data consumer's session against one backend.
///
/// ```
/// use exacml::prelude::*;
/// use exacml::exacml_dsms::Schema;
///
/// let backend = BackendBuilder::local().build();
/// backend.register_stream("weather", Schema::weather_example()).unwrap();
/// backend
///     .load_policy(
///         StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build(),
///     )
///     .unwrap();
///
/// {
///     let session = Session::new(backend.clone(), "LTA");
///     let granted = session.request_access("weather", None).unwrap();
///     assert!(backend.handle_is_live(granted.handle()));
/// } // ← dropping the session releases the access
/// assert_eq!(backend.live_deployments(), 0);
/// ```
pub struct Session {
    backend: Arc<dyn Backend>,
    subject: String,
    /// Canonical (lowercased) stream name → the live grant held on it.
    grants: Mutex<HashMap<String, Granted>>,
}

impl Session {
    /// Open a session for `subject` on a backend.
    #[must_use]
    pub fn new(backend: Arc<dyn Backend>, subject: impl Into<String>) -> Self {
        Session { backend, subject: subject.into(), grants: Mutex::new(HashMap::new()) }
    }

    /// The subject this session requests access as.
    #[must_use]
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The backend this session runs against.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    fn canonical(stream: &str) -> String {
        stream.to_ascii_lowercase()
    }

    /// Request access to a stream, optionally refined by a customised query
    /// (the Section 3.2 workflow). The granted handle is tracked by the
    /// session and released when the session drops.
    ///
    /// ```
    /// use exacml::prelude::*;
    /// use exacml::exacml_dsms::{Schema, Tuple, Value};
    ///
    /// let backend = BackendBuilder::local().build();
    /// backend.register_stream("weather", Schema::weather_example())?;
    /// backend.load_policy(
    ///     StreamPolicyBuilder::new("p", "weather").subject("LTA").filter("rainrate > 5").build(),
    /// )?;
    ///
    /// let session = Session::new(backend.clone(), "LTA");
    /// session.request_access("weather", None)?;
    /// let mut subscription = session.subscribe("weather")?;
    ///
    /// let schema = Schema::weather_example().shared();
    /// let heavy_rain = Tuple::builder_shared(&schema)
    ///     .set("samplingtime", Value::Timestamp(0))
    ///     .set("rainrate", 12.0)
    ///     .finish_with_defaults();
    /// backend.push("weather", heavy_rain)?;
    /// assert_eq!(subscription.drain().len(), 1); // passed the policy filter
    /// # Ok::<(), exacml::prelude::ExacmlError>(())
    /// ```
    ///
    /// # Errors
    /// Propagates denial, conflict and substrate errors from the backend.
    pub fn request_access(
        &self,
        stream: &str,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        let request = Request::subscribe(&self.subject, stream);
        let response = self.backend.handle_request(&request, user_query)?;
        self.grants.lock().insert(
            Session::canonical(stream),
            Granted {
                handle: response.handle().clone(),
                plan: response.response.plan,
                warnings: response.response.warnings.clone(),
            },
        );
        Ok(response)
    }

    /// The live handle this session holds on a stream, if any.
    #[must_use]
    pub fn handle_for(&self, stream: &str) -> Option<StreamHandle> {
        self.grants.lock().get(&Session::canonical(stream)).map(|g| g.handle.clone())
    }

    /// Attach to the grant this session already holds on `stream` (the
    /// bare-name [`Session::subscribe`] shape — see `crate::query`).
    pub(crate) fn attach(&self, stream: &str) -> Result<QuerySubscription, ExacmlError> {
        let granted = self
            .grants
            .lock()
            .get(&Session::canonical(stream))
            .cloned()
            .ok_or_else(|| ExacmlError::UnknownHandle(format!("<no grant on '{stream}'>")))?;
        let inner = self.backend.subscribe(&granted.handle)?;
        Ok(QuerySubscription::new(inner, granted.handle, granted.plan, granted.warnings))
    }

    /// Release the access this session holds on a stream. Returns `true`
    /// when something was released; releasing a stream this session never
    /// acquired (or already released) is a no-op — another session's grant
    /// for the same subject is never touched.
    pub fn release(&self, stream: &str) -> bool {
        if self.grants.lock().remove(&Session::canonical(stream)).is_none() {
            return false;
        }
        self.backend.release_access(&self.subject, stream)
    }

    /// Release every access this session still holds; returns how many
    /// releases actually withdrew something.
    pub fn release_all(&self) -> usize {
        let grants: Vec<String> = self.grants.lock().drain().map(|(stream, _)| stream).collect();
        grants
            .into_iter()
            .filter(|stream| self.backend.release_access(&self.subject, stream))
            .count()
    }

    /// The handles this session currently tracks that are still live on the
    /// backend (a policy change may have withdrawn some server-side).
    #[must_use]
    pub fn live_handles(&self) -> Vec<StreamHandle> {
        self.grants
            .lock()
            .values()
            .filter(|granted| self.backend.handle_is_live(&granted.handle))
            .map(|granted| granted.handle.clone())
            .collect()
    }
}

impl Drop for Session {
    /// RAII: a finished consumer releases everything it held, withdrawing
    /// the backing deployments (and, on a fabric, pruning their routing
    /// entries).
    fn drop(&mut self) {
        self.release_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BackendBuilder;
    use exacml_dsms::Schema;
    use exacml_plus::StreamPolicyBuilder;

    fn prepared_backend() -> Arc<dyn Backend> {
        let backend = BackendBuilder::local().build();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        backend
    }

    #[test]
    fn session_tracks_grants_and_releases_explicitly() {
        let backend = prepared_backend();
        let session = Session::new(backend.clone(), "LTA");
        assert_eq!(session.subject(), "LTA");
        assert!(session.handle_for("weather").is_none());
        assert!(matches!(session.subscribe("weather"), Err(ExacmlError::UnknownHandle(_))));

        let granted = session.request_access("weather", None).unwrap();
        assert_eq!(session.handle_for("weather").as_ref(), Some(granted.handle()));
        assert_eq!(session.live_handles().len(), 1);
        let mut subscription = session.subscribe("weather").unwrap();
        assert!(subscription.drain().is_empty());

        assert!(session.release("weather"));
        assert!(!session.release("weather"));
        assert!(session.live_handles().is_empty());
        assert_eq!(backend.live_deployments(), 0);
    }

    #[test]
    fn dropping_the_session_releases_everything() {
        let backend = prepared_backend();
        {
            let session = Session::new(backend.clone(), "LTA");
            session.request_access("weather", None).unwrap();
            assert_eq!(backend.live_deployments(), 1);
        }
        assert_eq!(backend.live_deployments(), 0);
        // The subject can immediately open a different query.
        let session = Session::new(backend, "LTA");
        assert!(session.request_access("weather", None).is_ok());
    }
}
