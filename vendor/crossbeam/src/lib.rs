//! Minimal vendored stand-in for `crossbeam`'s multi-consumer channels.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc` with the
//! receiver wrapped in an `Arc<Mutex<..>>` so it can be cloned like
//! crossbeam's. This trades a little lock overhead for API compatibility; the
//! engine only drains channels from one thread at a time.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    ///
    /// Holds a weak reference to the receiver state so
    /// [`Sender::is_disconnected`] can report receiver death without a
    /// failed send — the stream engine uses this to skip cloning tuples for
    /// subscribers that are already gone.
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        rx_alive: std::sync::Weak<Mutex<mpsc::Receiver<T>>>,
    }

    /// The receiving half of an unbounded channel; clonable, unlike
    /// `std::sync::mpsc::Receiver`.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone(), rx_alive: self.rx_alive.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Mutex::new(rx));
        (Sender { tx, rx_alive: Arc::downgrade(&shared) }, Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.tx.send(value)
        }

        /// Whether every receiver of this channel has been dropped.
        pub fn is_disconnected(&self) -> bool {
            self.rx_alive.strong_count() == 0
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        /// Drain every message that is immediately available.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Block until the channel disconnects, yielding every message.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn channel_round_trip() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let rx2 = rx.clone();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx2.try_recv().is_err());
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn sender_observes_receiver_death() {
        let (tx, rx) = channel::unbounded();
        assert!(!tx.is_disconnected());
        let rx2 = rx.clone();
        drop(rx);
        assert!(!tx.is_disconnected());
        drop(rx2);
        assert!(tx.is_disconnected());
        assert!(tx.send(1).is_err());
    }
}
