//! Minimal vendored stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace actually uses: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` and enough of a data model for
//! `serde_json::to_string_pretty` to render derived types.
//!
//! Instead of serde's visitor-based `Serializer` contract, [`Serialize`]
//! lowers values to a small JSON-shaped [`Content`] tree that `serde_json`
//! then prints. `Deserialize` is a marker only — nothing in the workspace
//! parses serialized data back yet; see `vendor/serde_derive` which emits an
//! empty impl for it.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the target of [`Serialize`].
///
/// Mirrors the JSON data model; enums use serde's externally-tagged encoding
/// (`"Variant"` or `{"Variant": ...}`).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Lower `self` into a [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Marker trait recording that a type opted into deserialization.
///
/// No decoding machinery exists in this stand-in; the derive emits an empty
/// impl so `#[derive(Deserialize)]` sites keep compiling.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_int {
    ($($ty:ty => $variant:ident as $cast:ty),+ $(,)?) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::$variant(*self as $cast)
            }
        }
    )+};
}

impl_serialize_int! {
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for std::path::Path {
    fn to_content(&self) -> Content {
        Content::Str(self.display().to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_content(&self) -> Content {
        self.as_path().to_content()
    }
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            ("nanos".to_string(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

/// Render a map key: JSON object keys must be strings.
fn key_string(content: &Content) -> String {
    match content {
        Content::Str(s) => s.clone(),
        Content::Bool(b) => b.to_string(),
        Content::I64(i) => i.to_string(),
        Content::U64(u) => u.to_string(),
        Content::F64(f) => f.to_string(),
        Content::Null => "null".to_string(),
        Content::Seq(_) | Content::Map(_) => {
            panic!("cannot use a sequence or map as a JSON object key")
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (key_string(&k.to_content()), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter().map(|(k, v)| (key_string(&k.to_content()), v.to_content())).collect(),
        )
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )+};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_lower_to_expected_shapes() {
        assert_eq!(7u32.to_content(), Content::U64(7));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!("hi".to_content(), Content::Str("hi".to_string()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
        assert_eq!(
            vec![(1u8, 2.5f64)].to_content(),
            Content::Seq(vec![Content::Seq(vec![Content::U64(1), Content::F64(2.5)])]),
        );
    }

    #[test]
    fn maps_render_string_keys_in_order() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(
            m.to_content(),
            Content::Map(vec![
                ("a".to_string(), Content::U64(1)),
                ("b".to_string(), Content::U64(2)),
            ]),
        );
    }
}
