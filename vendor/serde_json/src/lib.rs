//! Minimal vendored stand-in for `serde_json`: render the vendored serde
//! stand-in's `Content` tree as JSON text, and parse JSON text into a
//! dynamically-typed [`Value`] (used by the CI perf-regression gate to
//! compare benchmark reports).

use serde::{Content, Serialize};
use std::fmt;

/// Serialization error. The `Content`-tree printer is total, so this is only
/// produced for non-finite floats, which JSON cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// Fails if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serialize an already-built [`Content`] tree as compact JSON, without
/// requiring a `Serialize` wrapper (used by hand-assembled documents such as
/// `exacml-durable`'s WAL records, whose framing adds fields — a sequence
/// number — that no single Rust value carries).
///
/// # Errors
/// Fails if the tree contains a NaN or infinite float.
pub fn content_to_string(content: &Content) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, content, None, 0)?;
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON with two-space indentation.
///
/// # Errors
/// Fails if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0)?;
    Ok(out)
}

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("JSON cannot represent the float {f}")));
            }
            out.push_str(&format_f64(*f));
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_bracketed(out, items.iter(), indent, depth, ('[', ']'), |out, item, ind, d| {
                write_content(out, item, ind, d)
            })?;
        }
        Content::Map(entries) => {
            write_bracketed(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, v), ind, d| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_content(out, v, ind, d)
                },
            )?;
        }
    }
    Ok(())
}

fn write_bracketed<I, T>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize) -> Result<(), Error>,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(unit) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(unit);
            }
        }
        write_item(out, item, indent, depth + 1)?;
    }
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
    out.push(close);
    Ok(())
}

/// Format a float the way serde_json does: integral values keep a trailing
/// `.0` so the value round-trips as a float.
fn format_f64(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        f.to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A dynamically-typed JSON value, mirroring `serde_json::Value`'s accessor
/// surface (`get`, `as_f64`, `as_array`, …). Objects preserve document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`, which is what the benchmark reports
    /// the gate compares contain).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key, like `serde_json::Value::get` with a
    /// string index (arrays are accessed through [`Value::as_array`]).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`Value`].
///
/// # Errors
/// Fails on malformed JSON or trailing non-whitespace input.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            entries.push((key, self.parse_value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                            // Surrogate pairs are not needed by the reports
                            // the gate reads; map them to the replacement
                            // character rather than rejecting the document.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("malformed number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let value = Content::Map(vec![
            ("x".to_string(), Content::U64(7)),
            ("ys".to_string(), Content::Seq(vec![Content::F64(1.0), Content::F64(2.5)])),
        ]);
        struct Wrapper(Content);
        impl serde::Serialize for Wrapper {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let wrapped = Wrapper(value);
        assert_eq!(to_string(&wrapped).unwrap(), "{\"x\":7,\"ys\":[1.0,2.5]}");
        let pretty = to_string_pretty(&wrapped).unwrap();
        assert!(pretty.contains("\"x\": 7"));
        assert!(pretty.contains("  \"ys\": [\n    1.0,\n    2.5\n  ]"));
    }

    #[test]
    fn escapes_and_errors() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        let v = from_str("{\"xs\": [1, 2, {\"y\": \"z\"}], \"ok\": false}").unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[2].get("y").and_then(Value::as_str), Some("z"));
        // String keys do not index arrays, matching real serde_json.
        assert_eq!(v.get("xs").unwrap().get("1"), None);
    }

    #[test]
    fn parser_round_trips_serializer_output() {
        #[derive(Serialize)]
        struct Report {
            name: String,
            threads: u32,
            rates: Vec<f64>,
        }
        let report = Report { name: "t\"x\"".into(), threads: 4, rates: vec![1.5, 2.0, 1e-9] };
        for text in [to_string(&report).unwrap(), to_string_pretty(&report).unwrap()] {
            let v = from_str(&text).unwrap();
            assert_eq!(v.get("name").and_then(Value::as_str), Some("t\"x\""));
            assert_eq!(v.get("threads").and_then(Value::as_f64), Some(4.0));
            let rates = v.get("rates").and_then(Value::as_array).unwrap();
            assert_eq!(rates[2].as_f64(), Some(1e-9));
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
