//! Minimal vendored stand-in for [`serde_json`]: render the vendored serde
//! stand-in's `Content` tree as JSON text. Only serialization is provided;
//! nothing in the workspace deserializes JSON yet.

use serde::{Content, Serialize};
use std::fmt;

/// Serialization error. The `Content`-tree printer is total, so this is only
/// produced for non-finite floats, which JSON cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// Fails if the value contains a NaN or infinite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON with two-space indentation.
///
/// # Errors
/// Fails if the value contains a NaN or infinite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0)?;
    Ok(out)
}

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error(format!("JSON cannot represent the float {f}")));
            }
            out.push_str(&format_f64(*f));
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_bracketed(out, items.iter(), indent, depth, ('[', ']'), |out, item, ind, d| {
                write_content(out, item, ind, d)
            })?;
        }
        Content::Map(entries) => {
            write_bracketed(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |out, (k, v), ind, d| {
                    write_escaped(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_content(out, v, ind, d)
                },
            )?;
        }
    }
    Ok(())
}

fn write_bracketed<I, T>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize) -> Result<(), Error>,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    if items.len() == 0 {
        out.push(close);
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(unit) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(unit);
            }
        }
        write_item(out, item, indent, depth + 1)?;
    }
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
    out.push(close);
    Ok(())
}

/// Format a float the way serde_json does: integral values keep a trailing
/// `.0` so the value round-trips as a float.
fn format_f64(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        f.to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let value = Content::Map(vec![
            ("x".to_string(), Content::U64(7)),
            ("ys".to_string(), Content::Seq(vec![Content::F64(1.0), Content::F64(2.5)])),
        ]);
        struct Wrapper(Content);
        impl serde::Serialize for Wrapper {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let wrapped = Wrapper(value);
        assert_eq!(to_string(&wrapped).unwrap(), "{\"x\":7,\"ys\":[1.0,2.5]}");
        let pretty = to_string_pretty(&wrapped).unwrap();
        assert!(pretty.contains("\"x\": 7"));
        assert!(pretty.contains("  \"ys\": [\n    1.0,\n    2.5\n  ]"));
    }

    #[test]
    fn escapes_and_errors() {
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
