//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! With no registry access there is no `syn`/`quote`, so this macro walks the
//! `proc_macro::TokenStream` directly. It supports the shapes the workspace
//! derives on: plain (non-generic) structs with named fields, tuple structs,
//! unit structs, and enums whose variants are unit, tuple, or struct-like.
//! `Serialize` lowers to the `serde::Content` tree; `Deserialize` is a marker
//! and expands to an empty impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a `struct`/`enum` item.
enum Shape {
    UnitStruct,
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Number of fields in a tuple struct.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    let body = match &parsed.shape {
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("({:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))", f)
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                "::serde::Serialize::to_content(&self.0)".to_string()
            } else {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| enum_arm(&parsed.name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        name = parsed.name,
    )
    .parse()
    .expect("serde stub derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("serde stub derive: generated impl failed to parse")
}

fn enum_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("{enum_name}::{v} => ::serde::Content::Str({v:?}.to_string()),")
        }
        VariantKind::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_content(f0)".to_string()
            } else {
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{v}({binds}) => ::serde::Content::Map(vec![({v:?}.to_string(), {payload})]),",
                binds = bindings.join(", "),
            )
        }
        VariantKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_content({f}))"))
                .collect();
            format!(
                "{enum_name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![({v:?}.to_string(), \
                 ::serde::Content::Map(vec![{entries}]))]),",
                binds = fields.join(", "),
                entries = entries.join(", "),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde stub derive: expected item name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde stub derive: generic type `{name}` is not supported; \
             implement `serde::Serialize` by hand or extend vendor/serde_derive"
        );
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            None | Some(TokenTree::Punct(_)) => Parsed { name, shape: Shape::UnitStruct },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Parsed { name, shape: Shape::Struct(fields) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_top_level_fields(g.stream());
                Parsed { name, shape: Shape::TupleStruct(count) }
            }
            other => panic!("serde stub derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Parsed { name, shape: Shape::Enum(parse_variants(g.stream())) }
            }
            other => panic!("serde stub derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

/// Split a brace/paren group's tokens on commas that sit outside any nested
/// angle brackets (delimiter groups arrive as single tokens already).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_was_dash = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                // Ignore the '>' of `->` in fn-pointer types.
                '>' if !prev_was_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    prev_was_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_was_dash = p.as_char() == '-';
        } else {
            prev_was_dash = false;
        }
        current.push(token);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extract field names from `{ attr* vis? name: Type, ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut iter = chunk.into_iter().peekable();
            loop {
                match iter.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        iter.next();
                        iter.next(); // attribute group
                    }
                    Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                        iter.next();
                        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            iter.next();
                        }
                    }
                    Some(TokenTree::Ident(_)) => {
                        if let Some(TokenTree::Ident(ident)) = iter.next() {
                            break ident.to_string();
                        }
                        unreachable!();
                    }
                    other => panic!("serde stub derive: malformed field, found {other:?}"),
                }
            }
        })
        .collect()
}

/// Extract variants from an enum body, tolerating discriminants (`= expr`).
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut iter = chunk.into_iter().peekable();
            // Skip variant attributes.
            while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                iter.next();
                iter.next();
            }
            let name = match iter.next() {
                Some(TokenTree::Ident(ident)) => ident.to_string(),
                other => panic!("serde stub derive: expected variant name, found {other:?}"),
            };
            let kind = match iter.next() {
                None => VariantKind::Unit,
                // Discriminant: `Name = expr`.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("serde stub derive: unexpected token after variant: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}
