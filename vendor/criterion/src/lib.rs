//! Minimal vendored stand-in for `criterion`.
//!
//! Implements the API slice the workspace's five benches use — benchmark
//! groups, `iter`/`iter_batched`, throughput annotation — with a simple
//! mean-of-samples measurement loop and plain-text reporting instead of
//! criterion's statistical machinery. Good enough to keep the bench harnesses
//! compiling, running, and printing comparable numbers; swap in the real
//! criterion when a registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration, used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup output `iter_batched` should amortise. The stand-in runs
/// one setup per measured iteration regardless, so this is informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", function_name.into()) }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (warm_up, measurement, samples) =
            (self.warm_up_time, self.measurement_time, self.sample_size);
        run_benchmark(&name.into(), None, warm_up, measurement, samples, f);
        self
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_benchmark(
            &label,
            self.throughput,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept both plain
/// strings and `BenchmarkId::new(..)` like the real criterion.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u64,
}

impl Bencher {
    /// Time `routine` repeatedly, recording one sample per call batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let iterations = self.iterations_per_sample;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iterations as u32);
    }

    /// Time `routine` on values produced by `setup`, excluding setup cost.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let iterations = self.iterations_per_sample;
        let mut total = Duration::ZERO;
        for _ in 0..iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iterations as u32);
    }
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up & calibration: find how many calls fit in the warm-up window.
    let calibration_start = Instant::now();
    let mut calibration_runs: u64 = 0;
    while calibration_start.elapsed() < warm_up_time {
        let mut bencher = Bencher { samples: Vec::new(), iterations_per_sample: 1 };
        f(&mut bencher);
        calibration_runs += 1;
    }
    let per_run = warm_up_time / calibration_runs.max(1) as u32;

    // Pick an iteration count so the whole measurement fits the time budget.
    let budget_per_sample = measurement_time / sample_size.max(1) as u32;
    let iterations_per_sample = if per_run.is_zero() {
        1
    } else {
        (budget_per_sample.as_nanos() / per_run.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut bencher = Bencher { samples: Vec::new(), iterations_per_sample };
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.clone();
    sorted.sort_unstable();
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    let median = sorted[sorted.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>14.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>14.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<50} mean {mean:>12.3?}  median {median:>12.3?}{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion {
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(20),
            sample_size: 5,
        };
        let mut group = criterion.benchmark_group("test");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, n| {
            b.iter_batched(|| vec![0u8; *n], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
        assert!(calls > 0);
    }
}
