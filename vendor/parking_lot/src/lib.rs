//! Minimal vendored stand-in for `parking_lot`.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements the small slice of the `parking_lot` API the workspace uses
//! (non-poisoning `Mutex` and `RwLock`) on top of `std::sync`. Poisoned locks
//! are recovered transparently, matching `parking_lot`'s behaviour of not
//! exposing poisoning at all.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
