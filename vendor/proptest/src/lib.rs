//! Minimal vendored stand-in for [`proptest`].
//!
//! Provides the API slice `tests/properties.rs` uses — `proptest!`,
//! `prop_oneof!`, `Just`, range and tuple strategies, `prop_map`,
//! `prop_recursive`, `collection::vec`, and `ProptestConfig` — backed by a
//! deterministic RNG. Unlike real proptest there is no shrinking: a failing
//! case panics with the generated inputs left to the assertion message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// Deterministic source of test cases.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A fixed-seed RNG so failures reproduce across runs; set
        /// `PROPTEST_SEED` to explore a different stream.
        #[must_use]
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5eed_cafe_f00d_u64);
            TestRng(StdRng::seed_from_u64(seed))
        }

        pub fn gen_index(&mut self, bound: usize) -> usize {
            self.0.gen_range(0..bound)
        }
    }

    impl std::ops::Deref for TestRng {
        type Target = StdRng;
        fn deref(&self) -> &StdRng {
            &self.0
        }
    }

    impl std::ops::DerefMut for TestRng {
        fn deref_mut(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// A generator of values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `map_fn`.
        fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, map_fn }
        }

        /// Build a recursive strategy: `recurse` receives a strategy for the
        /// type and returns a strategy one level deeper. `depth` bounds the
        /// nesting; the sizing hints are accepted for API compatibility.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Mix leaves back in at every level so generated values vary
                // in depth rather than always bottoming out at `depth`.
                let deeper = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
            }
            current
        }

        /// Type-erase the strategy so differently-shaped strategies for the
        /// same value type can mix (e.g. in `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        map_fn: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map_fn)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice between alternatives (the engine behind `prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// # Panics
        /// Panics if `alternatives` is empty.
        #[must_use]
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "Union requires at least one alternative");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.gen_index(self.0.len());
            self.0[index].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.gen_index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_index(2) == 1
        }
    }
}

pub mod test_runner {
    /// Per-block configuration, set via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::strategy::TestRng::deterministic();
                // A tuple of strategies is itself a strategy, so the argument
                // strategies are built once, not per case.
                let strategy = ($($strategy,)+);
                for _case in 0..config.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    (@with_config $($bad:tt)*) => {
        compile_error!(
            "proptest! stand-in: expected `#[test] fn name(pattern in strategy, ..) { .. }` items"
        );
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert within a property test; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(0u8..10, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0usize..5, (a, b) in (0i32..3, 0.0f64..1.0)) {
            prop_assert!(x < 5);
            prop_assert!((0..3).contains(&a));
            prop_assert!((0.0..1.0).contains(&b), "b out of range: {}", b);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }

        #[test]
        fn vectors_obey_bounds(v in small_vec()) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn booleans_appear(flag in crate::bool::ANY) {
            let _ = flag;
        }
    }

    #[test]
    fn recursion_bounds_depth() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strategy = (0i32..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::strategy::TestRng::deterministic();
        let mut saw_node = false;
        for _ in 0..200 {
            let tree = strategy.generate(&mut rng);
            assert!(depth(&tree) <= 3);
            saw_node |= matches!(tree, Tree::Node(..));
        }
        assert!(saw_node);
    }
}
