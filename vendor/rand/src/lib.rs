//! Minimal vendored stand-in for the slice of `rand` 0.8 this workspace
//! uses: `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic per
//! seed, fast, and statistically sound for the simulation workloads; it does
//! not promise the same stream as upstream `rand`'s `StdRng` (which the
//! workspace never relies on).

use std::ops::{Range, RangeInclusive};

/// The low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty, as upstream `rand` does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1], got {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $ty
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (rng.next_f64() as $ty) * (end - start)
            }
        }
    )+};
}

impl_float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..15i32);
            assert!((-5..15).contains(&v));
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn super::RngCore = &mut rng;
        assert!(sample(dynamic) < 10);
    }
}
