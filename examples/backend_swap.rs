//! One scenario, two deployment shapes — the unified backend API at work.
//!
//! `scenario` below is ordinary eXACML+ usage: register a few weather
//! stations, load per-consumer policies, open a session, request access
//! with a customised query, stream data, drain the derived tuples, revoke a
//! policy. It is written once against `Arc<dyn Backend>` and knows nothing
//! about deployment shapes.
//!
//! `main` then runs it twice: against a single in-process data server and
//! against a 3-node brokering fabric. **The only difference is the builder
//! line.**
//!
//! ```sh
//! cargo run --example backend_swap
//! ```

use exacml::exacml_dsms::Schema;
use exacml::prelude::*;
use std::sync::Arc;

/// The scenario: backend-agnostic from the first line to the last.
fn scenario(backend: Arc<dyn Backend>) {
    println!("=== running against: {} ===", backend.backend_kind());

    // The NEA registers a handful of weather stations. On a fabric each
    // stream lands on its rendezvous-hash owner node; on a single server
    // they all live together — the scenario cannot tell.
    let stations: Vec<String> = (0..4).map(|i| format!("station{i}")).collect();
    for station in &stations {
        let node = backend.register_stream(station, Schema::weather_example()).unwrap();
        println!("  registered {station} on {node}");
    }

    // One policy per station for the LTA.
    for (i, station) in stations.iter().enumerate() {
        backend
            .load_policy(
                StreamPolicyBuilder::new(format!("nea-{i}"), station)
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .visible_attributes(["samplingtime", "rainrate", "windspeed"])
                    .build(),
            )
            .unwrap();
    }
    println!("  loaded {} policies", backend.policy_count());

    // The LTA opens a session and requests access to every station.
    let session = Session::new(backend.clone(), "LTA");
    for station in &stations {
        let granted = session.request_access(station, None).unwrap();
        println!(
            "  granted {} on {} (brokering hop {:?})",
            granted.handle(),
            granted.node,
            granted.broker_network
        );
    }

    // Stream data and drain the derived tuples. `Subscription::drain`
    // hides whether delivery is an in-process channel or simulated links
    // driven by a virtual clock.
    let mut feed = WeatherFeed::paper_default(7);
    let mut delivered = 0usize;
    for station in &stations {
        let mut subscription = session.subscribe(station).unwrap();
        feed.pump_into(backend.as_ref(), station, 200).unwrap();
        delivered += subscription.drain().len();
    }
    println!("  {} derived tuples delivered to the LTA", delivered);

    // Revoking one policy withdraws exactly its query graph, wherever the
    // graph lives.
    let withdrawn = backend.remove_policy("nea-0").unwrap();
    println!("  revoked nea-0: {withdrawn} query graph(s) withdrawn");
    assert_eq!(backend.live_deployments(), stations.len() - 1);

    // The audit trail is node-tagged on every shape.
    let grants = backend
        .audit_events_for_subject("LTA")
        .iter()
        .filter(|t| t.event.kind == exacml::exacml_plus::AuditEventKind::Granted)
        .count();
    println!("  audit: {grants} grants recorded for the LTA\n");

    // Dropping the session releases the remaining grants (RAII).
    drop(session);
    assert_eq!(backend.live_deployments(), 0);
}

fn main() {
    // The one-line backend swap:
    scenario(BackendBuilder::local().build());
    scenario(BackendBuilder::fabric(3).build()); // ← the only changed line
}
