//! Kill the server mid-stream, recover it from disk — nothing is lost.
//!
//! The scenario: the LTA is granted access to a weather stream and is
//! consuming derived tuples when the process "crashes" (we drop the backend
//! with no shutdown protocol and leak the session so nothing gets
//! released). A second backend built with the *same* `durable(path)` line
//! then recovers the store: the policy, the LTA's grant (same handle URI),
//! the single-access guard state and the audit trail — original timestamps
//! and all — are back, and streaming resumes.
//!
//! ```sh
//! cargo run --example durable_restart
//! ```

use exacml::exacml_dsms::{Schema, StreamHandle, Tuple, Value};
use exacml::prelude::*;
use std::sync::Arc;

fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
    Tuple::builder_shared(schema)
        .set("samplingtime", Value::Timestamp(i * 30_000))
        .set("rainrate", rain)
        .finish_with_defaults()
}

fn main() {
    let store = std::env::temp_dir().join(format!("exacml-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let schema = Schema::weather_example().shared();

    // --- life before the crash --------------------------------------------
    println!("=== before the crash ===");
    let held_handle = {
        let backend = BackendBuilder::durable(&store).build();
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();

        let session = Session::new(backend.clone(), "LTA");
        let granted = session.request_access("weather", None).unwrap();
        let mut subscription = session.subscribe("weather").unwrap();
        backend
            .push_batch("weather", (0..30).map(|i| weather_tuple(&schema, i, 12.0)).collect())
            .unwrap();
        println!("  granted {} to LTA", granted.handle());
        println!("  streamed 30 tuples, LTA consumed {}", subscription.drain().len());

        let handle = granted.handle().uri().to_string();
        // Simulate the crash: leak the session (so RAII can't release the
        // grant) and drop the backend mid-stream.
        std::mem::forget(session);
        handle
    };
    println!("  *** process crashed — server state dropped ***");

    // --- recovery -----------------------------------------------------------
    println!("=== after restart (same builder line) ===");
    let backend = BackendBuilder::durable(&store).build();
    println!("  backend kind: {}", backend.backend_kind());
    println!("  policies recovered: {}", backend.policy_count());
    println!("  live deployments recovered: {}", backend.live_deployments());

    // The handle the LTA still holds points at a live stream again.
    let held = StreamHandle::from_uri(held_handle);
    assert!(backend.handle_is_live(&held));
    println!("  held handle {held} is live again");

    // Streaming resumes exactly where the policy allows.
    let mut subscription = backend.subscribe(&held).unwrap();
    backend
        .push_batch("weather", (0..10).map(|i| weather_tuple(&schema, i, 8.0)).collect())
        .unwrap();
    println!("  streamed 10 more tuples, consumed {}", subscription.drain().len());

    // The guard state survived: a different query on the held stream is
    // still blocked until the LTA releases.
    let refined = UserQuery::for_stream("weather").with_filter("rainrate > 70");
    let blocked = backend.handle_request(&Request::subscribe("LTA", "weather"), Some(&refined));
    assert!(matches!(blocked, Err(ExacmlError::MultipleAccess { .. })));
    println!("  single-access guard still blocks a second query for LTA");

    // The audit trail survived verbatim — grants recorded before the crash
    // are still accountable after it.
    println!("  audit trail ({} events):", backend.audit_events().len());
    for tagged in backend.audit_events() {
        let event = &tagged.event;
        println!(
            "    #{} [{}] {} subject={} stream={}",
            event.sequence,
            tagged.node,
            event.kind,
            event.subject.as_deref().unwrap_or("-"),
            event.stream.as_deref().unwrap_or("-"),
        );
    }

    assert!(backend.release_access("LTA", "weather"));
    println!("  LTA released its access; store stays consistent for the next restart");
    let _ = std::fs::remove_dir_all(&store);
}
