//! Quickstart: the paper's running example (Example 1 + Section 3.1),
//! driven through the unified entry layer — `BackendBuilder` + `Session`.
//!
//! The National Environmental Agency (NEA) publishes a real-time weather
//! stream on the cloud. The Land Transport Authority (LTA) is building a
//! heavy-rain traffic warning system and is allowed to see only three
//! attributes, in sliding windows of 5 tuples advancing by 2, and only while
//! `rainrate > 5`. The LTA later refines its needs with a customised query
//! (`rainrate > 50`, windows of 10).
//!
//! Swap `BackendBuilder::local()` for `BackendBuilder::fabric(3)` and the
//! whole example runs on a 3-node brokering fabric instead (see
//! `examples/backend_swap.rs` for that demonstration).
//!
//! Run with `cargo run --example quickstart`.

use exacml::exacml_dsms::{AggFunc, AggSpec, Schema, WindowSpec};
use exacml::prelude::*;

fn main() {
    // ----------------------------------------------------------------- setup
    // The backend hosts the PDP/PEP and the Aurora-model DSMS. The LTA's
    // refinement narrows the visible attributes, which raises a
    // partial-result warning by design; allow deployment anyway so the
    // warning is informational (Section 3.5).
    let backend = BackendBuilder::local().deploy_on_partial_result(true).build();
    backend
        .register_stream("weather", Schema::weather_example())
        .expect("register the NEA weather stream");

    // ------------------------------------------------- the NEA writes a policy
    let policy = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .description("Real-time weather for the LTA heavy-rain warning system")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();

    println!("=== Figure 2: the policy's obligations block (XACML XML) ===");
    println!("{}", exacml::exacml_xacml::xml::write_policy(&policy));

    println!("=== Figure 1: the query graph derived from the obligations ===");
    let policy_graph = exacml::exacml_plus::graph_from_obligations("weather", &policy.obligations)
        .expect("valid obligations");
    println!("{policy_graph}\n");

    backend.load_policy(policy).expect("load the policy onto the backend");

    // ------------------------------------------------ the LTA refines its query
    let user_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    println!("=== Figure 4(a): the LTA's customised query (XML) ===");
    println!("{}", user_query.to_xml());

    // --------------------------------------------------------- request access
    // The session carries the LTA's identity and releases its grants when
    // dropped.
    let session = Session::new(backend.clone(), "LTA");
    let granted =
        session.request_access("weather", Some(&user_query)).expect("the policy permits the LTA");

    println!("=== Figure 4(b): the merged StreamSQL sent to the DSMS ===");
    println!("{}", granted.response.streamsql);
    println!("stream handle returned to the LTA: {}", granted.handle());
    for warning in &granted.response.warnings {
        println!("warning: {warning}");
    }
    println!(
        "timing: total {:?} (PDP {:?}, query-graph {:?}, DSMS {:?}, network {:?})\n",
        granted.response.timing.total,
        granted.response.timing.pdp,
        granted.response.timing.query_graph,
        granted.response.timing.dsms,
        granted.response.timing.network
    );

    // ------------------------------------------------------------ stream data
    let mut subscription = session.subscribe("weather").expect("subscribe to the derived stream");
    let mut feed = WeatherFeed::paper_default(7);
    feed.pump_into(backend.as_ref(), "weather", 600).expect("push weather records");
    let derived = subscription.drain();
    println!("=== derived tuples the LTA receives (first 5 of {}) ===", derived.len());
    for tuple in derived.iter().take(5) {
        println!("  {tuple}");
    }

    // A request by anyone else is denied.
    let denied = Session::new(backend.clone(), "EMA").request_access("weather", None);
    println!("\nEMA requesting the same stream: {}", denied.expect_err("denied"));

    // RAII: dropping the session withdraws the LTA's live query.
    drop(session);
    println!("live deployments after the session ended: {}", backend.live_deployments());
}
