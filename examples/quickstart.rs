//! Quickstart: the paper's running example (Example 1 + Section 3.1).
//!
//! The National Environmental Agency (NEA) publishes a real-time weather
//! stream on the cloud. The Land Transport Authority (LTA) is building a
//! heavy-rain traffic warning system and is allowed to see only three
//! attributes, in sliding windows of 5 tuples advancing by 2, and only while
//! `rainrate > 5`. The LTA later refines its needs with a customised query
//! (`rainrate > 50`, windows of 10).
//!
//! Run with `cargo run --example quickstart`.

use exacml_dsms::{streamsql, AggFunc, AggSpec, Schema, WindowSpec};
use exacml_plus::{
    ClientInterface, DataServer, Proxy, ServerConfig, StreamPolicyBuilder, UserQuery,
};
use exacml_workload::WeatherFeed;
use std::sync::Arc;

fn main() {
    // ----------------------------------------------------------------- setup
    // The cloud data server hosts the PDP/PEP and the Aurora-model DSMS.
    let server = Arc::new(DataServer::new(ServerConfig {
        // The LTA's refinement narrows the visible attributes, which raises a
        // partial-result warning by design; allow deployment anyway so the
        // warning is informational (Section 3.5).
        deploy_on_partial_result: true,
        ..ServerConfig::local()
    }));
    server
        .register_stream("weather", Schema::weather_example())
        .expect("register the NEA weather stream");

    // ------------------------------------------------- the NEA writes a policy
    let policy = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
        .subject("LTA")
        .description("Real-time weather for the LTA heavy-rain warning system")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();

    println!("=== Figure 2: the policy's obligations block (XACML XML) ===");
    println!("{}", exacml_xacml::xml::write_policy(&policy));

    println!("=== Figure 1: the query graph derived from the obligations ===");
    let policy_graph = exacml_plus::graph_from_obligations("weather", &policy.obligations)
        .expect("valid obligations");
    println!("{policy_graph}\n");

    server.load_policy(policy).expect("load the policy onto the data server");

    // ------------------------------------------------ the LTA refines its query
    let user_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 50")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    println!("=== Figure 4(a): the LTA's customised query (XML) ===");
    println!("{}", user_query.to_xml());

    // --------------------------------------------------------- request access
    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));
    let response = client
        .request_access("LTA", "weather", Some(&user_query))
        .expect("the policy permits the LTA");

    println!("=== Figure 4(b): the merged StreamSQL sent to the DSMS ===");
    println!("{}", response.streamsql);
    println!("stream handle returned to the LTA: {}", response.handle);
    for warning in &response.warnings {
        println!("warning: {warning}");
    }
    println!(
        "timing: total {:?} (PDP {:?}, query-graph {:?}, DSMS {:?}, network {:?})\n",
        response.timing.total,
        response.timing.pdp,
        response.timing.query_graph,
        response.timing.dsms,
        response.timing.network
    );

    // ------------------------------------------------------------ stream data
    let receiver = server.subscribe(&response.handle).expect("subscribe to the derived stream");
    let mut feed = WeatherFeed::paper_default(7);
    for tuple in feed.take(600) {
        server.push("weather", tuple).expect("push weather record");
    }
    let derived: Vec<_> = receiver.try_iter().collect();
    println!("=== derived tuples the LTA receives (first 5 of {}) ===", derived.len());
    for tuple in derived.iter().take(5) {
        println!("  {tuple}");
    }

    // A request by anyone else is denied.
    let denied = client.request_access("EMA", "weather", None);
    println!("\nEMA requesting the same stream: {}", denied.expect_err("denied"));

    // And the direct-query baseline (no access control) for comparison.
    let script = streamsql::generate(&policy_graph, &Schema::weather_example());
    let (_, timing) = client.direct_query(&script).expect("direct query");
    println!("direct-query baseline deploy time: {:?}", timing.total);
}
