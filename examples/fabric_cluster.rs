//! The brokering fabric end to end: four data-server nodes on the paper's
//! testbed links, streams placed by rendezvous hashing, policies propagated
//! fabric-wide, and subscriber deliveries travelling simulated network links
//! driven by the virtual clock.
//!
//! ```sh
//! cargo run --example fabric_cluster
//! ```

use exacml::exacml_dsms::Schema;
use exacml::prelude::*;
use std::time::Duration;

fn main() {
    let fabric = Fabric::new(FabricConfig::new(4, TopologyPreset::PaperTestbed.topology()));
    println!("fabric: {} nodes behind the broker", fabric.nodes().len());

    // Register a handful of weather stations; the broker places each stream
    // on its rendezvous-hash owner.
    let stations: Vec<String> = (0..8).map(|i| format!("station{i}")).collect();
    for station in &stations {
        let owner = fabric.register_stream(station, Schema::weather_example()).unwrap();
        println!("  {station} -> {owner}");
    }

    // One policy per station for the LTA, propagated to every node (each
    // node's PDP cache is invalidated by the propagation).
    for (i, station) in stations.iter().enumerate() {
        let policy = StreamPolicyBuilder::new(format!("nea-{i}"), station)
            .subject("LTA")
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate", "windspeed"])
            .build();
        fabric.load_policy(policy).unwrap();
    }
    println!(
        "loaded {} policies x {} nodes = {} propagations",
        stations.len(),
        fabric.nodes().len(),
        fabric.stats().policy_propagations
    );

    // The LTA requests access to every station; the broker routes each
    // request to the station's owner node.
    let mut subscriptions = Vec::new();
    for station in &stations {
        let response = fabric.handle_request(&Request::subscribe("LTA", station), None).unwrap();
        println!(
            "  granted {} on {} ({}; broker hop {:?})",
            response.response.handle,
            response.node,
            if response.response.reused { "reused" } else { "deployed" },
            response.broker_network,
        );
        subscriptions.push(fabric.subscribe(&response.response.handle).unwrap());
    }

    // Pump the feeds through the broker and drain deliveries as virtual
    // time advances: tuples arrive only after their simulated network
    // latency has passed.
    let mut feed = WeatherFeed::paper_default(7);
    for station in &stations {
        feed.pump_into(&fabric, station, 100).unwrap();
    }
    let mut delivered = 0usize;
    let mut first_latency = None;
    for step in 1..=10 {
        fabric.advance(Duration::from_millis(1));
        for subscription in &mut subscriptions {
            for d in subscription.poll() {
                if first_latency.is_none() {
                    first_latency = Some(d.latency());
                }
                delivered += 1;
            }
        }
        println!("  t={step} ms: {delivered} tuples delivered");
    }
    if let Some(latency) = first_latency {
        println!("first delivery latency (simulated): {latency:?}");
    }

    let stats = fabric.stats();
    println!(
        "stats: {} streams placed, {} requests routed, {} tuples routed across {} nodes",
        stats.streams_placed, stats.requests_routed, stats.tuples_routed, stats.nodes
    );
}
