//! The Section 3.4 privacy leak and its prevention.
//!
//! Example 2 of the paper: if one user can hold several aggregation windows
//! with different sizes over the same stream, subtracting the aggregated
//! outputs reconstructs the raw tuples the policy meant to hide. This example
//! first performs the attack against the bare DSMS (no access control), then
//! shows that eXACML+'s single-access guard refuses the second window.
//!
//! Run with `cargo run --example leak_reconstruction`.

use exacml::exacml_dsms::{AggFunc, AggSpec, DataType, Schema, WindowSpec};
use exacml::exacml_plus::attack::simulate_attack;
use exacml::prelude::*;

fn main() {
    // --- part 1: the attack against a bare stream engine --------------------
    // A "secret" per-tuple series the owner only wants to expose as sums.
    let secret: Vec<f64> = (0..24).map(|i| f64::from(i * 3 % 17) + 0.5).collect();
    println!("original (secret) stream: {secret:?}\n");

    // The attacker opens sum windows of sizes 3, 4 and 5 (advance step 2).
    let outcome = simulate_attack(&secret, 3, 2);
    println!(
        "attacker reconstructs {} of the hidden values starting at a{} (recovery rate {:.0}%):",
        outcome.reconstructed.len(),
        outcome.first_recovered_index,
        outcome.recovery_rate() * 100.0
    );
    println!("{:?}\n", outcome.reconstructed);
    assert!(outcome.recovery_rate() > 0.8, "the attack should succeed against the bare engine");

    // --- part 2: eXACML+ prevents it ----------------------------------------
    let backend = BackendBuilder::local().build();
    backend
        .register_stream(
            "readings",
            Schema::from_pairs([("samplingtime", DataType::Timestamp), ("a", DataType::Double)]),
        )
        .unwrap();
    // The owner's policy: only sum windows of size ≥ 3, advance ≥ 2.
    let policy = StreamPolicyBuilder::new("sums-only", "readings")
        .subject("analyst")
        .visible_attributes(["samplingtime", "a"])
        .window(WindowSpec::tuples(3, 2), vec![AggSpec::new("a", AggFunc::Sum)])
        .build();
    backend.load_policy(policy).unwrap();

    let analyst = Session::new(backend, "analyst");
    let window = |size: u64| {
        UserQuery::for_stream("readings")
            .with_aggregation(WindowSpec::tuples(size, 2), vec![AggSpec::new("a", AggFunc::Sum)])
    };

    // The first window (size 3) is granted...
    let first = analyst
        .request_access("readings", Some(&window(3)))
        .expect("the first window is within the policy");
    println!("first window granted: {}", first.handle());

    // ...but the second and third windows — the ones the attack needs — are
    // rejected because the analyst already holds a live query on the stream.
    for size in [4u64, 5] {
        match analyst.request_access("readings", Some(&window(size))) {
            Err(e) => println!("window of size {size} refused: {e}"),
            Ok(_) => panic!("the single-access guard should have refused window size {size}"),
        }
    }
    println!("\nthe multi-window reconstruction attack is blocked by the single-access rule");
}
