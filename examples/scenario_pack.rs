//! Scenario packs end to end: load a declarative pack (here the built-in
//! `adversarial` one), run it against two different backend shapes through
//! the same runner, check its expected-outcome oracles, and show that the
//! semantic fingerprint — decision counts, deliveries, decision audit
//! events — is byte-identical across shapes.
//!
//! Packs also live as JSON (`crates/workload/packs/*.json`); the same code
//! runs a pack loaded with `ScenarioPack::from_json_str`. See
//! `docs/SCENARIOS.md` for the pack schema and an authoring guide.
//!
//! Run with `cargo run --example scenario_pack`.

use exacml::exacml_workload::packs;
use exacml::exacml_workload::runner::run_pack_checked;
use exacml::exacml_workload::scenario::ScenarioPack;
use exacml::prelude::*;

fn main() {
    let pack = packs::adversarial();
    println!("pack '{}': {}\n", pack.name, pack.description);

    // The JSON round trip is lossless — what ships in packs/*.json is the
    // whole scenario, oracles included.
    let json = pack.to_json_string().expect("pack serializes");
    let reloaded = ScenarioPack::from_json_str(&json).expect("pack reloads");
    assert_eq!(reloaded, pack);

    // Same pack, two shapes, one runner. `run_pack_checked` panics if any
    // oracle — grant/denial pins, the 29 attacker window sums, the audited
    // guard refusals — fails to hold.
    let mut fingerprints = Vec::new();
    for backend in [BackendBuilder::local().build(), BackendBuilder::fabric(3).build()] {
        let outcome = run_pack_checked(backend.as_ref(), &reloaded);
        println!(
            "{:<12} grants={} reuses={} denials={} blocked={} deliveries={:?}",
            outcome.backend_kind,
            outcome.counts.grants,
            outcome.counts.reuses,
            outcome.counts.denials,
            outcome.counts.blocked,
            outcome.deliveries,
        );
        fingerprints.push(outcome.semantic_fingerprint());
    }
    assert_eq!(fingerprints[0], fingerprints[1], "shape must not change scenario semantics");

    println!("\nevery attack blocked and audited; fingerprints identical across shapes");
}
