//! Empty-result (NR) and partial-result (PR) detection — Examples 3 and 4 of
//! the paper (Section 3.5).
//!
//! When a user's customised query conflicts with the policy enforced on the
//! stream, eXACML+ tells the user up front instead of silently serving an
//! empty or truncated stream.
//!
//! Run with `cargo run --example nr_pr_warnings`.

use exacml::exacml_dsms::Schema;
use exacml::exacml_expr::{analyze_merge, parse_expr};
use exacml::prelude::*;

fn main() {
    // --- Example 3, predicate-level ------------------------------------------
    // Policy F1: a > 8; user F2: a > 5 → some tuples the user wants (5 < a ≤ 8)
    // are withheld → PR.
    let pr = analyze_merge(&parse_expr("a > 8").unwrap(), &parse_expr("a > 5").unwrap());
    println!("policy a > 8  vs  query a > 5   → {}", pr.verdict);

    // Policy F1: a < 4; user F2: a > 5 → nothing can ever satisfy both → NR.
    let nr = analyze_merge(&parse_expr("a < 4").unwrap(), &parse_expr("a > 5").unwrap());
    println!("policy a < 4  vs  query a > 5   → {}", nr.verdict);

    // --- Example 4, the full DNF procedure -----------------------------------
    let c1 = parse_expr("(a > 20 AND a < 30) OR NOT (a != 40)").unwrap();
    let c2 = parse_expr("NOT (a >= 10) AND b = 20").unwrap();
    let report = analyze_merge(&c1, &c2);
    println!(
        "Example 4: verdict {} over {} DNF clauses ({} pairwise checks, max clause width {})",
        report.verdict, report.clause_count, report.pair_checks, report.max_clause_width
    );

    // --- the same conflicts surfaced through the framework -------------------
    let backend = BackendBuilder::local().build();
    backend.register_stream("weather", Schema::weather_example()).unwrap();
    backend
        .load_policy(
            StreamPolicyBuilder::new("weather-lta", "weather")
                .subject("LTA")
                .filter("rainrate > 8")
                .visible_attributes(["samplingtime", "rainrate"])
                .build(),
        )
        .unwrap();

    // A query that contradicts the policy filter → the request is answered
    // with an NR warning and nothing is deployed.
    let lta = Session::new(backend.clone(), "LTA");
    let contradicting = UserQuery::for_stream("weather")
        .with_filter("rainrate < 4")
        .with_map(["samplingtime", "rainrate"]);
    match lta.request_access("weather", Some(&contradicting)) {
        Err(ExacmlError::ConflictDetected { warnings }) => {
            println!("\ncontradictory query rejected with {} warning(s):", warnings.len());
            for w in warnings {
                println!("  {w}");
            }
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // A query that merely narrows the stream → PR warning; with the default
    // configuration the deployment is also withheld, so the user can decide
    // whether a partial stream is acceptable.
    let narrowing = UserQuery::for_stream("weather")
        .with_filter("rainrate > 5")
        .with_map(["samplingtime", "rainrate"]);
    match lta.request_access("weather", Some(&narrowing)) {
        Err(ExacmlError::ConflictDetected { warnings }) => {
            println!("\nnarrowing query flagged with {} warning(s):", warnings.len());
            for w in warnings {
                println!("  {w}");
            }
        }
        other => panic!("expected a PR conflict, got {other:?}"),
    }
    println!(
        "\nno query graph was deployed for either conflicting request: {} live deployments",
        backend.live_deployments()
    );
}
