//! Smart-city mash-up: several agencies share streams under different
//! policies (the "flu outbreak / intelligent city" motivation of the paper's
//! introduction), and a data owner revokes a policy, which immediately
//! withdraws the consumer's live query (Section 3.3).
//!
//! Run with `cargo run --example smart_city`.

use exacml_dsms::{AggFunc, AggSpec, Schema, WindowSpec};
use exacml_plus::{
    ClientInterface, DataServer, Proxy, ServerConfig, StreamPolicyBuilder, UserQuery,
};
use exacml_workload::{GpsFeed, WeatherFeed};
use std::sync::Arc;

fn main() {
    let server = Arc::new(DataServer::new(ServerConfig {
        deploy_on_partial_result: true,
        ..ServerConfig::local()
    }));
    // Two city-scale streams: NEA weather stations and anonymised transit GPS.
    server.register_stream("weather", Schema::weather_example()).expect("weather stream");
    server.register_stream("gps", Schema::gps_example()).expect("gps stream");

    // --- policies of three data consumers ----------------------------------
    // 1. The health agency tracks outbreak-relevant conditions: hourly-ish
    //    humidity/temperature aggregates only.
    let health = StreamPolicyBuilder::new("weather-for-health", "weather")
        .subject("HealthAgency")
        .description("coarse aggregates for epidemiological modelling")
        .visible_attributes(["samplingtime", "temperature", "humidity"])
        .window(
            WindowSpec::tuples(120, 60),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("temperature", AggFunc::Avg),
                AggSpec::new("humidity", AggFunc::Avg),
            ],
        )
        .build();
    // 2. The transport authority sees congestion-relevant rain bursts.
    let transport = StreamPolicyBuilder::new("weather-for-transport", "weather")
        .subject("TransportAuthority")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();
    // 3. A research lab sees only slow-moving GPS fixes (privacy: no exact
    //    speeds above a threshold, coarse windows).
    let research = StreamPolicyBuilder::new("gps-for-research", "gps")
        .subject("UrbanLab")
        .filter("speed < 60")
        .visible_attributes(["samplingtime", "latitude", "longitude", "speed"])
        .window(
            WindowSpec::tuples(20, 10),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("latitude", AggFunc::Avg),
                AggSpec::new("longitude", AggFunc::Avg),
                AggSpec::new("speed", AggFunc::Avg),
            ],
        )
        .build();

    for policy in [health, transport, research] {
        let elapsed = server.load_policy(policy).expect("policy loads");
        println!("loaded policy in {elapsed:?}");
    }

    let client = ClientInterface::new(Arc::new(Proxy::new(Arc::clone(&server))));

    // --- each agency requests its view --------------------------------------
    let health_view =
        client.request_access("HealthAgency", "weather", None).expect("health agency is permitted");
    let transport_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 30")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let transport_view = client
        .request_access("TransportAuthority", "weather", Some(&transport_query))
        .expect("transport authority is permitted");
    let research_view =
        client.request_access("UrbanLab", "gps", None).expect("research lab is permitted");

    println!("\nhealth view handle:    {}", health_view.handle);
    println!(
        "transport view handle: {} ({} warnings)",
        transport_view.handle,
        transport_view.warnings.len()
    );
    println!("research view handle:  {}", research_view.handle);

    // Cross-checks: agencies cannot read each other's streams.
    assert!(client.request_access("HealthAgency", "gps", None).is_err());
    assert!(client.request_access("UrbanLab", "weather", None).is_err());
    println!("cross-agency requests correctly denied");

    // --- feed both streams ---------------------------------------------------
    let health_rx = server.subscribe(&health_view.handle).unwrap();
    let transport_rx = server.subscribe(&transport_view.handle).unwrap();
    let research_rx = server.subscribe(&research_view.handle).unwrap();

    let mut weather = WeatherFeed::paper_default(11);
    for tuple in weather.take(600) {
        server.push("weather", tuple).unwrap();
    }
    let mut gps = GpsFeed::new(13, "bus-1042", 1_000);
    for tuple in gps.take(200) {
        server.push("gps", tuple).unwrap();
    }

    println!("\nhealth agency received    {} aggregate tuples", health_rx.try_iter().count());
    println!("transport agency received {} aggregate tuples", transport_rx.try_iter().count());
    println!("research lab received     {} aggregate tuples", research_rx.try_iter().count());

    // --- the owner revokes the transport policy ------------------------------
    let withdrawn = server.remove_policy("weather-for-transport").expect("policy exists");
    println!("\nNEA removed the transport policy: {withdrawn} live query graph(s) withdrawn");
    assert!(!server.handle_is_live(&transport_view.handle));
    assert!(client.request_access("TransportAuthority", "weather", None).is_err());
    println!("transport authority's handle is dead and new requests are denied");

    // The other agencies are unaffected.
    assert!(server.handle_is_live(&health_view.handle));
    assert!(server.handle_is_live(&research_view.handle));
    println!("other agencies keep their live views");
}
