//! Smart-city mash-up: several agencies share streams under different
//! policies (the "flu outbreak / intelligent city" motivation of the paper's
//! introduction), and a data owner revokes a policy, which immediately
//! withdraws the consumer's live query (Section 3.3).
//!
//! Each agency drives the system through its own `Session`; the whole
//! example speaks the unified backend API, so swapping the builder line for
//! `BackendBuilder::fabric(n)` runs the same city on a cluster.
//!
//! Run with `cargo run --example smart_city`.

use exacml::exacml_dsms::{AggFunc, AggSpec, Schema, WindowSpec};
use exacml::prelude::*;

fn main() {
    let backend = BackendBuilder::local().deploy_on_partial_result(true).build();
    // Two city-scale streams: NEA weather stations and anonymised transit GPS.
    backend.register_stream("weather", Schema::weather_example()).expect("weather stream");
    backend.register_stream("gps", Schema::gps_example()).expect("gps stream");

    // --- policies of three data consumers ----------------------------------
    // 1. The health agency tracks outbreak-relevant conditions: hourly-ish
    //    humidity/temperature aggregates only.
    let health = StreamPolicyBuilder::new("weather-for-health", "weather")
        .subject("HealthAgency")
        .description("coarse aggregates for epidemiological modelling")
        .visible_attributes(["samplingtime", "temperature", "humidity"])
        .window(
            WindowSpec::tuples(120, 60),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("temperature", AggFunc::Avg),
                AggSpec::new("humidity", AggFunc::Avg),
            ],
        )
        .build();
    // 2. The transport authority sees congestion-relevant rain bursts.
    let transport = StreamPolicyBuilder::new("weather-for-transport", "weather")
        .subject("TransportAuthority")
        .filter("rainrate > 5")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .window(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();
    // 3. A research lab sees only slow-moving GPS fixes (privacy: no exact
    //    speeds above a threshold, coarse windows).
    let research = StreamPolicyBuilder::new("gps-for-research", "gps")
        .subject("UrbanLab")
        .filter("speed < 60")
        .visible_attributes(["samplingtime", "latitude", "longitude", "speed"])
        .window(
            WindowSpec::tuples(20, 10),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("latitude", AggFunc::Avg),
                AggSpec::new("longitude", AggFunc::Avg),
                AggSpec::new("speed", AggFunc::Avg),
            ],
        )
        .build();

    for policy in [health, transport, research] {
        let elapsed = backend.load_policy(policy).expect("policy loads");
        println!("loaded policy in {elapsed:?}");
    }

    // --- each agency opens a session and requests its view -------------------
    let health_agency = Session::new(backend.clone(), "HealthAgency");
    let transport_authority = Session::new(backend.clone(), "TransportAuthority");
    let urban_lab = Session::new(backend.clone(), "UrbanLab");

    let health_view =
        health_agency.request_access("weather", None).expect("health agency is permitted");
    let transport_query = UserQuery::for_stream("weather")
        .with_filter("rainrate > 30")
        .with_map(["samplingtime", "rainrate"])
        .with_aggregation(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        );
    let transport_view = transport_authority
        .request_access("weather", Some(&transport_query))
        .expect("transport authority is permitted");
    let research_view = urban_lab.request_access("gps", None).expect("research lab is permitted");

    println!("\nhealth view handle:    {}", health_view.handle());
    println!(
        "transport view handle: {} ({} warnings)",
        transport_view.handle(),
        transport_view.response.warnings.len()
    );
    println!("research view handle:  {}", research_view.handle());

    // Cross-checks: agencies cannot read each other's streams.
    assert!(health_agency.request_access("gps", None).is_err());
    assert!(urban_lab.request_access("weather", None).is_err());
    println!("cross-agency requests correctly denied");

    // --- feed both streams ---------------------------------------------------
    let mut health_sub = health_agency.subscribe("weather").unwrap();
    let mut transport_sub = transport_authority.subscribe("weather").unwrap();
    let mut research_sub = urban_lab.subscribe("gps").unwrap();

    let mut weather = WeatherFeed::paper_default(11);
    weather.pump_into(backend.as_ref(), "weather", 600).unwrap();
    let mut gps = GpsFeed::new(13, "bus-1042", 1_000);
    gps.pump_into(backend.as_ref(), "gps", 200).unwrap();

    println!("\nhealth agency received    {} aggregate tuples", health_sub.drain().len());
    println!("transport agency received {} aggregate tuples", transport_sub.drain().len());
    println!("research lab received     {} aggregate tuples", research_sub.drain().len());

    // --- the owner revokes the transport policy ------------------------------
    let withdrawn = backend.remove_policy("weather-for-transport").expect("policy exists");
    println!("\nNEA removed the transport policy: {withdrawn} live query graph(s) withdrawn");
    assert!(!backend.handle_is_live(transport_view.handle()));
    assert!(transport_authority.request_access("weather", None).is_err());
    println!("transport authority's handle is dead and new requests are denied");

    // The other agencies are unaffected.
    assert!(backend.handle_is_live(health_view.handle()));
    assert!(backend.handle_is_live(research_view.handle()));
    println!("other agencies keep their live views");
}
