//! Materialising the workload as files on disk.
//!
//! The paper's experiment drives both systems from files: "each continuous
//! query corresponds to three files in the experiment: (1) a StreamSQL
//! script [...]; (2) a XACML policy file [...]; (3) a XACML request file"
//! (Section 4.2). This module writes the generated corpus into exactly that
//! layout and reads it back, so experiments can be re-run from the same
//! artefacts (or inspected/modified by hand):
//!
//! ```text
//! <root>/
//!   manifest.txt                 # one line per query: index, stream, composition, subject
//!   query-0000/
//!     direct.sql                 # file (1)
//!     policy.xml                 # file (2)
//!     request.xml                # file (3)
//!   query-0001/
//!     ...
//! ```

use crate::generator::ContinuousQuery;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One query's three file paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFiles {
    /// Directory holding the three files.
    pub directory: PathBuf,
    /// File (1): the StreamSQL script.
    pub streamsql: PathBuf,
    /// File (2): the policy document.
    pub policy: PathBuf,
    /// File (3): the request document.
    pub request: PathBuf,
}

/// Write the corpus under `root`, returning the per-query file locations.
///
/// # Errors
/// Propagates filesystem errors.
pub fn export_corpus(root: &Path, queries: &[ContinuousQuery]) -> io::Result<Vec<QueryFiles>> {
    fs::create_dir_all(root)?;
    let mut manifest = String::new();
    let mut out = Vec::with_capacity(queries.len());
    for query in queries {
        let directory = root.join(format!("query-{:04}", query.index));
        fs::create_dir_all(&directory)?;
        let files = QueryFiles {
            streamsql: directory.join("direct.sql"),
            policy: directory.join("policy.xml"),
            request: directory.join("request.xml"),
            directory,
        };
        fs::write(&files.streamsql, &query.streamsql)?;
        fs::write(&files.policy, query.policy_xml())?;
        fs::write(&files.request, query.request_xml())?;
        manifest.push_str(&format!(
            "{:04}\t{}\t{}\t{}\n",
            query.index, query.stream, query.composition, query.subject
        ));
        out.push(files);
    }
    fs::write(root.join("manifest.txt"), manifest)?;
    Ok(out)
}

/// A corpus entry read back from disk.
#[derive(Debug, Clone)]
pub struct ImportedQuery {
    /// Index recorded in the manifest.
    pub index: usize,
    /// Stream name recorded in the manifest.
    pub stream: String,
    /// Composition label recorded in the manifest.
    pub composition: String,
    /// Subject recorded in the manifest.
    pub subject: String,
    /// The StreamSQL script text.
    pub streamsql: String,
    /// The parsed policy.
    pub policy: exacml_xacml::Policy,
    /// The parsed request.
    pub request: exacml_xacml::Request,
}

/// Read a corpus previously written by [`export_corpus`].
///
/// # Errors
/// Returns an `io::Error` (with `InvalidData` kind for parse failures)
/// describing the first problem found.
pub fn import_corpus(root: &Path) -> io::Result<Vec<ImportedQuery>> {
    let manifest = fs::read_to_string(root.join("manifest.txt"))?;
    let mut out = Vec::new();
    for (line_no, line) in manifest.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 4 {
            return Err(bad_data(format!("manifest line {} is malformed: {line}", line_no + 1)));
        }
        let index: usize = parts[0]
            .parse()
            .map_err(|_| bad_data(format!("bad index on manifest line {}", line_no + 1)))?;
        let directory = root.join(format!("query-{index:04}"));
        let streamsql = fs::read_to_string(directory.join("direct.sql"))?;
        let policy_text = fs::read_to_string(directory.join("policy.xml"))?;
        let request_text = fs::read_to_string(directory.join("request.xml"))?;
        let policy = exacml_xacml::xml::parse_policy(&policy_text)
            .map_err(|e| bad_data(format!("query {index}: bad policy: {e}")))?;
        let request = exacml_xacml::xml::parse_request(&request_text)
            .map_err(|e| bad_data(format!("query {index}: bad request: {e}")))?;
        out.push(ImportedQuery {
            index,
            stream: parts[1].to_string(),
            composition: parts[2].to_string(),
            subject: parts[3].to_string(),
            streamsql,
            policy,
            request,
        });
    }
    Ok(out)
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::spec::WorkloadSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exacml-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_corpus(n: usize) -> Vec<ContinuousQuery> {
        let mut spec = WorkloadSpec::small();
        spec.n_policies = n;
        WorkloadGenerator::new(spec).generate_queries()
    }

    #[test]
    fn export_then_import_round_trips() {
        let root = temp_root("rt");
        let queries = small_corpus(8);
        let files = export_corpus(&root, &queries).unwrap();
        assert_eq!(files.len(), 8);
        assert!(files[0].streamsql.exists());
        assert!(files[0].policy.exists());
        assert!(files[0].request.exists());
        assert!(root.join("manifest.txt").exists());

        let imported = import_corpus(&root).unwrap();
        assert_eq!(imported.len(), 8);
        for (original, loaded) in queries.iter().zip(imported.iter()) {
            assert_eq!(original.index, loaded.index);
            assert_eq!(original.stream, loaded.stream);
            assert_eq!(original.composition, loaded.composition);
            assert_eq!(original.subject, loaded.subject);
            assert_eq!(original.streamsql, loaded.streamsql);
            assert_eq!(original.policy, loaded.policy);
            // The request matches the policy it was generated with.
            assert!(loaded.policy.evaluate(&loaded.request).is_some());
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn imported_scripts_still_parse_as_streamsql() {
        let root = temp_root("sql");
        let queries = small_corpus(5);
        export_corpus(&root, &queries).unwrap();
        for q in import_corpus(&root).unwrap() {
            let parsed = exacml_dsms::streamsql::parse(&q.streamsql).unwrap();
            assert_eq!(parsed.graph.composition(), q.composition);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let root = temp_root("missing");
        fs::create_dir_all(&root).unwrap();
        assert!(import_corpus(&root).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_policy_is_reported() {
        let root = temp_root("corrupt");
        let queries = small_corpus(2);
        export_corpus(&root, &queries).unwrap();
        fs::write(root.join("query-0001").join("policy.xml"), "<NotAPolicy/>").unwrap();
        let err = import_corpus(&root).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("query 1"));
        let _ = fs::remove_dir_all(&root);
    }
}
