//! The Table 3 experiment parameters.

use serde::{Deserialize, Serialize};

/// The query-graph composition mix of Table 3: how many direct queries of
/// each operator combination the workload contains
/// (`Single FB : Single MB : Single AB : FB+MB : FB+AB : MB+AB : FB+MB+AB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositionMix {
    /// Queries with a single filter box.
    pub fb: usize,
    /// Queries with a single map box.
    pub mb: usize,
    /// Queries with a single aggregation box.
    pub ab: usize,
    /// Filter + map.
    pub fb_mb: usize,
    /// Filter + aggregation.
    pub fb_ab: usize,
    /// Map + aggregation.
    pub mb_ab: usize,
    /// Filter + map + aggregation.
    pub fb_mb_ab: usize,
}

impl CompositionMix {
    /// The exact Table 3 mix: `160:170:130:124:254:290:372`.
    #[must_use]
    pub fn table3() -> Self {
        CompositionMix {
            fb: 160,
            mb: 170,
            ab: 130,
            fb_mb: 124,
            fb_ab: 254,
            mb_ab: 290,
            fb_mb_ab: 372,
        }
    }

    /// A small mix with the same proportions, for quick tests.
    #[must_use]
    pub fn small() -> Self {
        CompositionMix { fb: 16, mb: 17, ab: 13, fb_mb: 12, fb_ab: 25, mb_ab: 29, fb_mb_ab: 37 }
    }

    /// Total number of queries described by the mix.
    #[must_use]
    pub fn total(&self) -> usize {
        self.fb + self.mb + self.ab + self.fb_mb + self.fb_ab + self.mb_ab + self.fb_mb_ab
    }

    /// The mix as `(label, count)` pairs in Table 3 order.
    #[must_use]
    pub fn as_pairs(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("FB", self.fb),
            ("MB", self.mb),
            ("AB", self.ab),
            ("FB+MB", self.fb_mb),
            ("FB+AB", self.fb_ab),
            ("MB+AB", self.mb_ab),
            ("FB+MB+AB", self.fb_mb_ab),
        ]
    }
}

/// All parameters of the Section 4.2 experiments (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of direct queries (`nDirectQueries` = 1500).
    pub n_direct_queries: usize,
    /// Composition of the generated query graphs (`directQueryDist`).
    pub composition: CompositionMix,
    /// Number of unique policies (`nPolicies` = 1000).
    pub n_policies: usize,
    /// Number of matching requests (`nRequests` = 1500).
    pub n_requests: usize,
    /// Zipf skew parameter (α = 0.223).
    pub zipf_alpha: f64,
    /// Maximum rank of unique requests the Zipf distribution draws from
    /// (`maxRank` = 300).
    pub max_rank: usize,
    /// RNG seed (not in the paper; added for reproducibility).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::table3()
    }
}

impl WorkloadSpec {
    /// The exact Table 3 parameters.
    #[must_use]
    pub fn table3() -> Self {
        WorkloadSpec {
            n_direct_queries: 1500,
            composition: CompositionMix::table3(),
            n_policies: 1000,
            n_requests: 1500,
            zipf_alpha: 0.223,
            max_rank: 300,
            seed: 2012,
        }
    }

    /// A scaled-down spec with the same structure, for fast tests and smoke
    /// runs (~10% of the full size).
    #[must_use]
    pub fn small() -> Self {
        WorkloadSpec {
            n_direct_queries: 150,
            composition: CompositionMix::small(),
            n_policies: 100,
            n_requests: 150,
            zipf_alpha: 0.223,
            max_rank: 30,
            seed: 2012,
        }
    }

    /// Render the spec as the rows of Table 3 (name, value, description).
    #[must_use]
    pub fn table_rows(&self) -> Vec<(String, String, String)> {
        let mix = self
            .composition
            .as_pairs()
            .iter()
            .map(|(_, n)| n.to_string())
            .collect::<Vec<_>>()
            .join(":");
        vec![
            (
                "nDirectQueries".into(),
                self.n_direct_queries.to_string(),
                "number of direct queries".into(),
            ),
            (
                "directQueryDist".into(),
                mix,
                "query graph composition (Single FB : Single MB : Single AB : FB+MB : FB+AB : MB+AB : FB+MB+AB)".into(),
            ),
            ("nPolicies".into(), self.n_policies.to_string(), "number of unique policies".into()),
            ("nRequests".into(), self.n_requests.to_string(), "number of matching requests".into()),
            ("alpha".into(), self.zipf_alpha.to_string(), "skew parameter for Zipf distribution".into()),
            (
                "maxRank".into(),
                self.max_rank.to_string(),
                "maximum rank of unique requests from which Zipf distribution is generated".into(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_mix_sums_to_1500() {
        let mix = CompositionMix::table3();
        assert_eq!(mix.total(), 1500);
        assert_eq!(mix.as_pairs().len(), 7);
        assert_eq!(mix.as_pairs()[6], ("FB+MB+AB", 372));
    }

    #[test]
    fn table3_spec_matches_paper() {
        let spec = WorkloadSpec::table3();
        assert_eq!(spec.n_direct_queries, 1500);
        assert_eq!(spec.n_policies, 1000);
        assert_eq!(spec.n_requests, 1500);
        assert!((spec.zipf_alpha - 0.223).abs() < 1e-12);
        assert_eq!(spec.max_rank, 300);
        assert_eq!(spec, WorkloadSpec::default());
    }

    #[test]
    fn table_rows_render_the_mix() {
        let rows = WorkloadSpec::table3().table_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[1].1, "160:170:130:124:254:290:372");
    }

    #[test]
    fn small_spec_keeps_structure() {
        let spec = WorkloadSpec::small();
        assert!(spec.composition.total() >= 100);
        assert!(spec.n_policies < WorkloadSpec::table3().n_policies);
    }
}
