//! The built-in scenario packs: four worlds, one harness.
//!
//! * [`smart_city`] — the paper's Section 4.2 world (weather/GPS feeds,
//!   per-agency policies, a Zipf-skewed citizen population on an open
//!   air-quality stream), ported from `examples/smart_city.rs`;
//! * [`financial_ticks`] — per-desk policies over a tick stream with bursty
//!   ingest and policy churn;
//! * [`iot_fleet`] — geo-scoped fleet access with a wide fan-out heartbeat
//!   stream (plan sharing under many subscribers);
//! * [`adversarial`] — the Section 3.4 multi-window reconstruction attack,
//!   privilege escalation via policy churn, and replayed requests; every
//!   attack must be *blocked* and audited.
//!
//! Each pack also ships as committed JSON under `crates/workload/packs/`;
//! the `pack_files_match_builtins` test keeps files and constants in sync
//! (rewrite with `PACKS_REWRITE=1 cargo test -p exacml-workload`).

use crate::scenario::{
    AuditExpectation, DeliveryExpectation, Expectations, FieldGen, FieldSpec, PolicySpec,
    QuerySpec, ScenarioPack, ScriptStep, StreamSpec, WindowData,
};

fn field(name: &str, data_type: &str, gen: FieldGen) -> FieldSpec {
    FieldSpec { name: name.into(), data_type: data_type.into(), gen }
}

fn choice(options: &[&str]) -> FieldGen {
    FieldGen {
        kind: "choice".into(),
        a: 0.0,
        b: 0.0,
        p: 0.0,
        options: options.iter().map(|s| (*s).to_string()).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn policy(
    id: &str,
    stream: &str,
    subject: &str,
    description: &str,
    filter: &str,
    visible: &[&str],
    window: Option<WindowData>,
) -> PolicySpec {
    PolicySpec {
        id: id.into(),
        stream: stream.into(),
        subject: subject.into(),
        description: description.into(),
        filter: filter.into(),
        visible: visible.iter().map(|s| (*s).to_string()).collect(),
        window,
    }
}

fn deliver(tap: &str, min: u64, max: Option<u64>) -> DeliveryExpectation {
    DeliveryExpectation { tap: tap.into(), min, max }
}

fn audit(kind: &str, min: u64) -> AuditExpectation {
    AuditExpectation { kind: kind.into(), min }
}

/// The paper's smart-city world: weather and GPS feeds, per-agency policies
/// (health sees aggregate climate windows, transport sees heavy-rain rows,
/// the urban lab sees slow-traffic GPS), cross-agency denials, a policy
/// revocation mid-run, and a Zipf-skewed citizen population sharing one
/// air-quality plan.
#[must_use]
pub fn smart_city() -> ScenarioPack {
    ScenarioPack {
        name: "smart-city".into(),
        description: "Section 4.2's weather/GPS world with per-agency policies, revocation, \
                      and a Zipf citizen population on an open air-quality stream"
            .into(),
        seed: 42,
        fanout_stream: "airquality".into(),
        streams: vec![
            StreamSpec {
                name: "weather".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(30_000.0)),
                    field("temperature", "double", FieldGen::uniform(24.0, 34.0)),
                    field("humidity", "double", FieldGen::uniform(60.0, 95.0)),
                    field("solarradiation", "double", FieldGen::uniform(0.0, 1000.0)),
                    field("rainrate", "double", FieldGen::burst(5.0, 25.0, 0.3)),
                    field("windspeed", "double", FieldGen::uniform(0.0, 15.0)),
                    field("winddirection", "double", FieldGen::uniform(0.0, 360.0)),
                    field("barometer", "double", FieldGen::uniform(990.0, 1030.0)),
                ],
            },
            StreamSpec {
                name: "gps".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(5_000.0)),
                    field("deviceid", "int", FieldGen::serial(1.0)),
                    field("latitude", "double", FieldGen::walk(1.3521, 0.001)),
                    field("longitude", "double", FieldGen::walk(103.8198, 0.001)),
                    field("speed", "double", FieldGen::uniform(0.0, 90.0)),
                    field("heading", "double", FieldGen::uniform(0.0, 360.0)),
                ],
            },
            StreamSpec {
                name: "airquality".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(60_000.0)),
                    field("pm25", "double", FieldGen::burst(35.0, 150.0, 0.1)),
                    field("ozone", "double", FieldGen::uniform(10.0, 80.0)),
                ],
            },
        ],
        policies: vec![
            policy(
                "weather-for-health",
                "weather",
                "HealthAgency",
                "aggregate climate windows for heat-stress monitoring",
                "",
                &["samplingtime", "temperature", "humidity"],
                Some(WindowData::tuples(
                    120,
                    60,
                    ["samplingtime:lastval", "temperature:avg", "humidity:avg"],
                )),
            ),
            policy(
                "weather-for-transport",
                "weather",
                "TransportAuthority",
                "heavy-rain rows for the traffic warning system",
                "rainrate > 5",
                &["samplingtime", "rainrate", "windspeed"],
                Some(WindowData::tuples(
                    5,
                    2,
                    ["samplingtime:lastval", "rainrate:avg", "windspeed:max"],
                )),
            ),
            policy(
                "gps-for-research",
                "gps",
                "UrbanLab",
                "slow-traffic GPS rows for congestion research",
                "speed < 60",
                &["samplingtime", "latitude", "longitude", "speed"],
                None,
            ),
            policy(
                "airquality-open",
                "airquality",
                "",
                "public air-quality windows for any citizen",
                "",
                &["samplingtime", "pm25"],
                Some(WindowData::tuples(20, 10, ["samplingtime:lastval", "pm25:avg"])),
            ),
        ],
        script: vec![
            ScriptStep::request("HealthAgency", "weather", "grant").with_tap("health"),
            ScriptStep::request("TransportAuthority", "weather", "grant").with_tap("transport"),
            ScriptStep::request("UrbanLab", "gps", "grant").with_tap("research"),
            // Cross-agency access is denied: no policy lets transport read GPS.
            ScriptStep::request("TransportAuthority", "gps", "deny"),
            // A replayed request reuses the live handle instead of deploying twice.
            ScriptStep::request("HealthAgency", "weather", "reuse"),
            ScriptStep::zipf_requests("airquality", "citizen-", 40, 0.223, 80),
            ScriptStep::ingest("weather", 600),
            ScriptStep::ingest("gps", 200),
            ScriptStep::ingest("airquality", 200),
            // The NEA revokes the transport feed mid-run; the live handle dies.
            ScriptStep::remove_policy("weather-for-transport"),
            ScriptStep::request("TransportAuthority", "weather", "deny"),
        ],
        expect: Expectations {
            // 3 named agency grants + 35 distinct Zipf citizens; the replayed
            // health request plus 45 repeat citizens ride live handles.
            grants: Some(38),
            reuses: Some(46),
            denials: Some(2),
            blocked: Some(0),
            max_live_plans: Some(4),
            final_policies: Some(3),
            deliveries: vec![
                // 600 tuples through a (120, 60) tuple window: exactly 9 emissions.
                deliver("health", 9, Some(9)),
                deliver("transport", 10, None),
                deliver("research", 50, None),
            ],
            audit_min: vec![audit("granted", 4), audit("denied", 2), audit("policy-removed", 1)],
            no_grants_for: Vec::new(),
        },
    }
}

/// Per-desk tick policies with bursty ingest: each desk sees only its
/// instrument class, a risk population shares one market-depth plan, and the
/// equities policy is tightened mid-run (update withdraws the old grant).
#[must_use]
pub fn financial_ticks() -> ScenarioPack {
    ScenarioPack {
        name: "financial-ticks".into(),
        description: "per-desk tick visibility with bursty ingest, policy churn and a \
                      Zipf analyst population on an open market-depth stream"
            .into(),
        seed: 77,
        fanout_stream: "marketdepth".into(),
        streams: vec![
            StreamSpec {
                name: "ticks".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(1_000.0)),
                    field("instclass", "int", FieldGen::uniform(1.0, 5.0)),
                    field("symbol", "text", choice(&["AAA", "BBB", "CCC", "DDD", "EEE"])),
                    field("price", "double", FieldGen::walk(100.0, 2.0)),
                    field("size", "double", FieldGen::burst(100.0, 5000.0, 0.1)),
                ],
            },
            StreamSpec {
                name: "marketdepth".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(2_000.0)),
                    field("depth", "double", FieldGen::uniform(1000.0, 50_000.0)),
                    field("spread", "double", FieldGen::uniform(0.01, 0.5)),
                ],
            },
        ],
        policies: vec![
            policy(
                "ticks-desk-equities",
                "ticks",
                "desk-equities",
                "equities desk sees class-1 rows",
                "instclass = 1",
                &["samplingtime", "instclass", "price"],
                None,
            ),
            policy(
                "ticks-desk-rates",
                "ticks",
                "desk-rates",
                "rates desk sees class-2 price windows",
                "instclass = 2",
                &["samplingtime", "instclass", "price"],
                Some(WindowData::tuples(10, 5, ["samplingtime:lastval", "price:avg"])),
            ),
            policy(
                "marketdepth-open",
                "marketdepth",
                "",
                "firm-wide depth windows for any analyst",
                "",
                &["samplingtime", "depth"],
                Some(WindowData::tuples(50, 25, ["samplingtime:lastval", "depth:max"])),
            ),
        ],
        script: vec![
            // A quiet pre-open trickle lands before any desk subscribes.
            ScriptStep::ingest("ticks", 40),
            ScriptStep::request("desk-equities", "ticks", "grant").with_tap("equities"),
            ScriptStep::request("desk-rates", "ticks", "grant").with_tap("rates"),
            // A desk without a policy is denied.
            ScriptStep::request("desk-bonds", "ticks", "deny"),
            ScriptStep::zipf_requests("marketdepth", "analyst-", 25, 0.5, 60),
            ScriptStep::ingest("marketdepth", 300),
            // The open burst: a small batch, then the spike.
            ScriptStep::ingest("ticks", 40),
            ScriptStep::ingest("ticks", 400),
            // A replayed desk request reuses the live handle.
            ScriptStep::request("desk-equities", "ticks", "reuse"),
            ScriptStep::release("desk-rates", "ticks"),
            // Compliance tightens the equities policy; the update withdraws
            // the desk's live grant, and the re-request deploys the new graph.
            ScriptStep::update_policy(policy(
                "ticks-desk-equities",
                "ticks",
                "desk-equities",
                "equities desk sees positive-price class-1 rows only",
                "instclass = 1 AND price > 0",
                &["samplingtime", "instclass", "price"],
                None,
            )),
            ScriptStep::request("desk-equities", "ticks", "grant"),
        ],
        expect: Expectations {
            // 2 desk grants + the post-churn re-grant + 23 distinct Zipf
            // analysts; the replayed desk request and 37 repeat analysts
            // reuse live handles.
            grants: Some(26),
            reuses: Some(38),
            denials: Some(1),
            blocked: Some(0),
            max_live_plans: Some(3),
            final_policies: Some(3),
            deliveries: vec![deliver("equities", 20, None), deliver("rates", 1, None)],
            audit_min: vec![
                audit("granted", 4),
                audit("denied", 1),
                audit("policy-updated", 1),
                audit("access-released", 1),
            ],
            no_grants_for: vec!["desk-bonds".into()],
        },
    }
}

/// Geo-scoped fleet access: regional operators see only their region's rows,
/// an outsider is denied, and a wide Zipf technician population shares one
/// battery-watch plan on the heartbeat stream.
#[must_use]
pub fn iot_fleet() -> ScenarioPack {
    ScenarioPack {
        name: "iot-fleet".into(),
        description: "geo-scoped fleet telemetry with regional operator policies and a \
                      wide-fan-out heartbeat stream shared by a Zipf technician population"
            .into(),
        seed: 1312,
        fanout_stream: "heartbeat".into(),
        streams: vec![
            StreamSpec {
                name: "fleet".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(5_000.0)),
                    field("deviceid", "int", FieldGen::serial(1.0)),
                    field("region", "int", FieldGen::uniform(1.0, 5.0)),
                    field("battery", "double", FieldGen::uniform(0.0, 100.0)),
                    field("temp", "double", FieldGen::walk(20.0, 0.5)),
                ],
            },
            StreamSpec {
                name: "heartbeat".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(10_000.0)),
                    field("deviceid", "int", FieldGen::serial(1.0)),
                    field("battery", "double", FieldGen::uniform(0.0, 100.0)),
                ],
            },
        ],
        policies: vec![
            policy(
                "fleet-ops-east",
                "fleet",
                "ops-east",
                "east operators see region-1 devices",
                "region = 1",
                &["samplingtime", "deviceid", "region", "battery"],
                None,
            ),
            policy(
                "fleet-ops-west",
                "fleet",
                "ops-west",
                "west operators see region-2 devices",
                "region = 2",
                &["samplingtime", "deviceid", "region", "battery"],
                None,
            ),
            policy(
                "heartbeat-open",
                "heartbeat",
                "",
                "fleet-wide battery-low windows for any technician",
                "",
                &["samplingtime", "deviceid", "battery"],
                Some(WindowData::tuples(30, 15, ["samplingtime:lastval", "battery:min"])),
            ),
        ],
        script: vec![
            ScriptStep::request("ops-east", "fleet", "grant").with_tap("east"),
            ScriptStep::request("ops-west", "fleet", "grant").with_tap("west"),
            ScriptStep::request("outsider", "fleet", "deny"),
            ScriptStep::zipf_requests("heartbeat", "tech-", 60, 0.9, 150),
            ScriptStep::ingest("fleet", 500),
            ScriptStep::ingest("heartbeat", 450),
            // East shift change: release, then re-grant for the next crew.
            ScriptStep::release("ops-east", "fleet"),
            ScriptStep::request("ops-east", "fleet", "grant").with_tap("east-regrant"),
            ScriptStep::ingest("fleet", 100),
        ],
        expect: Expectations {
            // 2 regional grants + the shift-change re-grant + 43 distinct
            // Zipf technicians; 107 repeat technicians reuse live handles.
            grants: Some(46),
            reuses: Some(107),
            denials: Some(1),
            blocked: Some(0),
            max_live_plans: Some(4),
            final_policies: Some(3),
            deliveries: vec![
                deliver("east", 50, None),
                deliver("west", 50, None),
                deliver("east-regrant", 5, None),
            ],
            audit_min: vec![audit("granted", 4), audit("denied", 1), audit("access-released", 1)],
            no_grants_for: vec!["outsider".into()],
        },
    }
}

/// The adversarial world: every scripted attack must be *blocked* and leave
/// an audit trace.
///
/// * multi-window leak (Section 3.4 / Example 2): the attacker holds a sum
///   window of size 3 and asks for sizes 4 and 5 — the single-access guard
///   rejects both (`multiple-access-blocked` audited), so
///   `reconstruct_from_sums` never gets the second series it needs;
/// * privilege escalation via churn: a subject with no policy is denied,
///   stays denied after the vault policy is updated, and never appears in a
///   `granted` audit event;
/// * replayed requests: re-issuing a granted request reuses the live handle
///   instead of deploying a second query.
#[must_use]
pub fn adversarial() -> ScenarioPack {
    let sum_window = |size: u64| {
        QuerySpec::window_only(WindowData::tuples(size, 2, ["samplingtime:lastval", "a:sum"]))
    };
    ScenarioPack {
        name: "adversarial".into(),
        description: "multi-window reconstruction, privilege-escalation-via-churn and \
                      replayed requests — every attack blocked and audited"
            .into(),
        seed: 666,
        fanout_stream: "s".into(),
        streams: vec![
            StreamSpec {
                name: "s".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(1_000.0)),
                    field("a", "double", FieldGen::serial(0.0)),
                ],
            },
            StreamSpec {
                name: "vault".into(),
                fields: vec![
                    field("samplingtime", "timestamp", FieldGen::time(1_000.0)),
                    field("balance", "double", FieldGen::walk(1_000_000.0, 50.0)),
                ],
            },
        ],
        policies: vec![
            policy(
                "sums-open",
                "s",
                "",
                "anyone may read sum windows over the sensor stream",
                "",
                &["samplingtime", "a"],
                Some(WindowData::tuples(3, 2, ["samplingtime:lastval", "a:sum"])),
            ),
            policy(
                "vault-admin",
                "vault",
                "admin",
                "only the administrator reads the vault stream",
                "",
                &["samplingtime", "balance"],
                None,
            ),
        ],
        script: vec![
            ScriptStep::request("attacker", "s", "grant")
                .with_query(sum_window(3))
                .with_tap("attacker"),
            ScriptStep::ingest("s", 40),
            // The Example 2 reconstruction needs overlapping window sizes 4
            // and 5 on the same stream; the guard blocks both.
            ScriptStep::request("attacker", "s", "blocked").with_query(sum_window(4)),
            ScriptStep::request("attacker", "s", "blocked").with_query(sum_window(5)),
            // No policy covers mallory on the vault stream.
            ScriptStep::request("mallory", "vault", "deny"),
            // Policy churn does not open a window for escalation: the updated
            // vault policy is still admin-only, and mallory stays denied.
            ScriptStep::update_policy(policy(
                "vault-admin",
                "vault",
                "admin",
                "rotated: only the administrator reads the vault stream",
                "balance > 0",
                &["samplingtime", "balance"],
                None,
            )),
            ScriptStep::request("mallory", "vault", "deny"),
            ScriptStep::request("admin", "vault", "grant"),
            // A replayed request rides the live handle — no second deployment.
            ScriptStep::request("attacker", "s", "reuse").with_query(sum_window(3)),
            ScriptStep::ingest("s", 20),
        ],
        expect: Expectations {
            grants: Some(2),
            reuses: Some(1),
            denials: Some(2),
            blocked: Some(2),
            max_live_plans: Some(3),
            final_policies: Some(2),
            deliveries: vec![
                // 60 tuples through a (3, 2) tuple window: exactly 29 sums.
                deliver("attacker", 29, Some(29)),
            ],
            audit_min: vec![
                audit("multiple-access-blocked", 2),
                audit("denied", 2),
                audit("policy-updated", 1),
                audit("granted", 2),
                audit("reused", 1),
            ],
            no_grants_for: vec!["mallory".into()],
        },
    }
}

/// Every built-in pack, in presentation order.
#[must_use]
pub fn all() -> Vec<ScenarioPack> {
    vec![smart_city(), financial_ticks(), iot_fleet(), adversarial()]
}

/// Look a built-in pack up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<ScenarioPack> {
    all().into_iter().find(|pack| pack.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioPack;
    use std::path::PathBuf;

    #[test]
    fn builtin_packs_validate() {
        for pack in all() {
            pack.validate().unwrap_or_else(|problems| {
                panic!("pack '{}' is invalid: {}", pack.name, problems.join("; "))
            });
        }
    }

    fn pack_path(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("packs").join(format!("{name}.json"))
    }

    /// The committed `packs/*.json` files are the constants, byte for byte.
    /// Regenerate with `PACKS_REWRITE=1 cargo test -p exacml-workload`.
    #[test]
    fn pack_files_match_builtins() {
        for pack in all() {
            let path = pack_path(&pack.name);
            let rendered = pack.to_json_string().unwrap() + "\n";
            if std::env::var_os("PACKS_REWRITE").is_some() {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &rendered).unwrap();
                continue;
            }
            let committed = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            assert_eq!(
                committed,
                rendered,
                "pack file {} is stale — regenerate with PACKS_REWRITE=1",
                path.display()
            );
            // And the committed file loads back to the same pack.
            assert_eq!(ScenarioPack::from_json_str(&committed).unwrap(), pack);
        }
    }
}
