//! # exacml-workload — evaluation workload generators
//!
//! The eXACML+ evaluation (Section 4.2) drives the framework with synthetic
//! workloads: sequences of continuous queries where each query exists in
//! three forms — a StreamSQL script for the direct-query baseline, a policy
//! whose obligations describe exactly the same query graph, and a matching
//! request (so the PDP always permits). Query graphs are random combinations
//! of Filter (FB), Map (MB) and Aggregation (AB) boxes following the
//! composition counts of Table 3, and the request sequence is either unique
//! (every query appears once) or Zipf-distributed (a small number of popular
//! streams requested frequently, α = 0.223, maxRank = 300).
//!
//! This crate reproduces those generators deterministically (seeded RNG):
//!
//! * [`spec`] — the Table 3 parameter set;
//! * [`zipf`] — the Zipf rank sampler;
//! * [`streams`] — synthetic weather / GPS feeds matching the paper's
//!   real-time data sources;
//! * [`generator`] — the continuous-query corpus (script + policy + request
//!   triples) and the request sequences;
//! * [`scenario`] — the declarative [`scenario::ScenarioPack`] model: streams
//!   with seeded synthetic feeds, a policy corpus, a request/ingest script
//!   and expected-outcome oracles, loadable from JSON;
//! * [`runner`] — executes any pack against any [`Backend`] shape and checks
//!   its oracles;
//! * [`packs`] — the four built-in packs (`smart-city`, `financial-ticks`,
//!   `iot-fleet`, `adversarial`), also shipped as `packs/*.json`.
//!
//! [`Backend`]: exacml_plus::Backend

pub mod files;
pub mod generator;
pub mod packs;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod streams;
pub mod zipf;

pub use files::{export_corpus, import_corpus, ImportedQuery, QueryFiles};
pub use generator::{ContinuousQuery, RequestSequence, WorkloadGenerator};
pub use runner::{run_pack, run_pack_checked, PackCounts, PackOutcome, PackRun, StageTelemetry};
pub use scenario::{
    Expectations, FieldGen, FieldSpec, PolicySpec, QuerySpec, ScenarioPack, ScriptStep, StreamSpec,
    SyntheticFeed, WindowData,
};
pub use spec::{CompositionMix, WorkloadSpec};
pub use streams::{GpsFeed, WeatherFeed};
pub use zipf::Zipf;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::generator::{ContinuousQuery, RequestSequence, WorkloadGenerator};
    pub use crate::runner::{run_pack, run_pack_checked, PackOutcome, PackRun};
    pub use crate::scenario::ScenarioPack;
    pub use crate::spec::{CompositionMix, WorkloadSpec};
    pub use crate::streams::{GpsFeed, WeatherFeed};
    pub use crate::zipf::Zipf;
}
