//! The scenario-pack runner: execute any [`ScenarioPack`] against any
//! [`Backend`] shape and check its oracles.
//!
//! [`run_pack`] is the one-shot entry point; [`PackRun`] is the resumable
//! step machine underneath it. The step machine exists for the durability
//! story: a test can run half a pack on a `DurableServer`, drop the backend
//! (a simulated crash), recover the store, [`PackRun::reattach`] its
//! delivery taps on the recovered backend and finish the script — delivery
//! counts and oracles must come out exactly as on an uninterrupted run,
//! because WAL replay rebuilds window state and handles are re-minted at
//! their recorded URIs.
//!
//! Everything the oracles compare lives in [`PackOutcome`];
//! [`PackOutcome::semantic_fingerprint`] is the shape-independent core
//! (decision counts, per-tap deliveries, decision audit counts) that must be
//! byte-identical across all four backend shapes for the same pack.

use crate::scenario::{Expectations, ScenarioPack, ScriptStep, SyntheticFeed};
use crate::zipf::Zipf;
use exacml_plus::{AuditEventKind, Backend, ExacmlError, Subscription};
use exacml_telemetry::TelemetrySnapshot;
use exacml_xacml::Request;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::BTreeMap;

/// The four decision counters every pack pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PackCounts {
    /// Fresh grants (a new or shared deployment was handed out).
    pub grants: u64,
    /// Requests answered with an already-live handle.
    pub reuses: u64,
    /// PDP denials (including conflict rejections).
    pub denials: u64,
    /// Single-access-guard rejections (the Section 3.4 defence).
    pub blocked: u64,
}

/// One stage's telemetry activity (the diff of two registry snapshots).
#[derive(Debug, Clone, Serialize)]
pub struct StageTelemetry {
    /// Stage label (`setup`, `script`, `finish`).
    pub stage: String,
    /// Counters and stage histograms attributed to the stage.
    pub telemetry: TelemetrySnapshot,
}

/// Everything a pack run produced, ready for oracle checks and bench JSON.
#[derive(Debug, Clone, Serialize)]
pub struct PackOutcome {
    /// The pack that ran.
    pub pack: String,
    /// The backend shape it ran on (`data-server`, `fabric-3`, …).
    pub backend_kind: String,
    /// Decision counters.
    pub counts: PackCounts,
    /// Derived tuples delivered per tap label.
    pub deliveries: BTreeMap<String, u64>,
    /// Audit events by kind display name, across the whole backend.
    pub audit_kinds: BTreeMap<String, u64>,
    /// Live shared plans at pack end.
    pub live_plans: u64,
    /// Live deployments at pack end.
    pub live_deployments: u64,
    /// Loaded policies at pack end.
    pub final_policies: u64,
    /// Telemetry activity per stage.
    pub stage_telemetry: Vec<StageTelemetry>,
    /// Per-step outcomes that contradicted the step's `expect` annotation.
    pub unexpected: Vec<String>,
}

impl PackOutcome {
    /// The shape-independent core of the outcome as canonical JSON: decision
    /// counts, per-tap deliveries and the decision-kind audit counts. Two
    /// runs of one pack on *any* two backend shapes must agree on this
    /// string — policy-lifecycle audit events are excluded because a fabric
    /// records one per node.
    #[must_use]
    pub fn semantic_fingerprint(&self) -> String {
        let decision_kinds: BTreeMap<String, u64> = self
            .audit_kinds
            .iter()
            .filter(|(kind, _)| {
                [
                    AuditEventKind::Granted,
                    AuditEventKind::Reused,
                    AuditEventKind::Denied,
                    AuditEventKind::MultipleAccessBlocked,
                ]
                .iter()
                .any(|k| &k.to_string() == *kind)
            })
            .map(|(kind, count)| (kind.clone(), *count))
            .collect();
        // A labelled tuple would be nicer, but the vendored serde derive
        // rejects generic/borrowing structs; a plain tuple canonicalizes
        // just as well for equality comparison.
        serde_json::to_string(&(self.counts, self.deliveries.clone(), decision_kinds))
            .expect("fingerprint serializes")
    }

    /// Check this outcome against the pack's oracles. Returns every
    /// violation (empty = all oracles green).
    #[must_use]
    pub fn check(&self, expect: &Expectations) -> Vec<String> {
        let mut violations: Vec<String> = self.unexpected.clone();
        let pins = [
            ("grants", expect.grants, self.counts.grants),
            ("reuses", expect.reuses, self.counts.reuses),
            ("denials", expect.denials, self.counts.denials),
            ("blocked", expect.blocked, self.counts.blocked),
            ("final_policies", expect.final_policies, self.final_policies),
        ];
        for (name, expected, actual) in pins {
            if let Some(expected) = expected {
                if actual != expected {
                    violations.push(format!("{name}: expected {expected}, got {actual}"));
                }
            }
        }
        if let Some(ceiling) = expect.max_live_plans {
            if self.live_plans > ceiling {
                violations.push(format!(
                    "live_plans: {} exceeds the plan-sharing ceiling {ceiling}",
                    self.live_plans
                ));
            }
        }
        for delivery in &expect.deliveries {
            let actual = self.deliveries.get(&delivery.tap).copied().unwrap_or(0);
            if actual < delivery.min {
                violations.push(format!(
                    "tap '{}': delivered {actual}, expected at least {}",
                    delivery.tap, delivery.min
                ));
            }
            if let Some(max) = delivery.max {
                if actual > max {
                    violations.push(format!(
                        "tap '{}': delivered {actual}, expected at most {max}",
                        delivery.tap
                    ));
                }
            }
        }
        for expectation in &expect.audit_min {
            let actual = self.audit_kinds.get(&expectation.kind).copied().unwrap_or(0);
            if actual < expectation.min {
                violations.push(format!(
                    "audit '{}': {actual} events, expected at least {}",
                    expectation.kind, expectation.min
                ));
            }
        }
        violations
    }
}

struct Tap {
    handle: exacml_dsms::StreamHandle,
    subscription: Option<Subscription>,
    delivered: u64,
}

/// The resumable pack step machine. Borrows only the pack — the backend is
/// an argument to every method, so a run can outlive a killed backend and
/// continue on its recovered successor.
pub struct PackRun<'p> {
    pack: &'p ScenarioPack,
    cursor: usize,
    feeds: BTreeMap<String, SyntheticFeed>,
    taps: BTreeMap<String, Tap>,
    counts: PackCounts,
    unexpected: Vec<String>,
    stage_telemetry: Vec<StageTelemetry>,
    last_snapshot: TelemetrySnapshot,
}

impl<'p> PackRun<'p> {
    /// Register the pack's streams and load its policy corpus, recording
    /// the `setup` telemetry stage.
    ///
    /// # Errors
    /// Propagates registration/load failures (a pack is broken, not a
    /// scenario outcome).
    pub fn setup(backend: &dyn Backend, pack: &'p ScenarioPack) -> Result<Self, ExacmlError> {
        let base = backend.telemetry();
        for stream in &pack.streams {
            backend.register_stream(&stream.name, stream.schema())?;
        }
        for policy in &pack.policies {
            let built = policy.build().map_err(|detail| ExacmlError::BadObligation {
                obligation_id: policy.id.clone(),
                detail,
            })?;
            backend.load_policy(built)?;
        }
        let after_setup = backend.telemetry();
        let feeds = pack
            .streams
            .iter()
            .map(|stream| (stream.name.clone(), SyntheticFeed::new(stream, pack.seed)))
            .collect();
        Ok(PackRun {
            pack,
            cursor: 0,
            feeds,
            taps: BTreeMap::new(),
            counts: PackCounts::default(),
            unexpected: Vec::new(),
            stage_telemetry: vec![StageTelemetry {
                stage: "setup".into(),
                telemetry: after_setup.diff(&base),
            }],
            last_snapshot: after_setup,
        })
    }

    /// The next step index to execute.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Total script length.
    #[must_use]
    pub fn script_len(&self) -> usize {
        self.pack.script.len()
    }

    /// Pull everything the taps have settled so far into their delivery
    /// counters (call before killing a backend so pre-crash deliveries are
    /// banked).
    pub fn drain_taps(&mut self) {
        for tap in self.taps.values_mut() {
            if let Some(subscription) = tap.subscription.as_mut() {
                tap.delivered += subscription.drain_settled().len() as u64;
            }
        }
    }

    /// Re-subscribe every live tap on `backend` — the recovery path, where
    /// handles were re-minted at their recorded URIs by WAL replay. Dead
    /// taps (their policy was removed before the crash) stay detached.
    ///
    /// # Errors
    /// Propagates subscribe failures on handles the backend reports live.
    pub fn reattach(&mut self, backend: &dyn Backend) -> Result<(), ExacmlError> {
        for tap in self.taps.values_mut() {
            if backend.handle_is_live(&tap.handle) {
                tap.subscription = Some(backend.subscribe(&tap.handle)?);
            } else {
                tap.subscription = None;
            }
        }
        self.last_snapshot = backend.telemetry();
        Ok(())
    }

    /// Execute the next script step. Returns `false` when the script is
    /// exhausted. Outcomes contradicting the step's `expect` annotation are
    /// recorded (and surface through [`PackOutcome::check`]); only
    /// infrastructure failures (unknown stream, broken policy data) error.
    ///
    /// # Errors
    /// Propagates infrastructure failures; never scenario outcomes.
    pub fn step(&mut self, backend: &dyn Backend) -> Result<bool, ExacmlError> {
        let Some(step) = self.pack.script.get(self.cursor) else {
            return Ok(false);
        };
        let step = step.clone();
        self.cursor += 1;
        match step.op.as_str() {
            "request" => self.exec_request(backend, &step),
            "ingest" => {
                let feed = self
                    .feeds
                    .get_mut(&step.stream)
                    .unwrap_or_else(|| panic!("unknown feed '{}'", step.stream));
                let batch = feed.next_batch(step.count);
                backend.push_batch(&step.stream, batch)?;
                self.drain_taps();
            }
            "release" => {
                self.drain_taps();
                backend.release_access(&step.subject, &step.stream);
            }
            "update-policy" => {
                self.drain_taps();
                let spec = step.policy.as_ref().expect("validated update-policy");
                let policy = spec.build().map_err(|detail| ExacmlError::BadObligation {
                    obligation_id: spec.id.clone(),
                    detail,
                })?;
                backend.update_policy(policy)?;
            }
            "remove-policy" => {
                self.drain_taps();
                backend.remove_policy(&step.policy_id)?;
            }
            "zipf-requests" => {
                let mut rng = StdRng::seed_from_u64(
                    self.pack.seed ^ (self.cursor as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let zipf = Zipf::new(step.subjects as usize, step.alpha);
                for rank in zipf.sample_sequence(step.count as usize, &mut rng) {
                    let subject = format!("{}{rank}", step.prefix);
                    let request = ScriptStep::request(&subject, &step.stream, "open");
                    self.exec_request(backend, &request);
                }
            }
            other => panic!("unknown op '{other}' (validate() missed it)"),
        }
        Ok(true)
    }

    fn exec_request(&mut self, backend: &dyn Backend, step: &ScriptStep) {
        let query = step.query.as_ref().map(|q| {
            q.to_user_query(&step.stream)
                .unwrap_or_else(|problem| panic!("bad query spec: {problem}"))
        });
        let request = Request::subscribe(&step.subject, &step.stream);
        let outcome = match backend.handle_request(&request, query.as_ref()) {
            Ok(response) => {
                let reused = response.response.reused;
                if reused {
                    self.counts.reuses += 1;
                } else {
                    self.counts.grants += 1;
                }
                if !step.tap.is_empty() {
                    match backend.subscribe(response.handle()) {
                        Ok(subscription) => {
                            self.taps.insert(
                                step.tap.clone(),
                                Tap {
                                    handle: response.handle().clone(),
                                    subscription: Some(subscription),
                                    delivered: 0,
                                },
                            );
                        }
                        Err(error) => self
                            .unexpected
                            .push(format!("tap '{}': subscribe failed: {error}", step.tap)),
                    }
                }
                if reused {
                    "reuse"
                } else {
                    "grant"
                }
            }
            Err(ExacmlError::MultipleAccess { .. }) => {
                self.counts.blocked += 1;
                "blocked"
            }
            Err(ExacmlError::AccessDenied { .. } | ExacmlError::ConflictDetected { .. }) => {
                self.counts.denials += 1;
                "deny"
            }
            Err(other) => {
                self.unexpected.push(format!(
                    "request {}@{}: unexpected error {other}",
                    step.subject, step.stream
                ));
                return;
            }
        };
        let matches = match step.expect.as_str() {
            "open" => outcome == "grant" || outcome == "reuse",
            expected => outcome == expected,
        };
        if !matches {
            self.unexpected.push(format!(
                "request {}@{}: expected {}, got {outcome}",
                step.subject, step.stream, step.expect
            ));
        }
    }

    /// Run the remaining script to completion.
    ///
    /// # Errors
    /// Propagates infrastructure failures from [`PackRun::step`].
    pub fn run_script(&mut self, backend: &dyn Backend) -> Result<(), ExacmlError> {
        while self.step(backend)? {}
        Ok(())
    }

    /// Final drain, telemetry stage capture and outcome assembly.
    pub fn finish(mut self, backend: &dyn Backend) -> PackOutcome {
        let script_snapshot = backend.telemetry();
        self.stage_telemetry.push(StageTelemetry {
            stage: "script".into(),
            telemetry: script_snapshot.diff(&self.last_snapshot),
        });
        self.drain_taps();
        let final_snapshot = backend.telemetry();
        self.stage_telemetry.push(StageTelemetry {
            stage: "finish".into(),
            telemetry: final_snapshot.diff(&script_snapshot),
        });
        // The no-grants oracle consults the audit trail directly, so it runs
        // here (where the backend is at hand) and surfaces via `unexpected`.
        for subject in &self.pack.expect.no_grants_for {
            let granted = backend
                .audit_events_for_subject(subject)
                .into_iter()
                .filter(|tagged| {
                    matches!(tagged.event.kind, AuditEventKind::Granted | AuditEventKind::Reused)
                })
                .count();
            if granted > 0 {
                self.unexpected.push(format!(
                    "subject '{subject}' must never be granted, \
                     but has {granted} grant/reuse audit events"
                ));
            }
        }
        let deliveries =
            self.taps.iter().map(|(label, tap)| (label.clone(), tap.delivered)).collect();
        PackOutcome {
            pack: self.pack.name.clone(),
            backend_kind: backend.backend_kind(),
            counts: self.counts,
            deliveries,
            audit_kinds: backend.audit_kind_counts(),
            live_plans: backend.live_plans() as u64,
            live_deployments: backend.live_deployments() as u64,
            final_policies: backend.policy_count() as u64,
            stage_telemetry: self.stage_telemetry,
            unexpected: self.unexpected,
        }
    }
}

/// Execute a whole pack on `backend`: setup, script, finish.
///
/// # Errors
/// Propagates infrastructure failures; oracle violations are *not* errors —
/// check them with [`PackOutcome::check`].
pub fn run_pack(backend: &dyn Backend, pack: &ScenarioPack) -> Result<PackOutcome, ExacmlError> {
    let mut run = PackRun::setup(backend, pack)?;
    run.run_script(backend)?;
    Ok(run.finish(backend))
}

/// Run a pack and assert every oracle holds, panicking with the violation
/// list otherwise (the form tests use).
///
/// # Panics
/// Panics on infrastructure failures or oracle violations.
pub fn run_pack_checked(backend: &dyn Backend, pack: &ScenarioPack) -> PackOutcome {
    let outcome = run_pack(backend, pack)
        .unwrap_or_else(|error| panic!("pack '{}' failed to run: {error}", pack.name));
    let violations = outcome.check(&pack.expect);
    assert!(
        violations.is_empty(),
        "pack '{}' on {}: oracle violations:\n  {}",
        pack.name,
        outcome.backend_kind,
        violations.join("\n  ")
    );
    outcome
}

/// Normalize an audit trail for cross-run comparison: wall-clock artifacts
/// are scrubbed — `timestamp_ms` is zeroed, and the `policy-loaded` detail
/// (which embeds the measured load duration) is blanked. Node tags,
/// sequences, subjects, handles and every other detail are kept.
#[must_use]
pub fn normalized_audit_json(events: &[exacml_plus::TaggedAuditEvent]) -> String {
    let normalized: Vec<exacml_plus::TaggedAuditEvent> = events
        .iter()
        .map(|tagged| {
            let mut tagged = tagged.clone();
            tagged.event.timestamp_ms = 0;
            if tagged.event.kind == AuditEventKind::PolicyLoaded {
                tagged.event.detail = String::new();
            }
            tagged
        })
        .collect();
    serde_json::to_string(&normalized).expect("audit serializes")
}
