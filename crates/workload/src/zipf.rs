//! Zipf-distributed rank sampling.
//!
//! The second request sequence of the evaluation "follows a Zipf
//! distribution, which models the scenario where a small number of popular
//! streams are requested frequently", as observed in peer-to-peer file
//! sharing and web caching. The paper uses α = 0.223 over the top
//! `maxRank` = 300 unique requests.

use rand::Rng;

/// A Zipf(α) distribution over the ranks `0 .. n`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^α`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with skew `alpha`.
    ///
    /// # Panics
    /// Panics when `n` is zero or `alpha` is negative (programming errors in
    /// experiment setup).
    #[must_use]
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "Zipf skew must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point drift on the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative, alpha }
    }

    /// Number of ranks.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.cumulative.len()
    }

    /// The skew parameter.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The probability of rank `k` (0-based).
    #[must_use]
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - prev
    }

    /// Draw one rank (0-based).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Draw a whole sequence of ranks.
    pub fn sample_sequence<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(300, 0.223);
        let total: f64 = (0..300).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..300 {
            assert!(z.probability(k) <= z.probability(k - 1) + 1e-12);
        }
        assert_eq!(z.probability(300), 0.0);
        assert_eq!(z.ranks(), 300);
        assert!((z.alpha() - 0.223).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_probabilities_roughly() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = z.sample_sequence(50_000, &mut rng);
        let rank0 = samples.iter().filter(|s| **s == 0).count() as f64 / samples.len() as f64;
        assert!(
            (rank0 - z.probability(0)).abs() < 0.02,
            "rank0 freq {rank0} vs p {}",
            z.probability(0)
        );
        // Every drawn rank is within range.
        assert!(samples.iter().all(|s| *s < 50));
    }

    #[test]
    fn low_alpha_is_close_to_uniform() {
        // α = 0.223 (the paper's value) is only mildly skewed: the most
        // popular rank is requested a few times more than the least popular.
        let z = Zipf::new(300, 0.223);
        let ratio = z.probability(0) / z.probability(299);
        assert!(ratio > 1.0);
        assert!(ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let z = Zipf::new(100, 0.7);
        let a = z.sample_sequence(100, &mut StdRng::seed_from_u64(3));
        let b = z.sample_sequence(100, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
