//! Synthetic stream feeds.
//!
//! The paper's DSMS "maintains a few real-time data streams from various
//! projects, such as weather data feeds from a number of mini weather
//! stations producing weather records at one-minute intervals" and "GPS
//! track information from personal mobile devices". We cannot replay those
//! proprietary feeds, so these generators produce synthetic tuples with the
//! same schemas and cadence; the access-control evaluation never depends on
//! the actual values.

use exacml_dsms::{Schema, Tuple, Value};
use exacml_plus::{ExacmlError, StreamBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A synthetic weather-station feed (Example 1 schema, one record per
/// sampling interval).
#[derive(Debug, Clone)]
pub struct WeatherFeed {
    schema: Arc<Schema>,
    rng: StdRng,
    next_ts: i64,
    interval_ms: i64,
    /// Base rain rate; bursts are added on top to exercise filter thresholds.
    base_rain: f64,
}

impl WeatherFeed {
    /// A feed emitting one record every `interval_ms` milliseconds.
    #[must_use]
    pub fn new(seed: u64, interval_ms: i64) -> Self {
        WeatherFeed {
            schema: Schema::weather_example().shared(),
            rng: StdRng::seed_from_u64(seed),
            next_ts: 0,
            interval_ms,
            base_rain: 2.0,
        }
    }

    /// The paper's 30-second weather feed.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        WeatherFeed::new(seed, 30_000)
    }

    /// The stream's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generate the next record.
    pub fn next_tuple(&mut self) -> Tuple {
        let ts = self.next_ts;
        self.next_ts += self.interval_ms;
        // Rain: mostly light with occasional heavy bursts (so both sides of
        // the `rainrate > 5` / `> 50` thresholds are exercised).
        let burst = if self.rng.gen_bool(0.15) { self.rng.gen_range(20.0..90.0_f64) } else { 0.0 };
        let rain = (self.base_rain + self.rng.gen_range(0.0..4.0_f64) + burst).max(0.0);
        Tuple::builder_shared(&self.schema)
            .set("samplingtime", Value::Timestamp(ts))
            .set("temperature", 24.0 + self.rng.gen_range(0.0..10.0))
            .set("humidity", 60.0 + self.rng.gen_range(0.0..35.0))
            .set("solarradiation", self.rng.gen_range(0.0..900.0))
            .set("rainrate", rain)
            .set("windspeed", self.rng.gen_range(0.0..40.0))
            .set("winddirection", i64::from(self.rng.gen_range(0..360)))
            .set("barometer", 1000.0 + self.rng.gen_range(0.0..30.0))
            .finish()
            .expect("generated weather tuples always match the schema")
    }

    /// Generate a batch of records.
    pub fn take(&mut self, count: usize) -> Vec<Tuple> {
        (0..count).map(|_| self.next_tuple()).collect()
    }

    /// Generate `count` records and push them into any [`StreamBackend`] —
    /// a bare `StreamEngine`, a `DataServer`, a `Fabric`, or a
    /// `&dyn Backend` — as one batch (a single routing decision and shard
    /// lock acquisition). Returns the number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when the stream is unknown on the backend or its schema
    /// differs from the feed's.
    pub fn pump_into<B: StreamBackend + ?Sized>(
        &mut self,
        backend: &B,
        stream: &str,
        count: usize,
    ) -> Result<usize, ExacmlError> {
        let batch = self.take(count);
        backend.push_batch(stream, batch)
    }
}

/// A synthetic GPS-track feed.
#[derive(Debug, Clone)]
pub struct GpsFeed {
    schema: Arc<Schema>,
    rng: StdRng,
    next_ts: i64,
    interval_ms: i64,
    latitude: f64,
    longitude: f64,
    device: String,
}

impl GpsFeed {
    /// A feed for one device emitting a fix every `interval_ms` milliseconds.
    pub fn new(seed: u64, device: impl Into<String>, interval_ms: i64) -> Self {
        GpsFeed {
            schema: Schema::gps_example().shared(),
            rng: StdRng::seed_from_u64(seed),
            next_ts: 0,
            interval_ms,
            // Start near the NTU campus, where the authors' testbed lived.
            latitude: 1.3483,
            longitude: 103.6831,
            device: device.into(),
        }
    }

    /// The stream's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Generate the next fix (a small random walk).
    pub fn next_tuple(&mut self) -> Tuple {
        let ts = self.next_ts;
        self.next_ts += self.interval_ms;
        self.latitude += self.rng.gen_range(-0.0005..0.0005);
        self.longitude += self.rng.gen_range(-0.0005..0.0005);
        Tuple::builder_shared(&self.schema)
            .set("samplingtime", Value::Timestamp(ts))
            .set("deviceid", self.device.clone())
            .set("latitude", self.latitude)
            .set("longitude", self.longitude)
            .set("speed", self.rng.gen_range(0.0..110.0))
            .set("heading", i64::from(self.rng.gen_range(0..360)))
            .finish()
            .expect("generated GPS tuples always match the schema")
    }

    /// Generate a batch of fixes.
    pub fn take(&mut self, count: usize) -> Vec<Tuple> {
        (0..count).map(|_| self.next_tuple()).collect()
    }

    /// Generate `count` fixes and push them into any [`StreamBackend`] as
    /// one batch (a single routing decision and shard lock acquisition).
    /// Returns the number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when the stream is unknown on the backend or its schema
    /// differs from the feed's.
    pub fn pump_into<B: StreamBackend + ?Sized>(
        &mut self,
        backend: &B,
        stream: &str,
        count: usize,
    ) -> Result<usize, ExacmlError> {
        let batch = self.take(count);
        backend.push_batch(stream, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weather_feed_produces_valid_monotone_tuples() {
        let mut feed = WeatherFeed::paper_default(1);
        let batch = feed.take(100);
        assert_eq!(batch.len(), 100);
        for pair in batch.windows(2) {
            assert_eq!(pair[1].event_time().unwrap() - pair[0].event_time().unwrap(), 30_000);
        }
        // Values stay in plausible ranges and exercise the rain threshold.
        assert!(batch.iter().all(|t| t.get_f64("rainrate").unwrap() >= 0.0));
        assert!(batch.iter().any(|t| t.get_f64("rainrate").unwrap() > 5.0));
        assert!(batch.iter().any(|t| t.get_f64("rainrate").unwrap() <= 5.0));
    }

    #[test]
    fn weather_feed_is_deterministic_per_seed() {
        let a = WeatherFeed::paper_default(7).take(10);
        let b = WeatherFeed::paper_default(7).take(10);
        let c = WeatherFeed::paper_default(8).take(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gps_feed_random_walks_near_start() {
        let mut feed = GpsFeed::new(3, "device-42", 1_000);
        let batch = feed.take(50);
        assert_eq!(batch.len(), 50);
        for t in &batch {
            assert_eq!(t.get("deviceid").unwrap().as_str(), Some("device-42"));
            let lat = t.get_f64("latitude").unwrap();
            assert!((lat - 1.3483).abs() < 0.1);
        }
    }

    #[test]
    fn feeds_match_registered_schemas() {
        let engine = exacml_dsms::StreamEngine::new();
        let mut weather = WeatherFeed::paper_default(1);
        let mut gps = GpsFeed::new(2, "d", 1000);
        engine.register_stream("weather", weather.schema().clone()).unwrap();
        engine.register_stream("gps", gps.schema().clone()).unwrap();
        engine.push("weather", weather.next_tuple()).unwrap();
        engine.push("gps", gps.next_tuple()).unwrap();
    }

    #[test]
    fn feeds_pump_batches_through_the_fabric() {
        use exacml_plus::{Fabric, FabricConfig};
        let fabric = Fabric::new(FabricConfig::local(3));
        let mut weather = WeatherFeed::paper_default(1);
        let mut gps = GpsFeed::new(2, "d", 1000);
        // Several streams so more than one node owns data.
        for i in 0..6 {
            fabric.register_stream(&format!("weather{i}"), weather.schema().clone()).unwrap();
        }
        fabric.register_stream("gps", gps.schema().clone()).unwrap();
        for i in 0..6 {
            assert_eq!(weather.pump_into(&fabric, &format!("weather{i}"), 20).unwrap(), 0);
        }
        assert_eq!(gps.pump_into(&fabric, "gps", 10).unwrap(), 0);
        assert_eq!(fabric.stats().tuples_routed, 6 * 20 + 10);
        let ingested: u64 =
            fabric.nodes().iter().map(|n| n.server().engine_stats().tuples_ingested).sum();
        assert_eq!(ingested, 6 * 20 + 10);
        assert!(weather.pump_into(&fabric, "nosuch", 1).is_err());
    }

    #[test]
    fn one_feed_pumps_every_backend_shape_through_the_trait() {
        use exacml_plus::Backend;
        let mut weather = WeatherFeed::paper_default(1);
        for backend in [<dyn Backend>::local(), <dyn Backend>::fabric(2)] {
            backend.register_stream("weather", weather.schema().clone()).unwrap();
            // The very same call drives a single server and a 2-node fabric.
            assert_eq!(weather.pump_into(backend.as_ref(), "weather", 30).unwrap(), 0);
        }
    }

    #[test]
    fn feeds_pump_batches_into_the_engine() {
        let engine = exacml_dsms::StreamEngine::new();
        let mut weather = WeatherFeed::paper_default(1);
        let mut gps = GpsFeed::new(2, "d", 1000);
        engine.register_stream("weather", weather.schema().clone()).unwrap();
        engine.register_stream("gps", gps.schema().clone()).unwrap();
        engine.deploy(&exacml_dsms::QueryGraph::identity("weather")).unwrap();
        let emitted = weather.pump_into(&engine, "weather", 50).unwrap();
        assert_eq!(emitted, 50);
        assert_eq!(gps.pump_into(&engine, "gps", 10).unwrap(), 0);
        assert_eq!(engine.stats().tuples_ingested, 60);
        assert!(weather.pump_into(&engine, "nosuch", 1).is_err());
    }
}
