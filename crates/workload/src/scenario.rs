//! Declarative scenario packs: many worlds, one harness.
//!
//! The paper's evaluation drives eXACML+ with exactly one world — the
//! weather/GPS smart-city workload of Section 4.2. A [`ScenarioPack`] turns
//! that world into *data*: streams and their schemas, a policy corpus, a
//! subject population with Zipf access skew (via [`crate::zipf`]), a scripted
//! request/ingest sequence, and expected-outcome oracles (grants allowed and
//! denied, delivery counts, audit invariants). Packs are plain serde structs;
//! the built-in worlds live in [`crate::packs`] and every pack round-trips
//! through JSON ([`ScenarioPack::to_json_string`] /
//! [`ScenarioPack::from_json_str`]), so a new world is a data file, not code.
//!
//! The runner that executes a pack against any `Backend` shape is
//! [`crate::runner`]; `docs/SCENARIOS.md` in the repository root documents
//! the schema and oracle semantics for pack authors.
//!
//! The vendored serde stand-in derives `Serialize` only (there is no typed
//! deserialization in this build environment), so loading is implemented by
//! hand over [`serde_json::Value`] — the same idiom the perf gate uses for
//! bench reports. To keep that parser honest, every spec struct is flat and
//! enum-free: discriminators are strings (`op`, `kind`) validated by
//! [`ScenarioPack::validate`].

use exacml_dsms::{AggSpec, DataType, Schema, Tuple, Value as DsmsValue, WindowKind, WindowSpec};
use exacml_plus::{StreamPolicyBuilder, UserQuery};
use exacml_xacml::Policy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use serde_json::Value;
use std::sync::Arc;

/// A complete declarative world: streams, policies, script and oracles.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioPack {
    /// Pack name (`smart-city`, `financial-ticks`, …).
    pub name: String,
    /// One-line description of the world being modelled.
    pub description: String,
    /// Master seed: every synthetic feed and Zipf draw derives from it, so
    /// two runs of the same pack are tuple-for-tuple identical.
    pub seed: u64,
    /// The stream with an *open* (subject-less) policy that fan-out and
    /// plan-sharing measurements target.
    pub fanout_stream: String,
    /// Input streams and their synthesised schemas.
    pub streams: Vec<StreamSpec>,
    /// The policy corpus loaded before the script runs.
    pub policies: Vec<PolicySpec>,
    /// The ordered request/ingest script.
    pub script: Vec<ScriptStep>,
    /// Expected-outcome oracles checked after the script completes.
    pub expect: Expectations,
}

/// One input stream: a name plus per-field type and value generator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamSpec {
    /// Stream name.
    pub name: String,
    /// Ordered fields (the first `time` field is the event-time column).
    pub fields: Vec<FieldSpec>,
}

/// One schema field with its deterministic value generator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FieldSpec {
    /// Attribute name.
    pub name: String,
    /// `int` | `double` | `text` | `timestamp` | `bool`.
    pub data_type: String,
    /// How values are synthesised.
    pub gen: FieldGen,
}

/// A deterministic per-field value generator.
///
/// `kind` selects the distribution; `a`, `b` and `p` are its parameters:
///
/// | kind      | meaning                                                     |
/// |-----------|-------------------------------------------------------------|
/// | `time`    | monotone event time advancing by `a` per tuple              |
/// | `serial`  | `a`, `a+1`, `a+2`, … (per-field counter)                    |
/// | `uniform` | uniform draw from `[a, b)`                                  |
/// | `walk`    | random walk from `a` with per-tuple step in `[-b, b]`       |
/// | `burst`   | uniform `[0, a)`; with probability `p` a spike in `[a, b)`  |
/// | `choice`  | uniform pick from `options` (text fields)                   |
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FieldGen {
    /// Generator kind (see table above).
    pub kind: String,
    /// First parameter (interval, start, low bound, base …).
    pub a: f64,
    /// Second parameter (high bound, step …).
    pub b: f64,
    /// Spike probability (`burst` only).
    pub p: f64,
    /// The option set (`choice` only).
    pub options: Vec<String>,
}

impl FieldGen {
    /// A monotone event-time column advancing `interval_ms` per tuple.
    #[must_use]
    pub fn time(interval_ms: f64) -> Self {
        FieldGen { kind: "time".into(), a: interval_ms, b: 0.0, p: 0.0, options: Vec::new() }
    }

    /// A per-field counter `start, start+1, …`.
    #[must_use]
    pub fn serial(start: f64) -> Self {
        FieldGen { kind: "serial".into(), a: start, b: 0.0, p: 0.0, options: Vec::new() }
    }

    /// A uniform draw from `[lo, hi)`.
    #[must_use]
    pub fn uniform(lo: f64, hi: f64) -> Self {
        FieldGen { kind: "uniform".into(), a: lo, b: hi, p: 0.0, options: Vec::new() }
    }

    /// A random walk from `start` with per-tuple step in `[-step, step]`.
    #[must_use]
    pub fn walk(start: f64, step: f64) -> Self {
        FieldGen { kind: "walk".into(), a: start, b: step, p: 0.0, options: Vec::new() }
    }

    /// Uniform `[0, base)`, spiking into `[base, spike)` with probability `p`.
    #[must_use]
    pub fn burst(base: f64, spike: f64, p: f64) -> Self {
        FieldGen { kind: "burst".into(), a: base, b: spike, p, options: Vec::new() }
    }
}

/// One policy of the pack's corpus, in [`StreamPolicyBuilder`] vocabulary.
///
/// An empty `subject` makes the policy *open*: any subject asking for the
/// stream matches (the shape Zipf populations and fan-out measurements use).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PolicySpec {
    /// Policy id.
    pub id: String,
    /// Governed stream.
    pub stream: String,
    /// Restricting subject (`""` = open to any subject).
    pub subject: String,
    /// Free-form description.
    pub description: String,
    /// Row-visibility filter condition (`""` = none).
    pub filter: String,
    /// Visible attributes (empty = no map box).
    pub visible: Vec<String>,
    /// Mandatory aggregation window (`None` = no window box).
    pub window: Option<WindowData>,
}

impl PolicySpec {
    /// Build the XACML policy this spec describes.
    ///
    /// # Errors
    /// Fails when the window data does not parse (bad kind or agg pair).
    pub fn build(&self) -> Result<Policy, String> {
        let mut builder =
            StreamPolicyBuilder::new(&self.id, &self.stream).description(&self.description);
        if !self.subject.is_empty() {
            builder = builder.subject(&self.subject);
        }
        if !self.filter.is_empty() {
            builder = builder.filter(&self.filter);
        }
        if !self.visible.is_empty() {
            builder = builder.visible_attributes(self.visible.iter().map(String::as_str));
        }
        if let Some(window) = &self.window {
            let (spec, aggs) = window.to_spec()?;
            builder = builder.window(spec, aggs);
        }
        Ok(builder.build())
    }
}

/// A window obligation in data form: kind, size, advance and the
/// `attribute:function` aggregation pairs ([`AggSpec::encode`] syntax).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowData {
    /// `tuple` or `time`.
    pub kind: String,
    /// Window size.
    pub size: u64,
    /// Advance step.
    pub advance: u64,
    /// Encoded aggregation pairs, e.g. `price:avg`.
    pub aggs: Vec<String>,
}

impl WindowData {
    /// A tuple-based window.
    #[must_use]
    pub fn tuples<I, S>(size: u64, advance: u64, aggs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        WindowData {
            kind: "tuple".into(),
            size,
            advance,
            aggs: aggs.into_iter().map(Into::into).collect(),
        }
    }

    /// Decode into the engine's window spec and aggregation list.
    ///
    /// # Errors
    /// Fails on an unknown window kind or a malformed `attr:func` pair.
    pub fn to_spec(&self) -> Result<(WindowSpec, Vec<AggSpec>), String> {
        let kind = WindowKind::from_keyword(&self.kind)
            .ok_or_else(|| format!("unknown window kind '{}'", self.kind))?;
        let spec = WindowSpec { kind, size: self.size, advance: self.advance };
        let mut aggs = Vec::with_capacity(self.aggs.len());
        for pair in &self.aggs {
            aggs.push(AggSpec::parse(pair).ok_or_else(|| format!("bad agg pair '{pair}'"))?);
        }
        Ok((spec, aggs))
    }
}

/// A customised user query riding on a request (Section 3.2's `Q_U`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuerySpec {
    /// Extra filter condition (`""` = none).
    pub filter: String,
    /// Projected attributes (empty = none).
    pub select: Vec<String>,
    /// Requested aggregation window (`None` = none).
    pub window: Option<WindowData>,
}

impl QuerySpec {
    /// A query that only customises the aggregation window.
    #[must_use]
    pub fn window_only(window: WindowData) -> Self {
        QuerySpec { filter: String::new(), select: Vec::new(), window: Some(window) }
    }

    /// Build the typed [`UserQuery`] for `stream`.
    ///
    /// # Errors
    /// Fails when the window data does not parse.
    pub fn to_user_query(&self, stream: &str) -> Result<UserQuery, String> {
        let mut query = UserQuery::for_stream(stream);
        if !self.filter.is_empty() {
            query = query.with_filter(&self.filter);
        }
        if !self.select.is_empty() {
            query = query.with_map(self.select.iter().map(String::as_str));
        }
        if let Some(window) = &self.window {
            let (spec, aggs) = window.to_spec()?;
            query = query.with_aggregation(spec, aggs);
        }
        Ok(query)
    }
}

/// One step of a pack's script. Flat and string-discriminated so the whole
/// script serializes without enum support; `op` selects the action:
///
/// | op              | fields used                                        |
/// |-----------------|----------------------------------------------------|
/// | `request`       | `subject`, `stream`, `query?`, `expect`, `tap?`    |
/// | `ingest`        | `stream`, `count`                                  |
/// | `release`       | `subject`, `stream`                                |
/// | `update-policy` | `policy`                                           |
/// | `remove-policy` | `policy_id`                                        |
/// | `zipf-requests` | `stream`, `prefix`, `subjects`, `alpha`, `count`   |
///
/// `expect` is the per-request oracle: `grant`, `reuse`, `deny`, `blocked`
/// (single-access guard) or `open` (grant first time, reuse afterwards — what
/// Zipf populations produce).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScriptStep {
    /// Action discriminator (see table above).
    pub op: String,
    /// Target stream (`""` when not applicable).
    pub stream: String,
    /// Requesting/releasing subject (`""` when not applicable).
    pub subject: String,
    /// Tuple count (`ingest`) or request count (`zipf-requests`).
    pub count: u64,
    /// Expected request outcome (`""` when not a request step).
    pub expect: String,
    /// Delivery-tap label recording this grant's output (`""` = untapped).
    pub tap: String,
    /// Customised user query for `request` steps.
    pub query: Option<QuerySpec>,
    /// Replacement policy for `update-policy` steps.
    pub policy: Option<PolicySpec>,
    /// Target policy for `remove-policy` steps.
    pub policy_id: String,
    /// Population size for `zipf-requests`.
    pub subjects: u64,
    /// Zipf skew for `zipf-requests`.
    pub alpha: f64,
    /// Subject-name prefix for `zipf-requests` (subject = `{prefix}{rank}`).
    pub prefix: String,
}

impl ScriptStep {
    fn blank(op: &str) -> Self {
        ScriptStep {
            op: op.into(),
            stream: String::new(),
            subject: String::new(),
            count: 0,
            expect: String::new(),
            tap: String::new(),
            query: None,
            policy: None,
            policy_id: String::new(),
            subjects: 0,
            alpha: 0.0,
            prefix: String::new(),
        }
    }

    /// An access request with an expected outcome.
    #[must_use]
    pub fn request(subject: &str, stream: &str, expect: &str) -> Self {
        let mut step = ScriptStep::blank("request");
        step.subject = subject.into();
        step.stream = stream.into();
        step.expect = expect.into();
        step
    }

    /// Attach a customised user query to a request step.
    #[must_use]
    pub fn with_query(mut self, query: QuerySpec) -> Self {
        self.query = Some(query);
        self
    }

    /// Record the grant's deliveries under a tap label.
    #[must_use]
    pub fn with_tap(mut self, tap: &str) -> Self {
        self.tap = tap.into();
        self
    }

    /// Ingest `count` synthesised tuples into `stream`.
    #[must_use]
    pub fn ingest(stream: &str, count: u64) -> Self {
        let mut step = ScriptStep::blank("ingest");
        step.stream = stream.into();
        step.count = count;
        step
    }

    /// Release the subject's live access on `stream`.
    #[must_use]
    pub fn release(subject: &str, stream: &str) -> Self {
        let mut step = ScriptStep::blank("release");
        step.subject = subject.into();
        step.stream = stream.into();
        step
    }

    /// Replace a loaded policy (withdrawing its deployments).
    #[must_use]
    pub fn update_policy(policy: PolicySpec) -> Self {
        let mut step = ScriptStep::blank("update-policy");
        step.policy = Some(policy);
        step
    }

    /// Remove a loaded policy (withdrawing its deployments).
    #[must_use]
    pub fn remove_policy(policy_id: &str) -> Self {
        let mut step = ScriptStep::blank("remove-policy");
        step.policy_id = policy_id.into();
        step
    }

    /// `count` requests on `stream` from a Zipf-skewed population of
    /// `subjects` subjects named `{prefix}{rank}` (skew `alpha`).
    #[must_use]
    pub fn zipf_requests(
        stream: &str,
        prefix: &str,
        subjects: u64,
        alpha: f64,
        count: u64,
    ) -> Self {
        let mut step = ScriptStep::blank("zipf-requests");
        step.stream = stream.into();
        step.prefix = prefix.into();
        step.subjects = subjects;
        step.alpha = alpha;
        step.count = count;
        step.expect = "open".into();
        step
    }
}

/// A delivery-count oracle for one tap.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeliveryExpectation {
    /// The tap label (see [`ScriptStep::with_tap`]).
    pub tap: String,
    /// Minimum derived tuples the tap must have received.
    pub min: u64,
    /// Optional exact ceiling (`None` = unbounded).
    pub max: Option<u64>,
}

/// A minimum-count oracle for one audit event kind.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditExpectation {
    /// Audit kind by display name (`granted`, `denied`,
    /// `multiple-access-blocked`, `policy-updated`, …).
    pub kind: String,
    /// Minimum number of events of that kind.
    pub min: u64,
}

/// The pack-level oracles checked after the script completes. `None`
/// fields are unpinned.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Expectations {
    /// Exact number of fresh grants.
    pub grants: Option<u64>,
    /// Exact number of reused handles.
    pub reuses: Option<u64>,
    /// Exact number of PDP denials.
    pub denials: Option<u64>,
    /// Exact number of single-access-guard rejections.
    pub blocked: Option<u64>,
    /// Ceiling on live shared plans at pack end (the plan-sharing oracle:
    /// a Zipf population of N subscribers must not cost N plans).
    pub max_live_plans: Option<u64>,
    /// Exact number of loaded policies at pack end.
    pub final_policies: Option<u64>,
    /// Per-tap delivery-count oracles.
    pub deliveries: Vec<DeliveryExpectation>,
    /// Audit-trail invariants (minimum event counts per kind).
    pub audit_min: Vec<AuditExpectation>,
    /// Subjects that must never appear in a `granted` audit event.
    pub no_grants_for: Vec<String>,
}

// --- Synthetic feeds --------------------------------------------------------

/// Stable FNV-1a hash used to derive per-stream seeds from the pack seed, so
/// adding a stream does not shift another stream's tuple sequence.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic tuple synthesiser for one [`StreamSpec`].
#[derive(Debug)]
pub struct SyntheticFeed {
    spec: StreamSpec,
    schema: Arc<Schema>,
    rng: StdRng,
    tick: u64,
    walks: Vec<f64>,
}

impl SyntheticFeed {
    /// A feed for `spec`, seeded from the pack seed and the stream name.
    #[must_use]
    pub fn new(spec: &StreamSpec, pack_seed: u64) -> Self {
        let schema = spec.schema().shared();
        let walks = spec.fields.iter().map(|f| f.gen.a).collect();
        SyntheticFeed {
            spec: spec.clone(),
            schema,
            rng: StdRng::seed_from_u64(pack_seed ^ fnv1a(&spec.name)),
            tick: 0,
            walks,
        }
    }

    /// The schema tuples are built against.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Synthesise the next tuple.
    pub fn next_tuple(&mut self) -> Tuple {
        let mut builder = Tuple::builder_shared(&self.schema);
        let tick = self.tick;
        for (index, field) in self.spec.fields.iter().enumerate() {
            let gen = &field.gen;
            let raw = match gen.kind.as_str() {
                "time" => (tick as f64) * gen.a,
                "serial" => gen.a + tick as f64,
                "uniform" => self.rng.gen_range(gen.a..gen.b),
                "walk" => {
                    if gen.b > 0.0 {
                        self.walks[index] += self.rng.gen_range(-gen.b..gen.b);
                    }
                    self.walks[index]
                }
                "burst" => {
                    if self.rng.gen_bool(gen.p) {
                        self.rng.gen_range(gen.a..gen.b)
                    } else {
                        self.rng.gen_range(0.0..gen.a)
                    }
                }
                "choice" => self.rng.gen_range(0..gen.options.len().max(1)) as f64,
                other => panic!("unknown field generator '{other}' (validate() missed it)"),
            };
            let value = match field.data_type.as_str() {
                "double" => DsmsValue::Double(raw),
                "int" => DsmsValue::Int(raw.floor() as i64),
                "timestamp" => DsmsValue::Timestamp(raw.floor() as i64),
                "bool" => DsmsValue::Bool(raw >= 0.5),
                "text" => {
                    let options = &gen.options;
                    let pick = (raw.floor() as usize).min(options.len().saturating_sub(1));
                    DsmsValue::Text(options.get(pick).cloned().unwrap_or_default())
                }
                other => panic!("unknown data type '{other}' (validate() missed it)"),
            };
            builder = builder.set(&field.name, value);
        }
        self.tick += 1;
        builder.finish_with_defaults()
    }

    /// Synthesise a batch of `count` tuples.
    pub fn next_batch(&mut self, count: u64) -> Vec<Tuple> {
        (0..count).map(|_| self.next_tuple()).collect()
    }

    /// Skip `count` tuples (used when resuming a pack after recovery: the
    /// feed fast-forwards to where the killed process stopped).
    pub fn skip(&mut self, count: u64) {
        for _ in 0..count {
            let _ = self.next_tuple();
        }
    }
}

impl StreamSpec {
    /// The engine schema this spec declares.
    #[must_use]
    pub fn schema(&self) -> Schema {
        Schema::from_pairs(self.fields.iter().map(|f| {
            let data_type = match f.data_type.as_str() {
                "int" => DataType::Int,
                "double" => DataType::Double,
                "bool" => DataType::Bool,
                "text" => DataType::Text,
                "timestamp" => DataType::Timestamp,
                other => panic!("unknown data type '{other}' (validate() missed it)"),
            };
            (f.name.as_str(), data_type)
        }))
    }
}

// --- Validation -------------------------------------------------------------

const DATA_TYPES: [&str; 5] = ["int", "double", "bool", "text", "timestamp"];
const GEN_KINDS: [&str; 6] = ["time", "serial", "uniform", "walk", "burst", "choice"];
const OPS: [&str; 6] =
    ["request", "ingest", "release", "update-policy", "remove-policy", "zipf-requests"];
const EXPECTS: [&str; 5] = ["grant", "reuse", "deny", "blocked", "open"];

impl ScenarioPack {
    /// Check the pack's internal consistency: known discriminators, script
    /// targets that exist, parseable windows. Run on every load so a typo in
    /// a pack file fails fast instead of panicking mid-run.
    ///
    /// # Errors
    /// Returns every problem found (empty `Ok` means a well-formed pack).
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let streams: Vec<&str> = self.streams.iter().map(|s| s.name.as_str()).collect();
        if self.name.is_empty() {
            problems.push("pack has no name".into());
        }
        if !streams.contains(&self.fanout_stream.as_str()) {
            problems.push(format!("fanout_stream '{}' is not a stream", self.fanout_stream));
        }
        for stream in &self.streams {
            for field in &stream.fields {
                if !DATA_TYPES.contains(&field.data_type.as_str()) {
                    problems.push(format!(
                        "{}.{}: unknown data type '{}'",
                        stream.name, field.name, field.data_type
                    ));
                }
                if !GEN_KINDS.contains(&field.gen.kind.as_str()) {
                    problems.push(format!(
                        "{}.{}: unknown generator '{}'",
                        stream.name, field.name, field.gen.kind
                    ));
                }
                if field.gen.kind == "choice" && field.gen.options.is_empty() {
                    problems.push(format!(
                        "{}.{}: choice generator needs options",
                        stream.name, field.name
                    ));
                }
            }
        }
        for policy in &self.policies {
            if !streams.contains(&policy.stream.as_str()) {
                problems.push(format!("policy {}: unknown stream '{}'", policy.id, policy.stream));
            }
            if let Err(problem) = policy.build() {
                problems.push(format!("policy {}: {problem}", policy.id));
            }
        }
        let open_on_fanout =
            self.policies.iter().any(|p| p.stream == self.fanout_stream && p.subject.is_empty());
        if !open_on_fanout {
            problems.push(format!(
                "fanout_stream '{}' has no open (subject-less) policy",
                self.fanout_stream
            ));
        }
        for (index, step) in self.script.iter().enumerate() {
            if !OPS.contains(&step.op.as_str()) {
                problems.push(format!("step {index}: unknown op '{}'", step.op));
                continue;
            }
            let needs_stream =
                matches!(step.op.as_str(), "request" | "ingest" | "release" | "zipf-requests");
            if needs_stream && !streams.contains(&step.stream.as_str()) {
                problems.push(format!("step {index}: unknown stream '{}'", step.stream));
            }
            if step.op == "request" && !EXPECTS.contains(&step.expect.as_str()) {
                problems.push(format!("step {index}: unknown expect '{}'", step.expect));
            }
            if step.op == "zipf-requests" && step.subjects == 0 {
                problems.push(format!("step {index}: zipf population is empty"));
            }
            if let Some(query) = &step.query {
                if let Some(window) = &query.window {
                    if let Err(problem) = window.to_spec() {
                        problems.push(format!("step {index}: {problem}"));
                    }
                }
            }
            if step.op == "update-policy" {
                match &step.policy {
                    None => problems.push(format!("step {index}: update-policy without a policy")),
                    Some(policy) => {
                        if let Err(problem) = policy.build() {
                            problems.push(format!("step {index}: {problem}"));
                        }
                    }
                }
            }
        }
        for expectation in &self.expect.audit_min {
            if !exacml_plus::AuditEventKind::ALL
                .iter()
                .any(|kind| kind.to_string() == expectation.kind)
            {
                problems.push(format!("audit oracle: unknown kind '{}'", expectation.kind));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Override the master seed (used by the determinism property test).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale every ingest count by `factor` (nightly soak runs packs at
    /// multiples of their committed size). Delivery oracles with exact
    /// ceilings are widened, since window emission counts grow with ingest.
    #[must_use]
    pub fn scaled(mut self, factor: u64) -> Self {
        if factor <= 1 {
            return self;
        }
        for step in &mut self.script {
            if step.op == "ingest" {
                step.count *= factor;
            }
        }
        for delivery in &mut self.expect.deliveries {
            delivery.max = None;
        }
        self
    }
}

// --- JSON round-trip --------------------------------------------------------

/// Helpers for the hand-written `Value` parser (the vendored serde has no
/// typed deserialization).
fn str_of(value: &Value, key: &str) -> Result<String, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(String::new()),
        Some(v) => v.as_str().map(str::to_string).ok_or_else(|| format!("'{key}' is not a string")),
    }
}

fn f64_of(value: &Value, key: &str) -> Result<f64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(0.0),
        Some(v) => v.as_f64().ok_or_else(|| format!("'{key}' is not a number")),
    }
}

fn u64_of(value: &Value, key: &str) -> Result<u64, String> {
    let raw = f64_of(value, key)?;
    if raw < 0.0 {
        return Err(format!("'{key}' is negative"));
    }
    Ok(raw as u64)
}

fn opt_u64_of(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let raw = v.as_f64().ok_or_else(|| format!("'{key}' is not a number"))?;
            Ok(Some(raw as u64))
        }
    }
}

fn strings_of(value: &Value, key: &str) -> Result<Vec<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(v) => {
            let items = v.as_array().ok_or_else(|| format!("'{key}' is not an array"))?;
            items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("'{key}' holds a non-string"))
                })
                .collect()
        }
    }
}

fn array_of<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(&[]),
        Some(v) => v.as_array().ok_or_else(|| format!("'{key}' is not an array")),
    }
}

fn window_of(value: &Value, key: &str) -> Result<Option<WindowData>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => Ok(Some(WindowData {
            kind: str_of(v, "kind")?,
            size: u64_of(v, "size")?,
            advance: u64_of(v, "advance")?,
            aggs: strings_of(v, "aggs")?,
        })),
    }
}

fn policy_from_json(value: &Value) -> Result<PolicySpec, String> {
    Ok(PolicySpec {
        id: str_of(value, "id")?,
        stream: str_of(value, "stream")?,
        subject: str_of(value, "subject")?,
        description: str_of(value, "description")?,
        filter: str_of(value, "filter")?,
        visible: strings_of(value, "visible")?,
        window: window_of(value, "window")?,
    })
}

impl ScenarioPack {
    /// Serialize the pack as pretty JSON (the `packs/*.json` format).
    ///
    /// # Errors
    /// Propagates serializer errors (practically unreachable).
    pub fn to_json_string(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Load a pack from its JSON document and validate it.
    ///
    /// # Errors
    /// Fails on malformed JSON, schema mismatches, or validation problems.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let pack = ScenarioPack::from_json(&value)?;
        pack.validate().map_err(|problems| problems.join("; "))?;
        Ok(pack)
    }

    /// Load a pack from an already-parsed JSON value (no validation).
    ///
    /// # Errors
    /// Fails when the value does not match the pack schema.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let mut streams = Vec::new();
        for stream in array_of(value, "streams")? {
            let mut fields = Vec::new();
            for field in array_of(stream, "fields")? {
                let gen = field.get("gen").ok_or("field without 'gen'")?;
                fields.push(FieldSpec {
                    name: str_of(field, "name")?,
                    data_type: str_of(field, "data_type")?,
                    gen: FieldGen {
                        kind: str_of(gen, "kind")?,
                        a: f64_of(gen, "a")?,
                        b: f64_of(gen, "b")?,
                        p: f64_of(gen, "p")?,
                        options: strings_of(gen, "options")?,
                    },
                });
            }
            streams.push(StreamSpec { name: str_of(stream, "name")?, fields });
        }

        let mut policies = Vec::new();
        for policy in array_of(value, "policies")? {
            policies.push(policy_from_json(policy)?);
        }

        let mut script = Vec::new();
        for step in array_of(value, "script")? {
            let query = match step.get("query") {
                None | Some(Value::Null) => None,
                Some(q) => Some(QuerySpec {
                    filter: str_of(q, "filter")?,
                    select: strings_of(q, "select")?,
                    window: window_of(q, "window")?,
                }),
            };
            let policy = match step.get("policy") {
                None | Some(Value::Null) => None,
                Some(p) => Some(policy_from_json(p)?),
            };
            script.push(ScriptStep {
                op: str_of(step, "op")?,
                stream: str_of(step, "stream")?,
                subject: str_of(step, "subject")?,
                count: u64_of(step, "count")?,
                expect: str_of(step, "expect")?,
                tap: str_of(step, "tap")?,
                query,
                policy,
                policy_id: str_of(step, "policy_id")?,
                subjects: u64_of(step, "subjects")?,
                alpha: f64_of(step, "alpha")?,
                prefix: str_of(step, "prefix")?,
            });
        }

        let expect_value = value.get("expect").cloned().unwrap_or(Value::Null);
        let mut deliveries = Vec::new();
        for delivery in array_of(&expect_value, "deliveries")? {
            deliveries.push(DeliveryExpectation {
                tap: str_of(delivery, "tap")?,
                min: u64_of(delivery, "min")?,
                max: opt_u64_of(delivery, "max")?,
            });
        }
        let mut audit_min = Vec::new();
        for expectation in array_of(&expect_value, "audit_min")? {
            audit_min.push(AuditExpectation {
                kind: str_of(expectation, "kind")?,
                min: u64_of(expectation, "min")?,
            });
        }
        let expect = Expectations {
            grants: opt_u64_of(&expect_value, "grants")?,
            reuses: opt_u64_of(&expect_value, "reuses")?,
            denials: opt_u64_of(&expect_value, "denials")?,
            blocked: opt_u64_of(&expect_value, "blocked")?,
            max_live_plans: opt_u64_of(&expect_value, "max_live_plans")?,
            final_policies: opt_u64_of(&expect_value, "final_policies")?,
            deliveries,
            audit_min,
            no_grants_for: strings_of(&expect_value, "no_grants_for")?,
        };

        Ok(ScenarioPack {
            name: str_of(value, "name")?,
            description: str_of(value, "description")?,
            seed: u64_of(value, "seed")?,
            fanout_stream: str_of(value, "fanout_stream")?,
            streams,
            policies,
            script,
            expect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pack() -> ScenarioPack {
        ScenarioPack {
            name: "tiny".into(),
            description: "unit-test world".into(),
            seed: 7,
            fanout_stream: "s".into(),
            streams: vec![StreamSpec {
                name: "s".into(),
                fields: vec![
                    FieldSpec {
                        name: "samplingtime".into(),
                        data_type: "timestamp".into(),
                        gen: FieldGen::time(1000.0),
                    },
                    FieldSpec {
                        name: "a".into(),
                        data_type: "double".into(),
                        gen: FieldGen::uniform(0.0, 10.0),
                    },
                ],
            }],
            policies: vec![PolicySpec {
                id: "open".into(),
                stream: "s".into(),
                subject: String::new(),
                description: String::new(),
                filter: "a > 2".into(),
                visible: vec!["samplingtime".into(), "a".into()],
                window: None,
            }],
            script: vec![
                ScriptStep::request("alice", "s", "grant").with_tap("alice"),
                ScriptStep::ingest("s", 20),
            ],
            expect: Expectations {
                grants: Some(1),
                deliveries: vec![DeliveryExpectation { tap: "alice".into(), min: 1, max: None }],
                ..Expectations::default()
            },
        }
    }

    #[test]
    fn packs_round_trip_through_json() {
        let pack = tiny_pack();
        let text = pack.to_json_string().unwrap();
        let reloaded = ScenarioPack::from_json_str(&text).unwrap();
        assert_eq!(reloaded, pack);
    }

    #[test]
    fn validation_catches_typos() {
        let mut pack = tiny_pack();
        pack.script.push(ScriptStep::request("bob", "nosuch", "grant"));
        pack.script.push(ScriptStep::blank("teleport"));
        pack.streams[0].fields[1].data_type = "decimal".into();
        let problems = pack.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("nosuch")));
        assert!(problems.iter().any(|p| p.contains("teleport")));
        assert!(problems.iter().any(|p| p.contains("decimal")));
    }

    #[test]
    fn fanout_stream_must_carry_an_open_policy() {
        let mut pack = tiny_pack();
        pack.policies[0].subject = "alice".into();
        let problems = pack.validate().unwrap_err();
        assert!(problems.iter().any(|p| p.contains("open")));
    }

    #[test]
    fn feeds_are_deterministic_per_seed() {
        let pack = tiny_pack();
        let mut feed_a = SyntheticFeed::new(&pack.streams[0], pack.seed);
        let mut feed_b = SyntheticFeed::new(&pack.streams[0], pack.seed);
        for _ in 0..50 {
            assert_eq!(feed_a.next_tuple(), feed_b.next_tuple());
        }
        // A different seed diverges.
        let mut feed_c = SyntheticFeed::new(&pack.streams[0], pack.seed + 1);
        let same = (0..50).filter(|_| feed_a.next_tuple() == feed_c.next_tuple()).count();
        assert!(same < 50);
    }

    #[test]
    fn feeds_fast_forward_with_skip() {
        let pack = tiny_pack();
        let mut ahead = SyntheticFeed::new(&pack.streams[0], pack.seed);
        ahead.skip(30);
        let mut full = SyntheticFeed::new(&pack.streams[0], pack.seed);
        let _ = full.next_batch(30);
        assert_eq!(ahead.next_tuple(), full.next_tuple());
    }
}
