//! The continuous-query corpus and request sequences.
//!
//! "Workloads are formed by sequences of continuous queries. Each continuous
//! query corresponds to three files in the experiment: (1) a StreamSQL script
//! as the input to the direct-query system; (2) a XACML policy file whose
//! obligations form the query graph exactly as that in the above StreamSQL
//! script; (3) a XACML request file for requesting data streams from
//! eXACML+ [...] The actual specifications of each query graph are generated
//! randomly, but we make sure that parameter names are consistent with those
//! in stream schemas so that every query graph generated from PEP is valid."
//! (Section 4.2)
//!
//! [`WorkloadGenerator`] reproduces exactly that: a corpus of
//! [`ContinuousQuery`] items (graph + StreamSQL + policy + request, all
//! consistent with the weather/GPS schemas), following the Table 3
//! composition mix, plus the *unique* and *Zipf* request sequences.

use crate::spec::WorkloadSpec;
use crate::zipf::Zipf;
use exacml_dsms::{streamsql, AggFunc, AggSpec, QueryGraph, QueryGraphBuilder, Schema, WindowSpec};
use exacml_plus::StreamPolicyBuilder;
use exacml_xacml::{Policy, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One continuous query of the workload, in its three forms.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// Index within the corpus.
    pub index: usize,
    /// The requesting subject (unique per query so every request matches
    /// exactly one policy).
    pub subject: String,
    /// The stream the query runs over.
    pub stream: String,
    /// Operator composition label (`FB`, `FB+MB+AB`, ... as in Table 3).
    pub composition: String,
    /// The query graph itself.
    pub graph: QueryGraph,
    /// File (1): the StreamSQL script for the direct-query baseline.
    pub streamsql: String,
    /// File (2): the policy whose obligations encode the same graph.
    pub policy: Policy,
    /// File (3): the matching access request.
    pub request: Request,
}

impl ContinuousQuery {
    /// The policy document as XML (what would be stored on disk).
    #[must_use]
    pub fn policy_xml(&self) -> String {
        exacml_xacml::xml::write_policy(&self.policy)
    }

    /// The request document as XML.
    #[must_use]
    pub fn request_xml(&self) -> String {
        exacml_xacml::xml::write_request(&self.request)
    }
}

/// Which request sequence shape an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequenceKind {
    /// Every request is distinct (set-up 1 of the evaluation).
    Unique,
    /// Requests follow a Zipf distribution over the most popular queries
    /// (set-up 2).
    Zipf,
}

/// A sequence of request indices into the query corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestSequence {
    /// Unique or Zipf.
    pub kind: SequenceKind,
    /// Indices into the corpus, in arrival order.
    pub indices: Vec<usize>,
}

impl RequestSequence {
    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Number of distinct queries referenced.
    #[must_use]
    pub fn distinct(&self) -> usize {
        let mut seen = self.indices.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// The workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
}

impl WorkloadGenerator {
    /// A generator for the given parameter set.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        WorkloadGenerator { spec }
    }

    /// The parameter set.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The streams the corpus runs over, with their schemas.
    #[must_use]
    pub fn streams() -> Vec<(&'static str, Schema)> {
        vec![("weather", Schema::weather_example()), ("gps", Schema::gps_example())]
    }

    /// Generate the corpus of unique continuous queries (one per policy,
    /// `spec.n_policies` in total), following the Table 3 composition
    /// proportions.
    #[must_use]
    pub fn generate_queries(&self) -> Vec<ContinuousQuery> {
        let mut rng = StdRng::seed_from_u64(self.spec.seed);
        let streams = Self::streams();
        let labels = self.composition_labels();
        let mut queries = Vec::with_capacity(self.spec.n_policies);
        for index in 0..self.spec.n_policies {
            let label = labels[index % labels.len()];
            let (stream, schema) = &streams[index % streams.len()];
            let graph = self.random_graph(stream, schema, label, &mut rng);
            let subject = format!("user{index:04}");
            let policy = self.policy_for(index, &subject, stream, &graph);
            let request = Request::subscribe(&subject, stream);
            let script = streamsql::generate(&graph, schema);
            queries.push(ContinuousQuery {
                index,
                subject,
                stream: (*stream).to_string(),
                composition: label.to_string(),
                graph,
                streamsql: script,
                policy,
                request,
            });
        }
        queries
    }

    /// The direct-query scripts (file set (1)): `spec.n_direct_queries`
    /// scripts drawn from the corpus in round-robin order.
    #[must_use]
    pub fn direct_query_scripts(&self, queries: &[ContinuousQuery]) -> Vec<String> {
        (0..self.spec.n_direct_queries)
            .map(|i| queries[i % queries.len()].streamsql.clone())
            .collect()
    }

    /// Set-up 1: every request appears once, cycling through the corpus.
    #[must_use]
    pub fn unique_sequence(&self, corpus_size: usize) -> RequestSequence {
        RequestSequence {
            kind: SequenceKind::Unique,
            indices: (0..self.spec.n_requests).map(|i| i % corpus_size.max(1)).collect(),
        }
    }

    /// Set-up 2: requests follow a Zipf(α) distribution over the
    /// `maxRank` most popular queries.
    #[must_use]
    pub fn zipf_sequence(&self, corpus_size: usize) -> RequestSequence {
        let ranks = self.spec.max_rank.min(corpus_size.max(1));
        let zipf = Zipf::new(ranks, self.spec.zipf_alpha);
        let mut rng = StdRng::seed_from_u64(self.spec.seed.wrapping_add(0x5eed));
        RequestSequence {
            kind: SequenceKind::Zipf,
            indices: zipf.sample_sequence(self.spec.n_requests, &mut rng),
        }
    }

    fn composition_labels(&self) -> Vec<&'static str> {
        // Expand the mix into a label list with the Table 3 proportions,
        // scaled to the corpus size.
        let mix = self.spec.composition.as_pairs();
        let total: usize = mix.iter().map(|(_, n)| *n).sum();
        let mut labels = Vec::with_capacity(self.spec.n_policies.max(total));
        for (label, count) in &mix {
            let scaled =
                ((*count as f64 / total as f64) * self.spec.n_policies as f64).round() as usize;
            labels.extend(std::iter::repeat_n(*label, scaled.max(1)));
        }
        labels
    }

    fn random_graph(
        &self,
        stream: &str,
        schema: &Schema,
        label: &str,
        rng: &mut StdRng,
    ) -> QueryGraph {
        let numeric: Vec<String> = schema
            .fields()
            .iter()
            .filter(|f| f.data_type.is_numeric() && f.data_type != exacml_dsms::DataType::Timestamp)
            .map(|f| f.name.clone())
            .collect();

        let wants_filter = label.contains("FB");
        let wants_map = label.contains("MB");
        let wants_agg = label.contains("AB");

        let mut builder = QueryGraphBuilder::on_stream(stream);

        if wants_filter {
            let attr = &numeric[rng.gen_range(0..numeric.len())];
            let op = ["<", ">", "<=", ">="][rng.gen_range(0..4usize)];
            let threshold = rng.gen_range(0.0..100.0_f64).round();
            builder = builder
                .filter_str(&format!("{attr} {op} {threshold}"))
                .expect("generated conditions always parse");
        }

        // The visible attribute set: the timestamp plus a random subset of
        // numeric columns. The aggregation (if any) must use attributes that
        // survive the map, so pick them from this set.
        let mut visible = vec!["samplingtime".to_string()];
        let subset_size = rng.gen_range(1..=numeric.len());
        let mut pool = numeric.clone();
        for _ in 0..subset_size {
            let pick = rng.gen_range(0..pool.len());
            visible.push(pool.swap_remove(pick));
        }

        if wants_map {
            builder = builder.map(visible.clone());
        }

        if wants_agg {
            let candidates: &[String] = if wants_map { &visible[1..] } else { &numeric };
            let size = rng.gen_range(4..=20_u64);
            let advance = rng.gen_range(1..=size);
            let n_specs = rng.gen_range(1..=candidates.len().min(3));
            let mut specs = vec![AggSpec::new("samplingtime", AggFunc::LastValue)];
            let mut pool: Vec<String> = candidates.to_vec();
            for _ in 0..n_specs {
                let attr = pool.swap_remove(rng.gen_range(0..pool.len()));
                let func = [AggFunc::Avg, AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Count]
                    [rng.gen_range(0..5usize)];
                specs.push(AggSpec::new(attr, func));
            }
            builder = builder.aggregate(WindowSpec::tuples(size, advance), specs);
        }

        builder.build()
    }

    fn policy_for(&self, index: usize, subject: &str, stream: &str, graph: &QueryGraph) -> Policy {
        let mut builder = StreamPolicyBuilder::new(format!("policy-{index:04}"), stream)
            .subject(subject)
            .description(format!("generated workload policy #{index} ({})", graph.composition()));
        if let Some(f) = graph.filter() {
            builder = builder.filter(f.source());
        }
        if let Some(m) = graph.map() {
            builder = builder.visible_attributes(m.attributes().to_vec());
        }
        if let Some(a) = graph.aggregate() {
            builder = builder.window(a.window, a.specs.clone());
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_plus::graph_from_obligations;

    fn small_generator() -> WorkloadGenerator {
        WorkloadGenerator::new(WorkloadSpec::small())
    }

    #[test]
    fn corpus_size_and_composition_follow_the_spec() {
        let generator = small_generator();
        let queries = generator.generate_queries();
        assert_eq!(queries.len(), generator.spec().n_policies);
        // Every Table 3 composition appears.
        for label in ["FB", "MB", "AB", "FB+MB", "FB+AB", "MB+AB", "FB+MB+AB"] {
            assert!(
                queries.iter().any(|q| q.composition == label),
                "composition {label} missing from the corpus"
            );
        }
        // Compositions recorded on the query match the generated graph.
        for q in &queries {
            assert_eq!(q.graph.composition(), q.composition);
        }
    }

    #[test]
    fn every_graph_validates_against_its_stream_schema() {
        let queries = small_generator().generate_queries();
        for q in &queries {
            let schema = match q.stream.as_str() {
                "weather" => Schema::weather_example(),
                "gps" => Schema::gps_example(),
                other => panic!("unexpected stream {other}"),
            };
            q.graph
                .validate(&schema)
                .unwrap_or_else(|e| panic!("query {} does not validate: {e}", q.index));
        }
    }

    #[test]
    fn policy_obligations_reproduce_the_query_graph() {
        let queries = small_generator().generate_queries();
        for q in queries.iter().take(40) {
            let rebuilt = graph_from_obligations(&q.stream, &q.policy.obligations).unwrap();
            assert_eq!(rebuilt, q.graph, "query {}", q.index);
        }
    }

    #[test]
    fn request_matches_its_policy_and_only_its_policy() {
        let queries = small_generator().generate_queries();
        for q in queries.iter().take(20) {
            assert!(q.policy.evaluate(&q.request).is_some(), "query {}", q.index);
        }
        // A request for query 0 does not match the policy of query 1.
        assert!(queries[1].policy.evaluate(&queries[0].request).is_none());
    }

    #[test]
    fn streamsql_scripts_parse_back_to_the_same_composition() {
        let queries = small_generator().generate_queries();
        for q in queries.iter().take(40) {
            let parsed = streamsql::parse(&q.streamsql).unwrap();
            assert_eq!(parsed.graph.composition(), q.composition, "query {}", q.index);
        }
    }

    #[test]
    fn xml_artifacts_round_trip() {
        let queries = small_generator().generate_queries();
        let q = &queries[0];
        let policy = exacml_xacml::xml::parse_policy(&q.policy_xml()).unwrap();
        assert_eq!(policy, q.policy);
        let request = exacml_xacml::xml::parse_request(&q.request_xml()).unwrap();
        assert_eq!(request.subject_id(), q.request.subject_id());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_generator().generate_queries();
        let b = small_generator().generate_queries();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.subject, y.subject);
        }
    }

    #[test]
    fn direct_query_scripts_have_the_requested_count() {
        let generator = small_generator();
        let queries = generator.generate_queries();
        let scripts = generator.direct_query_scripts(&queries);
        assert_eq!(scripts.len(), generator.spec().n_direct_queries);
    }

    #[test]
    fn unique_sequence_covers_the_corpus_in_order() {
        let generator = small_generator();
        let seq = generator.unique_sequence(100);
        assert_eq!(seq.len(), generator.spec().n_requests);
        assert_eq!(seq.kind, SequenceKind::Unique);
        assert_eq!(seq.indices[0], 0);
        assert_eq!(seq.indices[1], 1);
        assert_eq!(seq.distinct(), 100);
        assert!(!seq.is_empty());
    }

    #[test]
    fn zipf_sequence_is_skewed_toward_low_ranks() {
        let generator = small_generator();
        let seq = generator.zipf_sequence(100);
        assert_eq!(seq.kind, SequenceKind::Zipf);
        assert_eq!(seq.len(), generator.spec().n_requests);
        // All indices are within maxRank.
        assert!(seq.indices.iter().all(|i| *i < generator.spec().max_rank));
        // Rank 0 appears at least as often as a mid rank (statistically this
        // holds comfortably for the seeded sequence).
        let count = |r: usize| seq.indices.iter().filter(|i| **i == r).count();
        assert!(count(0) >= count(generator.spec().max_rank - 1));
        // Repetition exists (that is what the proxy cache exploits).
        assert!(seq.distinct() < seq.len());
    }
}
