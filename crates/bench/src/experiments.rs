//! The Section 4.2 experiments.
//!
//! Each experiment builds a fresh deployment (data server + proxy + client
//! over the simulated 100 Mbps testbed), loads the workload policies, replays
//! a request sequence and records the per-request timing decomposition.

use exacml_durable::TopologyPreset;
use exacml_plus::{ClientInterface, DataServer, Proxy, ServerConfig, TimingBreakdown};
use exacml_workload::{ContinuousQuery, RequestSequence, WorkloadGenerator, WorkloadSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// A fully wired deployment plus the workload corpus.
pub struct Environment {
    /// The data server (PDP + PEP + DSMS host).
    pub server: Arc<DataServer>,
    /// The proxy in front of it.
    pub proxy: Arc<Proxy>,
    /// The client interface.
    pub client: ClientInterface,
    /// The continuous-query corpus (policies already loaded).
    pub queries: Vec<ContinuousQuery>,
    /// The generator (for sequences and direct-query scripts).
    pub generator: WorkloadGenerator,
}

/// Build a deployment for a workload spec.
///
/// * `cache` — whether the proxy's handle cache is enabled (Figure 6b).
/// * every stream referenced by the corpus is registered on the DSMS and
///   every policy of the corpus is loaded before any request is issued, as
///   in the paper ("before any user request is made, we need to load
///   policies onto the data servers").
#[must_use]
pub fn build_environment(spec: &WorkloadSpec, cache: bool) -> Environment {
    let server = Arc::new(DataServer::new(ServerConfig {
        topology: TopologyPreset::PaperTestbed.topology(),
        seed: spec.seed,
        ..ServerConfig::default()
    }));
    for (name, schema) in WorkloadGenerator::streams() {
        server.register_stream(name, schema).expect("stream registration");
    }
    let generator = WorkloadGenerator::new(spec.clone());
    let queries = generator.generate_queries();
    for q in &queries {
        server.load_policy(q.policy.clone()).expect("policy loading");
    }
    let proxy = Arc::new(Proxy::with_cache(Arc::clone(&server), cache));
    let client = ClientInterface::new(Arc::clone(&proxy));
    Environment { server, proxy, client, queries, generator }
}

/// Replay the direct-query baseline: each StreamSQL script is sent straight
/// to the DSMS.
#[must_use]
pub fn run_direct_queries(env: &Environment, scripts: &[String]) -> TimingBreakdown {
    let mut breakdown = TimingBreakdown::new();
    for script in scripts {
        match env.client.direct_query(script) {
            Ok((_handle, timing)) => breakdown.record(&timing),
            Err(e) => panic!("direct query failed: {e}"),
        }
    }
    breakdown
}

/// Replay an eXACML+ request sequence through client → proxy → server.
#[must_use]
pub fn run_exacml_sequence(env: &Environment, sequence: &RequestSequence) -> TimingBreakdown {
    let mut breakdown = TimingBreakdown::new();
    for &index in &sequence.indices {
        let query = &env.queries[index % env.queries.len()];
        match env.client.request_access(&query.subject, &query.stream, None) {
            Ok(response) => breakdown.record(&response.timing),
            Err(e) => panic!("request {index} for {} failed: {e}", query.subject),
        }
    }
    breakdown
}

/// The data behind one Figure 6 plot: labelled CDF series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Result {
    /// Which sequence shape was used (`unique` / `zipf`).
    pub sequence: String,
    /// (label, CDF points) pairs; each point is (response time in seconds,
    /// cumulative fraction).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// (label, mean seconds, p50, p99) summary rows.
    pub summary: Vec<(String, f64, f64, f64)>,
}

/// Figure 6(a): unique request sequence, direct query vs eXACML+.
#[must_use]
pub fn fig6a(spec: &WorkloadSpec, cdf_points: usize) -> Fig6Result {
    let env = build_environment(spec, false);
    let scripts = env.generator.direct_query_scripts(&env.queries);
    let direct = run_direct_queries(&env, &scripts);

    // A fresh environment so direct-query deployments do not inflate the
    // eXACML+ run.
    let env = build_environment(spec, false);
    let sequence = env.generator.unique_sequence(env.queries.len());
    let exacml = run_exacml_sequence(&env, &sequence);

    Fig6Result {
        sequence: "unique".into(),
        summary: vec![summary_row("directQuery", &direct), summary_row("eXACML+", &exacml)],
        series: vec![
            ("directQuery".into(), direct.cdf(cdf_points)),
            ("eXACML+".into(), exacml.cdf(cdf_points)),
        ],
    }
}

/// Figure 6(b): Zipf request sequence, direct query vs eXACML+ with the
/// proxy cache off and on.
#[must_use]
pub fn fig6b(spec: &WorkloadSpec, cdf_points: usize) -> Fig6Result {
    let env = build_environment(spec, false);
    let scripts = env.generator.direct_query_scripts(&env.queries);
    let direct = run_direct_queries(&env, &scripts);

    let env_off = build_environment(spec, false);
    let sequence = env_off.generator.zipf_sequence(env_off.queries.len());
    let cache_off = run_exacml_sequence(&env_off, &sequence);

    let env_on = build_environment(spec, true);
    let cache_on = run_exacml_sequence(&env_on, &sequence);

    Fig6Result {
        sequence: "zipf".into(),
        summary: vec![
            summary_row("directQuery", &direct),
            summary_row("eXACML+ cache off", &cache_off),
            summary_row("eXACML+ cache on", &cache_on),
        ],
        series: vec![
            ("directQuery".into(), direct.cdf(cdf_points)),
            ("eXACML+ cache off".into(), cache_off.cdf(cdf_points)),
            ("eXACML+ cache on".into(), cache_on.cdf(cdf_points)),
        ],
    }
}

/// The data behind Figure 7: per-request component times.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Number of requests replayed.
    pub requests: usize,
    /// Number of policies loaded.
    pub policies: usize,
    /// Rows of (sequence number, total, pdp, query-graph, dsms) in seconds.
    pub rows: Vec<(usize, f64, f64, f64, f64)>,
    /// Mean seconds per component: (total, pdp, query-graph, dsms, network).
    pub means: (f64, f64, f64, f64, f64),
}

/// Figure 7: detailed processing time of `requests` access-control requests
/// with `policies` loaded policies (100/50 for 7(a), 1500/1000 for 7(b)).
#[must_use]
pub fn fig7(requests: usize, policies: usize, seed: u64) -> Fig7Result {
    let mut spec = WorkloadSpec::table3();
    spec.n_policies = policies;
    spec.n_requests = requests;
    spec.seed = seed;
    let env = build_environment(&spec, false);
    let sequence = env.generator.unique_sequence(env.queries.len());
    let breakdown = run_exacml_sequence(&env, &sequence);

    let rows = (0..breakdown.len())
        .map(|i| {
            let (total, pdp, graph, dsms, _net) = breakdown.series_at(i).expect("index in range");
            (i + 1, total, pdp, graph, dsms)
        })
        .collect();
    Fig7Result {
        requests,
        policies,
        rows,
        means: (
            breakdown.mean_total(),
            breakdown.mean_pdp(),
            breakdown.mean_query_graph(),
            breakdown.mean_dsms(),
            breakdown.mean_network(),
        ),
    }
}

/// The policy-loading measurement of Section 4.2.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyLoadingResult {
    /// Number of policies loaded.
    pub policies: usize,
    /// Mean load time in seconds.
    pub mean_seconds: f64,
    /// Standard deviation of the load time in seconds.
    pub stddev_seconds: f64,
    /// Load time of the first and last policy, to show independence from the
    /// number already loaded.
    pub first_seconds: f64,
    /// Load time of the last policy.
    pub last_seconds: f64,
}

/// Load `n_policies` generated policies one by one and report the statistics
/// (the paper reports 0.25 s ± 0.06 s on its Java/LAN prototype; ours is
/// faster in absolute terms but equally independent of the number of
/// policies already loaded, which is the claim).
#[must_use]
pub fn policy_loading_experiment(n_policies: usize, seed: u64) -> PolicyLoadingResult {
    let mut spec = WorkloadSpec::table3();
    spec.n_policies = n_policies;
    spec.seed = seed;
    let server = DataServer::new(ServerConfig {
        topology: TopologyPreset::PaperTestbed.topology(),
        seed,
        ..ServerConfig::default()
    });
    for (name, schema) in WorkloadGenerator::streams() {
        server.register_stream(name, schema).expect("stream registration");
    }
    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();
    let mut durations: Vec<Duration> = Vec::with_capacity(queries.len());
    for q in &queries {
        durations.push(server.load_policy(q.policy.clone()).expect("policy load"));
    }
    let (mean, stddev) = server.policy_load_stats();
    PolicyLoadingResult {
        policies: queries.len(),
        mean_seconds: mean,
        stddev_seconds: stddev,
        first_seconds: durations.first().map_or(0.0, Duration::as_secs_f64),
        last_seconds: durations.last().map_or(0.0, Duration::as_secs_f64),
    }
}

fn summary_row(label: &str, breakdown: &TimingBreakdown) -> (String, f64, f64, f64) {
    (
        label.to_string(),
        breakdown.mean_total(),
        breakdown.percentile_total(0.5),
        breakdown.percentile_total(0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::small();
        spec.n_policies = 30;
        spec.n_requests = 40;
        spec.n_direct_queries = 40;
        spec.max_rank = 10;
        spec
    }

    #[test]
    fn environment_loads_all_policies() {
        let spec = tiny_spec();
        let env = build_environment(&spec, true);
        assert_eq!(env.server.policy_count(), spec.n_policies);
        assert_eq!(env.queries.len(), spec.n_policies);
        assert!(env.proxy.cache_enabled());
    }

    #[test]
    fn fig6a_shapes_hold_on_a_tiny_workload() {
        let result = fig6a(&tiny_spec(), 20);
        assert_eq!(result.series.len(), 2);
        assert_eq!(result.series[0].1.len(), 20);
        // Direct query is at least as fast as eXACML+ on average — the
        // paper's headline observation.
        let direct_mean = result.summary[0].1;
        let exacml_mean = result.summary[1].1;
        assert!(direct_mean > 0.0);
        assert!(
            exacml_mean >= direct_mean,
            "eXACML+ ({exacml_mean}) should not be faster than direct query ({direct_mean})"
        );
    }

    #[test]
    fn fig6b_cache_improves_over_no_cache() {
        let result = fig6b(&tiny_spec(), 20);
        assert_eq!(result.series.len(), 3);
        let cache_off_mean = result.summary[1].1;
        let cache_on_mean = result.summary[2].1;
        assert!(
            cache_on_mean <= cache_off_mean,
            "cache on ({cache_on_mean}) should not be slower than cache off ({cache_off_mean})"
        );
    }

    #[test]
    fn fig7_produces_one_row_per_request() {
        let result = fig7(25, 20, 7);
        assert_eq!(result.rows.len(), 25);
        assert_eq!(result.policies, 20);
        // PDP and query-graph manipulation stay tiny (well under 10 ms),
        // matching the paper's "less than 0.01 second in all requests".
        assert!(result.means.1 < 0.01, "mean PDP time {}", result.means.1);
        assert!(result.means.2 < 0.01, "mean query-graph time {}", result.means.2);
        assert!(result.means.0 >= result.means.3);
    }

    #[test]
    fn policy_loading_cost_is_flat() {
        let result = policy_loading_experiment(40, 3);
        assert_eq!(result.policies, 40);
        assert!(result.mean_seconds > 0.0);
        // Loading the last policy is not meaningfully more expensive than the
        // first (independence from the number already loaded).
        assert!(result.last_seconds < result.first_seconds * 20.0 + 0.01);
    }
}
