//! Text and JSON rendering of experiment results.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Render a set of labelled CDF series as an aligned text table, one row per
/// cumulative-fraction step (the textual equivalent of Figure 6).
#[must_use]
pub fn cdf_table(series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>6}", "CDF"));
    for (label, _) in series {
        out.push_str(&format!("  {label:>22}"));
    }
    out.push('\n');
    let rows = series.iter().map(|(_, pts)| pts.len()).max().unwrap_or(0);
    for i in 0..rows {
        let fraction = series.first().and_then(|(_, pts)| pts.get(i)).map_or(0.0, |(_, f)| *f);
        out.push_str(&format!("{fraction:>6.2}"));
        for (_, pts) in series {
            match pts.get(i) {
                Some((x, _)) => out.push_str(&format!("  {:>20.6} s", x)),
                None => out.push_str(&format!("  {:>22}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Render per-request component rows (the textual equivalent of Figure 7).
#[must_use]
pub fn series_table(rows: &[(usize, f64, f64, f64, f64)], every: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}  {:>14}  {:>12}  {:>12}  {:>12}\n",
        "req#", "total (s)", "PDP (s)", "QueryGraph(s)", "DSMS (s)"
    ));
    for (i, row) in rows.iter().enumerate() {
        if every > 1 && i % every != 0 && i != rows.len() - 1 {
            continue;
        }
        out.push_str(&format!(
            "{:>6}  {:>14.6}  {:>12.6}  {:>12.6}  {:>12.6}\n",
            row.0, row.1, row.2, row.3, row.4
        ));
    }
    out
}

/// Serialize a result structure to pretty JSON at `path`.
///
/// # Errors
/// Propagates I/O and serialization errors.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())
}

/// Parse the common experiment CLI flags: `--small`, `--json <path>`,
/// `--requests N`, `--policies N`. Unknown flags are ignored so binaries can
/// add their own.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Run the ~10% workload instead of the full Table 3 parameters.
    pub small: bool,
    /// Where to dump the raw JSON series, if requested.
    pub json: Option<std::path::PathBuf>,
    /// Override for the number of requests (fig7).
    pub requests: Option<usize>,
    /// Override for the number of policies (fig7).
    pub policies: Option<usize>,
}

impl CliOptions {
    /// Parse from `std::env::args`-style strings.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = CliOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--small" => options.small = true,
                "--json" => options.json = iter.next().map(Into::into),
                "--requests" => options.requests = iter.next().and_then(|v| v.parse().ok()),
                "--policies" => options.policies = iter.next().and_then(|v| v.parse().ok()),
                _ => {}
            }
        }
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_table_aligns_series() {
        let series = vec![
            ("a".to_string(), vec![(0.001, 0.5), (0.002, 1.0)]),
            ("b".to_string(), vec![(0.003, 0.5)]),
        ];
        let table = cdf_table(&series);
        assert!(table.contains("0.50"));
        assert!(table.contains("1.00"));
        assert!(table.contains('-'));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn series_table_subsamples() {
        let rows: Vec<(usize, f64, f64, f64, f64)> =
            (1..=100).map(|i| (i, 0.01, 0.001, 0.001, 0.002)).collect();
        let table = series_table(&rows, 10);
        // Header + ~10 sampled rows + the last row.
        assert!(table.lines().count() <= 13);
        assert!(table.contains("req#"));
    }

    #[test]
    fn cli_parsing() {
        let options = CliOptions::parse(
            ["--small", "--json", "/tmp/x.json", "--requests", "100", "--policies", "50"]
                .into_iter()
                .map(String::from),
        );
        assert!(options.small);
        assert_eq!(options.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
        assert_eq!(options.requests, Some(100));
        assert_eq!(options.policies, Some(50));
        let default = CliOptions::parse(Vec::<String>::new());
        assert!(!default.small);
        assert!(default.json.is_none());
    }

    #[test]
    fn write_json_round_trips() {
        #[derive(Serialize)]
        struct Tiny {
            x: u32,
        }
        let path = std::env::temp_dir().join("exacml_bench_report_test.json");
        write_json(&path, &Tiny { x: 7 }).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x\": 7"));
        let _ = std::fs::remove_file(&path);
    }
}
