//! CI perf-regression gate: compare a fresh `engine_throughput` report
//! against the committed baseline and fail on significant regressions.
//!
//! CI runners differ wildly from the reference machine, so absolute
//! tuples/sec numbers cannot be compared across machines. What *is*
//! machine-portable are the **relative speedups** the architecture buys —
//! sharded+batched vs. global-lock ingest at each thread count, and
//! indexed/cached vs. linear-scan PDP — because both sides of each ratio
//! run on the same machine in the same process. The gate therefore compares
//! those ratios: a real regression in the concurrent hot path (a new lock,
//! a lost batch path, a cache that stopped hitting) collapses the ratio on
//! every machine.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin perf_gate -- \
//!     --baseline BENCH_pr2_throughput.json --current current.json \
//!     [--tolerance 0.25] [--diff perf_gate_diff.json]
//! ```
//!
//! Exit status is non-zero when any metric fell more than `tolerance`
//! (fractional, default 0.25 = 25%) below the baseline. The diff JSON is
//! written either way so CI can upload it as an artifact.

use exacml_bench::report::write_json;
use serde::Serialize;
use serde_json::Value;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone, Serialize)]
struct MetricDiff {
    metric: String,
    baseline: f64,
    current: f64,
    /// `current / baseline`; below `1 - tolerance` fails the gate.
    ratio: f64,
    pass: bool,
}

#[derive(Debug, Clone, Serialize)]
struct GateReport {
    tolerance: f64,
    pass: bool,
    metrics: Vec<MetricDiff>,
}

struct GateOptions {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
    diff: Option<PathBuf>,
}

fn parse_args() -> GateOptions {
    let mut options = GateOptions {
        baseline: PathBuf::from("BENCH_pr2_throughput.json"),
        current: PathBuf::from("BENCH_pr2_throughput.ci.json"),
        tolerance: 0.25,
        diff: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => options.baseline = args.next().expect("--baseline PATH").into(),
            "--current" => options.current = args.next().expect("--current PATH").into(),
            "--tolerance" => {
                options.tolerance =
                    args.next().and_then(|v| v.parse().ok()).expect("--tolerance FRACTION");
            }
            "--diff" => options.diff = args.next().map(Into::into),
            other => panic!("unknown flag {other}"),
        }
    }
    options
}

fn load(path: &PathBuf) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

/// The ratio metrics of an `engine_throughput` report, by stable name.
fn speedup_metrics(report: &Value) -> Vec<(String, f64)> {
    let mut metrics = Vec::new();
    if let Some(rows) = report.get("ingest_speedup_at_threads").and_then(Value::as_array) {
        for row in rows {
            // Each row is a `(threads, speedup)` tuple, serialized as a
            // two-element array.
            let Some([threads, speedup]) = row.as_array() else { continue };
            if let (Some(threads), Some(speedup)) = (threads.as_f64(), speedup.as_f64()) {
                metrics.push((format!("ingest_speedup_{threads}_threads"), speedup));
            }
        }
    }
    if let Some(pdp) = report.get("pdp") {
        for key in ["indexed_speedup", "cached_speedup"] {
            if let Some(value) = pdp.get(key).and_then(Value::as_f64) {
                metrics.push((format!("pdp_{key}"), value));
            }
        }
    }
    // The unified-backend overhead ratio (PR 4): `&dyn Backend` ingest vs.
    // concrete `DataServer` calls on the same workload. Baseline ~1.0; a
    // collapse means the abstraction layer grew a real cost.
    if let Some(value) = report
        .get("backend_abstraction")
        .and_then(|a| a.get("dyn_vs_direct"))
        .and_then(Value::as_f64)
    {
        metrics.push(("backend_dyn_vs_direct".to_string(), value));
    }
    // The WAL-on ingest ratio (PR 5): `DurableServer` journaled ingest vs.
    // plain `DataServer` ingest. Also held to an absolute floor below.
    if let Some(value) =
        report.get("durability").and_then(|d| d.get("durable_vs_direct")).and_then(Value::as_f64)
    {
        metrics.push(("ingest_durable_vs_direct".to_string(), value));
    }
    // The observability overhead ratio (PR 9): instrumented vs. telemetry-
    // disabled `DataServer` ingest on the same workload. Also held to the
    // absolute 0.95 floor below — per-batch spans and sharded counters must
    // stay in the noise on the hot path.
    if let Some(value) =
        report.get("telemetry").and_then(|t| t.get("telemetry_overhead")).and_then(Value::as_f64)
    {
        metrics.push(("telemetry_overhead".to_string(), value));
    }
    // The shared-plan scaling ratios (PR 6), present when the report is a
    // `merge_scale` one — the gate runs once per report pair and each
    // extractor only finds its own keys. `merged_retention_at_100` is also
    // held to the absolute 1/3 floor below (the "100 overlapping
    // subscribers cost ≤ 3× one subscriber" acceptance pin).
    for key in ["merged_retention_at_100", "merged_vs_unmerged_at_100"] {
        if let Some(value) = report.get(key).and_then(Value::as_f64) {
            metrics.push((key.to_string(), value));
        }
    }
    // The fault-tolerance metrics (PR 7), present when the report is a
    // `failover_scale` one. `failover_recovery` is also held to the
    // absolute 1.0 floor below — the zero-acknowledged-grant-loss pin.
    for key in ["failover_recovery", "replicated_ingest_vs_durable"] {
        if let Some(value) = report.get(key).and_then(Value::as_f64) {
            metrics.push((key.to_string(), value));
        }
    }
    // The batched-routing scaling ratios (PR 8), present when the report is
    // a `fabric_scale` one: the worst virtual-time throughput ratio when
    // the node count doubles (min over topologies × {ingest, requests}).
    // Virtual-time readings are deterministic per seed and machine-
    // independent, so each ratio is also held to the absolute 1.0 floor
    // below — doubling the fabric must never lose throughput.
    for key in ["fabric_monotonic_1_2", "fabric_monotonic_2_4", "fabric_monotonic_4_8"] {
        if let Some(value) = report.get(key).and_then(Value::as_f64) {
            metrics.push((key.to_string(), value));
        }
    }
    // The scenario-pack retention metrics (PR 10), present when the report
    // is a `scenario_packs` one: per-pack fan-out retention (F subscribers
    // sharing the open policy's merged plan vs. one) and the worst pack's
    // retention relative to the smart-city baseline. The latter is also
    // held to the absolute 0.5 floor below — no pack's merged plan may
    // degrade out of family with the original scenario.
    if let Some(rows) = report.get("pack_retention").and_then(Value::as_array) {
        for row in rows {
            let Some([name, retention]) = row.as_array() else { continue };
            if let (Some(name), Some(retention)) = (name.as_str(), retention.as_f64()) {
                metrics.push((format!("pack_retention_{name}"), retention));
            }
        }
    }
    if let Some(value) = report.get("pack_retention_vs_smart_city_min").and_then(Value::as_f64) {
        metrics.push(("pack_retention_vs_smart_city_min".to_string(), value));
    }
    metrics
}

/// Absolute floors: ratios that must hold on *every* machine, not merely
/// stay close to the committed baseline. WAL-on ingest must keep at least
/// half of direct ingest throughput (the "≤ 2× durability overhead" pin),
/// a merged plan serving 100 overlapping subscribers must keep at least a
/// third of single-subscriber throughput (the "≤ 3× per-tuple cost at 100
/// subscribers" pin from the plan-sharing PR), and owner failover must
/// recover **every** grant the dead host owned (the zero-acknowledged-
/// grant-loss pin from the replication PR — 1.0 is the contract, not a
/// target), and every fabric node-doubling must keep at least the
/// throughput it had before doubling (the monotonic-scaling pin from the
/// batched-routing PR, measured in deterministic virtual time so the floor
/// holds on any machine), and instrumented ingest must keep at least 95%
/// of telemetry-disabled ingest throughput (the observability-is-free pin
/// from the telemetry PR), and the worst scenario pack's fan-out retention
/// must stay within half of the smart-city baseline's (the packs-stay-in-
/// family pin from the scenario-pack PR — plan sharing, not pack shape, is
/// what pays for wide fan-out).
const ABSOLUTE_FLOORS: [(&str, f64); 8] = [
    ("ingest_durable_vs_direct", 0.5),
    ("telemetry_overhead", 0.95),
    ("merged_retention_at_100", 1.0 / 3.0),
    ("failover_recovery", 1.0),
    ("fabric_monotonic_1_2", 1.0),
    ("fabric_monotonic_2_4", 1.0),
    ("fabric_monotonic_4_8", 1.0),
    ("pack_retention_vs_smart_city_min", 0.5),
];

fn main() -> ExitCode {
    let options = parse_args();
    let baseline = speedup_metrics(&load(&options.baseline));
    let current = speedup_metrics(&load(&options.current));
    assert!(
        !baseline.is_empty(),
        "baseline {} carries no comparable metrics",
        options.baseline.display()
    );

    let mut diffs = Vec::new();
    for (name, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            // A metric present in the baseline but absent from the current
            // report fails the gate; 0.0 (not NaN) keeps the diff JSON
            // serializable so the artifact still explains the failure.
            diffs.push(MetricDiff {
                metric: name.clone(),
                baseline: *base,
                current: 0.0,
                ratio: 0.0,
                pass: false,
            });
            continue;
        };
        let ratio = cur / base;
        diffs.push(MetricDiff {
            metric: name.clone(),
            baseline: *base,
            current: *cur,
            ratio,
            pass: ratio >= 1.0 - options.tolerance,
        });
    }
    // Machine-independent pins on the current report (no tolerance: the
    // floor *is* the contract).
    for (name, floor) in ABSOLUTE_FLOORS {
        if let Some((_, cur)) = current.iter().find(|(n, _)| n == name) {
            diffs.push(MetricDiff {
                metric: format!("{name}_floor"),
                baseline: floor,
                current: *cur,
                ratio: cur / floor,
                pass: *cur >= floor,
            });
        }
    }

    let pass = diffs.iter().all(|d| d.pass);
    println!(
        "perf_gate: {} vs {} (tolerance {:.0}%)",
        options.current.display(),
        options.baseline.display(),
        options.tolerance * 100.0
    );
    for d in &diffs {
        println!(
            "  {} {:<28} baseline {:>8.2} current {:>8.2} ({:>5.1}%)",
            if d.pass { "ok  " } else { "FAIL" },
            d.metric,
            d.baseline,
            d.current,
            d.ratio * 100.0
        );
    }

    let report = GateReport { tolerance: options.tolerance, pass, metrics: diffs };
    if let Some(path) = &options.diff {
        write_json(path, &report).expect("write diff report");
        println!("  wrote {}", path.display());
    }
    if pass {
        println!("  gate PASSED");
        ExitCode::SUCCESS
    } else {
        println!("  gate FAILED: a metric regressed more than the tolerance");
        ExitCode::FAILURE
    }
}
