//! The PR-2 hot-path measurement: concurrent ingest and PDP decision
//! throughput, emitted as `BENCH_pr2_throughput.json` to seed the repo's
//! perf trajectory.
//!
//! Three experiments:
//!
//! * **Ingest** — tuples/second pushed through a filter deployment at 1, 2
//!   and 4 producer threads (one stream per thread), comparing the old
//!   architecture (single-tuple pushes behind one global `Mutex`, as
//!   `DataServer` shipped before this PR) against the new one (batched
//!   pushes into the internally-sharded engine).
//! * **PDP** — decisions/second for one request against 1000 loaded
//!   policies: cold linear scan (the old evaluation path), target-indexed
//!   evaluation, and decision-cache hits.
//! * **Backend abstraction** — the same batched `DataServer` ingest driven
//!   once through concrete calls and once through `&dyn Backend` (the
//!   unified backend API every scenario now uses). The `dyn_vs_direct`
//!   ratio is gated by `perf_gate`, pinning that the trait layer adds no
//!   measurable overhead.
//! * **Durability** — the same batched ingest through a `DurableServer`
//!   with ingest journaling on: every batch is encoded, checksummed and
//!   flushed to the write-ahead log before the push is acknowledged. The
//!   `durable_vs_direct` ratio is gated by `perf_gate` with an absolute
//!   floor of 0.5 (WAL-on ingest must stay within 2× of direct ingest).
//! * **Telemetry overhead** — the same batched `DataServer` ingest with the
//!   telemetry registry enabled (the default: per-batch spans and sharded
//!   counters) vs. disabled. The `telemetry_overhead` ratio is gated by
//!   `perf_gate` with an absolute floor of 0.95: instrumentation must keep
//!   at least 95% of uninstrumented ingest throughput.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin engine_throughput -- \
//!     [--small] [--json BENCH_pr2_throughput.json]
//! ```

use exacml_bench::legacy::LegacyEngine;
use exacml_bench::report::{write_json, CliOptions};
use exacml_dsms::{
    AggFunc, AggSpec, QueryGraph, QueryGraphBuilder, Schema, StreamEngine, Tuple, Value, WindowSpec,
};
use exacml_durable::{DurableConfig, DurableServer};
use exacml_plus::{Backend, DataServer, ServerConfig, StreamPolicyBuilder};
use exacml_xacml::{Pdp, PolicyStore, Request};
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct IngestRow {
    /// `global_lock_single_push` (the pre-PR architecture) or
    /// `sharded_push_batch`.
    mode: String,
    threads: usize,
    tuples: usize,
    seconds: f64,
    tuples_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct PdpResult {
    policies: usize,
    decisions: usize,
    cold_linear_per_sec: f64,
    indexed_per_sec: f64,
    cached_per_sec: f64,
    /// cached vs. cold linear scan.
    cached_speedup: f64,
    /// indexed (uncached) vs. cold linear scan.
    indexed_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct AbstractionResult {
    threads: usize,
    tuples: usize,
    /// Batched ingest through concrete `DataServer` method calls.
    direct_tuples_per_sec: f64,
    /// The same ingest through `&dyn Backend` (vtable dispatch).
    dyn_tuples_per_sec: f64,
    /// dyn / direct — ~1.0 when the abstraction costs nothing. Gated by
    /// `perf_gate` against the committed baseline.
    dyn_vs_direct: f64,
}

#[derive(Debug, Clone, Serialize)]
struct DurabilityResult {
    threads: usize,
    tuples: usize,
    /// Batched ingest through a plain in-memory `DataServer`.
    direct_tuples_per_sec: f64,
    /// The same ingest through a `DurableServer` journaling every batch to
    /// its write-ahead log before acknowledging.
    durable_tuples_per_sec: f64,
    /// durable / direct — the WAL-on ingest cost. Gated by `perf_gate`
    /// relative to the committed baseline *and* against an absolute floor
    /// of 0.5 (≤ 2× overhead).
    durable_vs_direct: f64,
}

#[derive(Debug, Clone, Serialize)]
struct TelemetryOverheadResult {
    threads: usize,
    tuples: usize,
    /// Batched ingest with the telemetry registry disabled (one relaxed
    /// atomic load per batch, no clock reads).
    disabled_tuples_per_sec: f64,
    /// The same ingest with telemetry enabled — per-batch ingest spans and
    /// sharded counter updates, the default configuration.
    enabled_tuples_per_sec: f64,
    /// enabled / disabled — what observability costs on the hot path.
    /// Gated by `perf_gate` against the committed baseline *and* an
    /// absolute floor of 0.95.
    telemetry_overhead: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ThroughputReport {
    pr: u32,
    bench: String,
    small: bool,
    ingest: Vec<IngestRow>,
    /// Batched+sharded vs. global-lock single-push at the same thread count.
    ingest_speedup_at_threads: Vec<(usize, f64)>,
    pdp: PdpResult,
    /// Trait-object overhead on the hot ingest path.
    backend_abstraction: AbstractionResult,
    /// Write-ahead-log overhead on the hot ingest path.
    durability: DurabilityResult,
    /// Observability overhead on the hot ingest path.
    telemetry: TelemetryOverheadResult,
}

fn weather_tuples(schema: &Schema, n: usize) -> Vec<Tuple> {
    // One shared schema Arc across the whole batch, as the workload feeds
    // produce them.
    let shared = schema.clone().shared();
    (0..n)
        .map(|i| {
            Tuple::builder_shared(&shared)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", (i % 100) as f64)
                .set("windspeed", (i % 40) as f64)
                .finish_with_defaults()
        })
        .collect()
}

/// The paper's Example 1 continuous query: filter → map → window aggregate.
/// This is the chain every granted access deploys, so it is what both
/// engines are measured on.
fn example1_graph(stream: &str) -> QueryGraph {
    QueryGraphBuilder::on_stream(stream)
        .filter_str("rainrate > 5")
        .unwrap()
        .map(["samplingtime", "rainrate", "windspeed"])
        .aggregate(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build()
}

/// Tuples/sec for `threads` producers, each owning one stream with one
/// Example-1 deployment, under the pre-PR architecture: the interpreted
/// (name-resolving) engine behind a single global lock, one lock
/// acquisition and one deep schema comparison per tuple — see
/// [`exacml_bench::legacy`].
fn run_global_lock(threads: usize, tuples: &[Tuple], schema: &Schema) -> IngestRow {
    let engine = Arc::new(Mutex::new(LegacyEngine::new()));
    {
        let mut engine = engine.lock();
        for i in 0..threads {
            engine.register_stream(&format!("s{i}"), schema.clone());
            engine.deploy(&example1_graph(&format!("s{i}"))).unwrap();
        }
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let stream = format!("s{i}");
                for t in tuples {
                    engine.lock().push(&stream, t.clone()).unwrap();
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let total = tuples.len() * threads;
    IngestRow {
        mode: "global_lock_interpreted_single_push".into(),
        threads,
        tuples: total,
        seconds,
        tuples_per_sec: total as f64 / seconds,
    }
}

/// Tuples/sec for `threads` producers under the new architecture: the
/// internally-sharded engine shared without a wrapping lock, fed in batches.
fn run_sharded_batched(
    threads: usize,
    tuples: &[Tuple],
    schema: &Schema,
    batch_size: usize,
) -> IngestRow {
    let engine = Arc::new(StreamEngine::new());
    for i in 0..threads {
        engine.register_stream(&format!("s{i}"), schema.clone()).unwrap();
        engine.deploy(&example1_graph(&format!("s{i}"))).unwrap();
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let stream = format!("s{i}");
                for chunk in tuples.chunks(batch_size) {
                    engine.push_batch(&stream, chunk.iter().cloned()).unwrap();
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let total = tuples.len() * threads;
    IngestRow {
        mode: "sharded_push_batch".into(),
        threads,
        tuples: total,
        seconds,
        tuples_per_sec: total as f64 / seconds,
    }
}

/// A `DataServer` with one stream + Example-1 deployment per producer
/// thread, ready for the abstraction-overhead measurement.
fn server_with_deployments(threads: usize, schema: &Schema) -> Arc<DataServer> {
    let server = Arc::new(DataServer::new(ServerConfig::local()));
    for i in 0..threads {
        server.register_stream(&format!("s{i}"), schema.clone()).unwrap();
        server.engine().deploy(&example1_graph(&format!("s{i}"))).unwrap();
    }
    server
}

/// Tuples/sec for `threads` producers pushing batches into a `DataServer`,
/// either through its concrete inherent methods or through `&dyn Backend`.
/// Setup, batching and tuple stream are identical, so the ratio isolates
/// what the unified backend API costs on the hot path.
fn run_server_ingest(
    threads: usize,
    tuples: &[Tuple],
    schema: &Schema,
    batch_size: usize,
    through_dyn: bool,
) -> IngestRow {
    let server = server_with_deployments(threads, schema);
    let backend: Arc<dyn Backend> = Arc::clone(&server) as Arc<dyn Backend>;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let server = Arc::clone(&server);
            let backend = Arc::clone(&backend);
            scope.spawn(move || {
                let stream = format!("s{i}");
                for chunk in tuples.chunks(batch_size) {
                    if through_dyn {
                        backend.push_batch(&stream, chunk.to_vec()).unwrap();
                    } else {
                        server.push_batch(&stream, chunk.to_vec()).unwrap();
                    }
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let total = tuples.len() * threads;
    IngestRow {
        mode: if through_dyn {
            "server_dyn_backend_push_batch"
        } else {
            "server_direct_push_batch"
        }
        .into(),
        threads,
        tuples: total,
        seconds,
        tuples_per_sec: total as f64 / seconds,
    }
}

/// Tuples/sec for `threads` producers pushing batches into a
/// `DurableServer` with ingest journaling enabled — setup, batching and
/// tuple stream identical to the direct `DataServer` measurement, so the
/// ratio isolates what the write-ahead log costs on the hot path (encode +
/// checksum + flush per batch, serialized on the journal).
fn run_durable_ingest(
    threads: usize,
    tuples: &[Tuple],
    schema: &Schema,
    batch_size: usize,
) -> IngestRow {
    let store =
        std::env::temp_dir().join(format!("exacml-bench-durable-{}-{threads}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let config = DurableConfig {
        journal_ingest: true,
        sync_writes: false,
        snapshot_every: 0,
        ..DurableConfig::local()
    };
    let server = Arc::new(DurableServer::create(&store, config).expect("create bench store"));
    for i in 0..threads {
        server.register_stream(&format!("s{i}"), schema.clone()).unwrap();
        server.inner().engine().deploy(&example1_graph(&format!("s{i}"))).unwrap();
    }
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let stream = format!("s{i}");
                for chunk in tuples.chunks(batch_size) {
                    server.push_batch(&stream, chunk.to_vec()).unwrap();
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let total = tuples.len() * threads;
    drop(server);
    let _ = std::fs::remove_dir_all(&store);
    IngestRow {
        mode: "durable_wal_push_batch".into(),
        threads,
        tuples: total,
        seconds,
        tuples_per_sec: total as f64 / seconds,
    }
}

/// Tuples/sec for `threads` producers pushing batches into a `DataServer`
/// with its telemetry registry either enabled (the default: per-batch
/// ingest spans + sharded counters) or disabled. Setup, batching and tuple
/// stream are identical, so the ratio isolates what instrumentation costs
/// on the hot path.
fn run_telemetry_ingest(
    threads: usize,
    tuples: &[Tuple],
    schema: &Schema,
    batch_size: usize,
    enabled: bool,
) -> IngestRow {
    let server = server_with_deployments(threads, schema);
    server.telemetry_registry().set_enabled(enabled);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..threads {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let stream = format!("s{i}");
                for chunk in tuples.chunks(batch_size) {
                    server.push_batch(&stream, chunk.to_vec()).unwrap();
                }
            });
        }
    });
    let seconds = started.elapsed().as_secs_f64();
    let total = tuples.len() * threads;
    IngestRow {
        mode: if enabled {
            "telemetry_enabled_push_batch"
        } else {
            "telemetry_disabled_push_batch"
        }
        .into(),
        threads,
        tuples: total,
        seconds,
        tuples_per_sec: total as f64 / seconds,
    }
}

fn run_pdp(policies: usize, decisions: usize) -> PdpResult {
    let store = Arc::new(PolicyStore::new());
    for i in 0..policies {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), "weather")
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate"])
            .build();
        store.add(policy).unwrap();
    }
    let pdp = Pdp::new(store);
    let request = Request::subscribe(&format!("user{}", policies / 2), "weather");

    // Best-of-N per mode, like the ingest measurement: the CI perf gate
    // compares speedup ratios with a tight tolerance, and a single scheduler
    // preemption inside one timing loop would otherwise swing a ratio far
    // past it. The best repeat is the least-perturbed observation of each
    // evaluation mode.
    const REPEATS: usize = 3;
    let time = |f: &dyn Fn() -> bool| {
        (0..REPEATS)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..decisions {
                    assert!(f());
                }
                decisions as f64 / started.elapsed().as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };

    let cold_linear_per_sec = time(&|| pdp.evaluate_linear(&request).is_permit());
    let indexed_per_sec = time(&|| pdp.evaluate_uncached(&request).is_permit());
    assert!(pdp.evaluate(&request).is_permit()); // warm the cache
    let cached_per_sec = time(&|| pdp.evaluate(&request).is_permit());

    PdpResult {
        policies,
        decisions,
        cold_linear_per_sec,
        indexed_per_sec,
        cached_per_sec,
        cached_speedup: cached_per_sec / cold_linear_per_sec,
        indexed_speedup: indexed_per_sec / cold_linear_per_sec,
    }
}

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    // `--small` cuts the tuple count but keeps the policy count (the PDP
    // speedup ratios scale with store size) and keeps the decision count
    // high enough that the cached/indexed loops span tens of milliseconds —
    // sub-ms timing windows would let one scheduler preemption on a noisy
    // CI runner swing a ratio past the perf gate's tolerance.
    let (per_thread, batch_size, pdp_policies, pdp_decisions) =
        if options.small { (20_000, 256, 1000, 10_000) } else { (200_000, 256, 1000, 20_000) };

    let schema = Schema::weather_example();
    let tuples = weather_tuples(&schema, per_thread);

    // Best-of-N per configuration: the measurement is throughput under a
    // possibly noisy scheduler, and the best repeat is the least-perturbed
    // observation of what the implementation can do.
    const REPEATS: usize = 3;
    let best = |run: &dyn Fn() -> IngestRow| {
        (0..REPEATS)
            .map(|_| run())
            .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
            .expect("at least one repeat")
    };

    println!("engine_throughput: {per_thread} tuples/thread, batch {batch_size}");
    let mut ingest = Vec::new();
    let mut speedups = Vec::new();
    for threads in [1usize, 2, 4] {
        let baseline = best(&|| run_global_lock(threads, &tuples, &schema));
        let sharded = best(&|| run_sharded_batched(threads, &tuples, &schema, batch_size));
        println!(
            "  {} threads: global-lock {:>12.0} t/s | sharded+batched {:>12.0} t/s ({:.2}x)",
            threads,
            baseline.tuples_per_sec,
            sharded.tuples_per_sec,
            sharded.tuples_per_sec / baseline.tuples_per_sec,
        );
        speedups.push((threads, sharded.tuples_per_sec / baseline.tuples_per_sec));
        ingest.push(baseline);
        ingest.push(sharded);
    }

    let pdp = run_pdp(pdp_policies, pdp_decisions);
    println!(
        "  pdp ({} policies): linear {:>10.0}/s | indexed {:>10.0}/s ({:.0}x) | cached {:>10.0}/s ({:.0}x)",
        pdp.policies,
        pdp.cold_linear_per_sec,
        pdp.indexed_per_sec,
        pdp.indexed_speedup,
        pdp.cached_per_sec,
        pdp.cached_speedup,
    );

    // Abstraction overhead at the highest thread count: identical batched
    // `DataServer` ingest, concrete calls vs. `&dyn Backend`.
    let abstraction_threads = 4usize;
    let direct =
        best(&|| run_server_ingest(abstraction_threads, &tuples, &schema, batch_size, false));
    let dynamic =
        best(&|| run_server_ingest(abstraction_threads, &tuples, &schema, batch_size, true));
    let backend_abstraction = AbstractionResult {
        threads: abstraction_threads,
        tuples: direct.tuples,
        direct_tuples_per_sec: direct.tuples_per_sec,
        dyn_tuples_per_sec: dynamic.tuples_per_sec,
        dyn_vs_direct: dynamic.tuples_per_sec / direct.tuples_per_sec,
    };
    println!(
        "  backend abstraction ({} threads): direct {:>12.0} t/s | dyn Backend {:>12.0} t/s ({:.3}x)",
        backend_abstraction.threads,
        backend_abstraction.direct_tuples_per_sec,
        backend_abstraction.dyn_tuples_per_sec,
        backend_abstraction.dyn_vs_direct,
    );
    ingest.push(direct.clone());
    ingest.push(dynamic);

    // WAL overhead at the same thread count: identical batched ingest, plain
    // `DataServer` vs. `DurableServer` journaling every batch.
    let durable = best(&|| run_durable_ingest(abstraction_threads, &tuples, &schema, batch_size));
    let durability = DurabilityResult {
        threads: abstraction_threads,
        tuples: durable.tuples,
        direct_tuples_per_sec: direct.tuples_per_sec,
        durable_tuples_per_sec: durable.tuples_per_sec,
        durable_vs_direct: durable.tuples_per_sec / direct.tuples_per_sec,
    };
    println!(
        "  durability ({} threads): direct {:>12.0} t/s | WAL-journaled {:>12.0} t/s ({:.3}x)",
        durability.threads,
        durability.direct_tuples_per_sec,
        durability.durable_tuples_per_sec,
        durability.durable_vs_direct,
    );
    ingest.push(durable);

    // Observability overhead at the same thread count: identical batched
    // ingest with the telemetry registry off vs. on (the default).
    let disabled =
        best(&|| run_telemetry_ingest(abstraction_threads, &tuples, &schema, batch_size, false));
    let enabled =
        best(&|| run_telemetry_ingest(abstraction_threads, &tuples, &schema, batch_size, true));
    let telemetry = TelemetryOverheadResult {
        threads: abstraction_threads,
        tuples: enabled.tuples,
        disabled_tuples_per_sec: disabled.tuples_per_sec,
        enabled_tuples_per_sec: enabled.tuples_per_sec,
        telemetry_overhead: enabled.tuples_per_sec / disabled.tuples_per_sec,
    };
    println!(
        "  telemetry ({} threads): disabled {:>12.0} t/s | instrumented {:>12.0} t/s ({:.3}x)",
        telemetry.threads,
        telemetry.disabled_tuples_per_sec,
        telemetry.enabled_tuples_per_sec,
        telemetry.telemetry_overhead,
    );
    ingest.push(disabled);
    ingest.push(enabled);

    let report = ThroughputReport {
        pr: 2,
        bench: "engine_throughput".into(),
        small: options.small,
        ingest,
        ingest_speedup_at_threads: speedups,
        pdp,
        backend_abstraction,
        durability,
        telemetry,
    };
    let path =
        options.json.unwrap_or_else(|| std::path::PathBuf::from("BENCH_pr2_throughput.json"));
    write_json(&path, &report).expect("write report");
    println!("  wrote {}", path.display());
}
