//! The PR-6 shared-plan scaling measurement: per-tuple ingest cost as the
//! number of *overlapping* subscribers on one stream grows, merged (one
//! shared compiled plan, the default) vs. unmerged (`share_plans: false`,
//! one deployed graph per grant — what every grant cost before this PR).
//!
//! The workload is the paper's city-scale sharing story: many subjects ask
//! the same continuous question of the same stream (here the Example-1
//! windowed average, `WindowSpec::tuples(100, 100)`), so the merged server
//! compiles **one** operator subgraph and fans the window closes out to
//! every subscriber, while the unmerged server re-runs the whole
//! filter→aggregate chain once per grant on every tuple.
//!
//! Emitted as `BENCH_pr6_merge.json`. Two of its ratios are gated by
//! `perf_gate`:
//!
//! * `merged_retention_at_100` — merged tuples/sec at 100 subscribers vs.
//!   at 1 subscriber. Absolute floor **1/3** on every machine: the PR's
//!   acceptance pin that 100 overlapping subscribers cost at most 3× one
//!   subscriber per tuple (unmerged, the same step costs ~100×).
//! * `merged_vs_unmerged_at_100` — merged vs. unmerged tuples/sec at 100
//!   subscribers, the headline win of plan sharing.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin merge_scale -- \
//!     [--small] [--json BENCH_pr6_merge.json]
//! ```

use exacml_bench::report::{write_json, CliOptions};
use exacml_dsms::{AggFunc, AggSpec, Schema, Tuple, Value, WindowSpec};
use exacml_plus::{DataServer, ServerConfig, StreamPolicyBuilder, UserQuery};
use exacml_simnet::Topology;
use exacml_xacml::Request;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct MergeRow {
    /// `merged` (shared plans, the default) or `unmerged`
    /// (`share_plans: false`, one deployment per grant).
    mode: String,
    /// Overlapping subscribers granted on the one stream.
    subscribers: usize,
    /// Compiled plans the server actually holds — 1 merged, N unmerged.
    plans: usize,
    tuples: usize,
    seconds: f64,
    tuples_per_sec: f64,
    /// Per-tuple cost relative to the single-subscriber merged run
    /// (`single_tps / this_tps`); the acceptance pin is that merged stays
    /// ≤ 3 at 100 subscribers.
    cost_vs_single: f64,
}

#[derive(Debug, Clone, Serialize)]
struct MergeScaleReport {
    pr: u32,
    bench: String,
    small: bool,
    rows: Vec<MergeRow>,
    /// merged tps @100 subscribers / merged tps @1 — gated with an
    /// absolute floor of 1/3 (the "≤ 3× per-tuple cost" pin).
    merged_retention_at_100: f64,
    /// merged tps @100 subscribers / unmerged tps @100 — the sharing win.
    merged_vs_unmerged_at_100: f64,
}

fn weather_tuples(n: usize) -> Vec<Tuple> {
    let shared = Schema::weather_example().shared();
    (0..n)
        .map(|i| {
            Tuple::builder_shared(&shared)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", (i % 100) as f64)
                .set("windspeed", (i % 40) as f64)
                .finish_with_defaults()
        })
        .collect()
}

/// The continuous question every subscriber asks: the Example-1 windowed
/// average over the policy-filtered stream. Identical queries under the
/// same policy compile to identical merged graphs, so the sharing tier
/// folds all of them onto one plan.
fn shared_question() -> UserQuery {
    UserQuery::for_stream("weather")
        .with_map(["samplingtime", "rainrate", "windspeed"])
        .with_aggregation(
            WindowSpec::tuples(100, 100),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
}

/// One measured configuration: `subscribers` grants on one stream, then
/// `tuples.len()` tuples pushed in batches. Setup (policy load, grant
/// workflow, plan compilation) happens before the clock starts — the
/// number is the steady-state per-tuple cost the subscriber count imposes.
fn run_config(share_plans: bool, subscribers: usize, tuples: &[Tuple], batch: usize) -> MergeRow {
    let server = DataServer::new(ServerConfig {
        share_plans,
        topology: Topology::local(),
        ..ServerConfig::default()
    });
    server.register_stream("weather", Schema::weather_example()).unwrap();
    server
        .load_policy(StreamPolicyBuilder::new("open", "weather").filter("rainrate > 5").build())
        .unwrap();

    let question = shared_question();
    // Receivers stay alive for the whole run so every window close is
    // really fanned out and delivered, then drain after the clock stops.
    let receivers: Vec<_> = (0..subscribers)
        .map(|i| {
            let request = Request::subscribe(&format!("user{i}"), "weather");
            let response = server.handle_request(&request, Some(&question)).unwrap();
            server.subscribe(&response.handle).unwrap()
        })
        .collect();
    let plans = server.plan_count();
    assert_eq!(plans, if share_plans { 1 } else { subscribers });

    let started = Instant::now();
    for chunk in tuples.chunks(batch) {
        server.push_batch("weather", chunk.to_vec()).unwrap();
    }
    let seconds = started.elapsed().as_secs_f64();
    let delivered: usize = receivers.iter().map(|rx| rx.try_iter().count()).sum();
    // 100-tuple tumbling windows over ~94%-passing tuples: every subscriber
    // must have seen at least one close, or the graph never ran.
    assert!(delivered >= subscribers, "only {delivered} deliveries to {subscribers} subscribers");

    MergeRow {
        mode: if share_plans { "merged" } else { "unmerged" }.into(),
        subscribers,
        plans,
        tuples: tuples.len(),
        seconds,
        tuples_per_sec: tuples.len() as f64 / seconds,
        cost_vs_single: 0.0, // filled in once the single-subscriber run exists
    }
}

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    // `--small` trims the tuple budget and drops the 1000-subscriber point;
    // the gated ratios live at 100 subscribers and survive the cut.
    let (fanouts, base_tuples, batch): (&[usize], usize, usize) = if options.small {
        (&[1, 10, 100], 20_000, 256)
    } else {
        (&[1, 10, 100, 1000], 100_000, 256)
    };
    let tuples = weather_tuples(base_tuples);

    // Best-of-N per configuration, like `engine_throughput`: the gate
    // compares ratios with a tight tolerance, and the best repeat is the
    // least-perturbed observation of each configuration.
    const REPEATS: usize = 3;
    let best = |run: &dyn Fn() -> MergeRow| {
        (0..REPEATS)
            .map(|_| run())
            .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
            .expect("at least one repeat")
    };

    println!("merge_scale: {base_tuples} tuples, batch {batch}, fan-outs {fanouts:?}");
    let mut rows = Vec::new();
    for &subscribers in fanouts {
        let merged = best(&|| run_config(true, subscribers, &tuples, batch));
        // The unmerged server does `subscribers`× the operator work per
        // tuple; shrink its tuple budget so total work stays bounded at
        // high fan-out. Per-tuple rates are what the rows compare.
        let unmerged_tuples = &tuples[..(base_tuples / subscribers).max(2_000).min(base_tuples)];
        let unmerged = best(&|| run_config(false, subscribers, unmerged_tuples, batch));
        println!(
            "  {subscribers:>5} subscribers: merged {:>12.0} t/s ({} plan) | unmerged {:>12.0} t/s ({} plans)",
            merged.tuples_per_sec, merged.plans, unmerged.tuples_per_sec, unmerged.plans,
        );
        rows.push(merged);
        rows.push(unmerged);
    }

    fn tps(rows: &[MergeRow], mode: &str, subscribers: usize) -> f64 {
        rows.iter()
            .find(|r| r.mode == mode && r.subscribers == subscribers)
            .map(|r| r.tuples_per_sec)
            .expect("configuration was measured")
    }
    let single = tps(&rows, "merged", 1);
    for row in &mut rows {
        row.cost_vs_single = single / row.tuples_per_sec;
    }

    let merged_retention_at_100 = tps(&rows, "merged", 100) / single;
    let merged_vs_unmerged_at_100 = tps(&rows, "merged", 100) / tps(&rows, "unmerged", 100);
    println!(
        "  @100 subscribers: merged keeps {:.0}% of single-subscriber throughput \
         (cost {:.2}x, floor ≤3x); merged vs unmerged {:.1}x",
        merged_retention_at_100 * 100.0,
        1.0 / merged_retention_at_100,
        merged_vs_unmerged_at_100,
    );

    let report = MergeScaleReport {
        pr: 6,
        bench: "merge_scale".into(),
        small: options.small,
        rows,
        merged_retention_at_100,
        merged_vs_unmerged_at_100,
    };
    let path = options.json.unwrap_or_else(|| std::path::PathBuf::from("BENCH_pr6_merge.json"));
    write_json(&path, &report).expect("write report");
    println!("  wrote {}", path.display());
}
