//! The PR-7 fault-tolerance measurement: what owner failover *recovers* and
//! what WAL shipping *costs*.
//!
//! Two numbers come out, both machine-portable:
//!
//! * `failover_recovery` — grants re-minted alive at their recorded URIs
//!   after a host kill, divided by grants the dead host owned. The
//!   replicated fabric's contract is **1.0** (zero acknowledged-grant
//!   loss), gated as an absolute floor by `perf_gate` — any value below
//!   one means an acknowledged grant evaporated with its node.
//! * `replicated_ingest_vs_durable` — batched ingest throughput on a
//!   3-node replicated fabric (K = 1, journal bytes shipped to a peer
//!   every 256 records) vs. a single plain `DurableServer` on the same
//!   workload. Both sides journal every batch on the same machine in the
//!   same process, so the ratio isolates what replication itself costs on
//!   the ingest path.
//!
//! Emitted as `BENCH_pr7_failover.json`.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin failover_scale -- \
//!     [--small] [--json BENCH_pr7_failover.json]
//! ```

use exacml_bench::report::{write_json, CliOptions};
use exacml_dsms::{Schema, StreamHandle, Tuple, Value};
use exacml_durable::{DurableConfig, DurableServer, ReplicatedConfig, ReplicatedFabric};
use exacml_plus::StreamPolicyBuilder;
use exacml_simnet::NodeId;
use exacml_xacml::Request;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct FailoverRow {
    /// Streams granted before the kill.
    streams: usize,
    /// The physical host that was killed.
    victim_host: usize,
    /// Grants whose owning logical node lived on the victim.
    grants_owned: usize,
    /// Of those, grants live at their exact recorded URI after failover.
    grants_recovered: usize,
    /// Wall-clock seconds for every victim node to fail over (journal
    /// replay + handle re-minting included).
    failover_seconds: f64,
}

#[derive(Debug, Clone, Serialize)]
struct IngestRow {
    mode: String,
    tuples: usize,
    seconds: f64,
    tuples_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct FailoverReport {
    pr: u32,
    bench: String,
    small: bool,
    failover: FailoverRow,
    ingest: Vec<IngestRow>,
    /// grants recovered / grants owned by the killed host — floor **1.0**.
    failover_recovery: f64,
    /// replicated-fabric ingest tps / plain durable-server ingest tps.
    replicated_ingest_vs_durable: f64,
}

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("exacml-failover-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn weather_tuples(n: usize) -> Vec<Tuple> {
    let shared = Schema::weather_example().shared();
    (0..n)
        .map(|i| {
            Tuple::builder_shared(&shared)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", (i % 100) as f64)
                .finish_with_defaults()
        })
        .collect()
}

/// Grant one subscriber per stream on a 3-node replicated fabric, settle
/// replication, kill the host owning the most grants, and count how many
/// of its grants come back alive at their recorded URIs.
fn measure_failover(streams: usize) -> FailoverRow {
    let root = temp_root("recovery");
    let fabric =
        ReplicatedFabric::create(ReplicatedConfig::new(3, &root).with_replication(1).with_seed(42))
            .expect("create replicated fabric");

    let mut held = Vec::new(); // (owning logical node, handle URI)
    for i in 0..streams {
        let stream = format!("s{i}");
        fabric.register_stream(&stream, Schema::weather_example()).unwrap();
        fabric
            .load_policy(
                StreamPolicyBuilder::new(format!("p{i}"), &stream).filter("rainrate > 5").build(),
            )
            .unwrap();
        let granted =
            fabric.handle_request(&Request::subscribe(&format!("u{i}"), &stream), None).unwrap();
        let NodeId::Server(owner) = fabric.owner_of(&stream) else { unreachable!() };
        held.push((owner as usize, granted.handle().uri().to_string()));
    }
    fabric.settle_replication();

    // Kill the host with the most owned grants — the worst single loss.
    let victim = (0..3)
        .max_by_key(|&host| held.iter().filter(|(owner, _)| fabric.host_of(*owner) == host).count())
        .unwrap();
    let owned: Vec<&String> = held
        .iter()
        .filter(|(owner, _)| fabric.host_of(*owner) == victim)
        .map(|(_, uri)| uri)
        .collect();
    fabric.kill_node(victim);

    let started = Instant::now();
    for logical in 0..3 {
        let _ = fabric.node_server(logical); // touch → failover where needed
    }
    let failover_seconds = started.elapsed().as_secs_f64();
    let recovered = owned
        .iter()
        .filter(|uri| fabric.handle_is_live(&StreamHandle::from_uri((**uri).clone())))
        .count();

    let row = FailoverRow {
        streams,
        victim_host: victim,
        grants_owned: owned.len(),
        grants_recovered: recovered,
        failover_seconds,
    };
    let _ = std::fs::remove_dir_all(&root);
    row
}

fn measure_durable_ingest(tuples: &[Tuple], batch: usize) -> IngestRow {
    let root = temp_root("durable");
    let server = DurableServer::create(&root, DurableConfig::local()).expect("create store");
    server.register_stream("weather", Schema::weather_example()).unwrap();
    let started = Instant::now();
    for chunk in tuples.chunks(batch) {
        server.push_batch("weather", chunk.to_vec()).unwrap();
    }
    server.flush_journal().unwrap();
    let seconds = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&root);
    IngestRow {
        mode: "durable".into(),
        tuples: tuples.len(),
        seconds,
        tuples_per_sec: tuples.len() as f64 / seconds,
    }
}

fn measure_replicated_ingest(tuples: &[Tuple], batch: usize) -> IngestRow {
    let root = temp_root("replicated");
    let fabric =
        ReplicatedFabric::create(ReplicatedConfig::new(3, &root).with_replication(1).with_seed(42))
            .expect("create replicated fabric");
    fabric.register_stream("weather", Schema::weather_example()).unwrap();
    let started = Instant::now();
    for chunk in tuples.chunks(batch) {
        fabric.push_batch("weather", chunk.to_vec()).unwrap();
    }
    fabric.settle_replication();
    let seconds = started.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&root);
    IngestRow {
        mode: "replicated".into(),
        tuples: tuples.len(),
        seconds,
        tuples_per_sec: tuples.len() as f64 / seconds,
    }
}

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let (streams, ingest_tuples, batch) =
        if options.small { (12, 20_000, 256) } else { (24, 100_000, 256) };

    let failover = measure_failover(streams);
    let failover_recovery = if failover.grants_owned == 0 {
        1.0
    } else {
        failover.grants_recovered as f64 / failover.grants_owned as f64
    };
    println!(
        "failover_scale: host {} owned {} grants, {} recovered ({:.0}%) in {:.3}s",
        failover.victim_host,
        failover.grants_owned,
        failover.grants_recovered,
        failover_recovery * 100.0,
        failover.failover_seconds,
    );

    // Best-of-N, like the other gated benches: the least-perturbed repeat
    // is the cleanest observation of each configuration.
    const REPEATS: usize = 3;
    let tuples = weather_tuples(ingest_tuples);
    let best = |run: &dyn Fn() -> IngestRow| {
        (0..REPEATS)
            .map(|_| run())
            .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
            .expect("at least one repeat")
    };
    let durable = best(&|| measure_durable_ingest(&tuples, batch));
    let replicated = best(&|| measure_replicated_ingest(&tuples, batch));
    let replicated_ingest_vs_durable = replicated.tuples_per_sec / durable.tuples_per_sec;
    println!(
        "  ingest: durable {:>12.0} t/s | replicated(K=1) {:>12.0} t/s (ratio {:.2})",
        durable.tuples_per_sec, replicated.tuples_per_sec, replicated_ingest_vs_durable,
    );

    let report = FailoverReport {
        pr: 7,
        bench: "failover_scale".into(),
        small: options.small,
        failover,
        ingest: vec![durable, replicated],
        failover_recovery,
        replicated_ingest_vs_durable,
    };
    let path = options.json.unwrap_or_else(|| PathBuf::from("BENCH_pr7_failover.json"));
    write_json(&path, &report).expect("write report");
    println!("  wrote {}", path.display());
}
