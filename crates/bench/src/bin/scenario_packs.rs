//! The PR-10 scenario-pack bench: every built-in pack against every backend
//! shape, with per-stage telemetry and a merged-plan fan-out retention
//! measurement per pack.
//!
//! Two kinds of numbers come out:
//!
//! * **pack × shape runs** — wall-clock seconds, decision counts, delivered
//!   tuples and the per-stage telemetry diffs (`setup` / `script` /
//!   `finish`) for each pack on each of the four shapes. Oracles are
//!   *checked* while benching: a pack that stops being green fails the run.
//! * **fan-out retention** — on the local shape, ingest throughput on the
//!   pack's fan-out stream with F Zipf-style subscribers sharing the open
//!   policy's merged plan, divided by the same ingest with one subscriber.
//!   Plan sharing is what keeps this ratio near 1; the machine-portable
//!   `pack_retention_vs_smart_city_min` (worst pack retention relative to
//!   the smart-city baseline) is gated by `perf_gate` with an absolute
//!   0.5 floor.
//!
//! Emitted as `BENCH_pr10_packs.json`.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin scenario_packs -- \
//!     [--small] [--pack NAME] [--json BENCH_pr10_packs.json]
//! ```

use exacml_bench::report::{write_json, CliOptions};
use exacml_durable::{DurableConfig, DurableServer, ReplicatedConfig, ReplicatedFabric};
use exacml_plus::Backend;
use exacml_workload::packs;
use exacml_workload::runner::{run_pack_checked, PackOutcome};
use exacml_workload::scenario::ScenarioPack;
use exacml_xacml::Request;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct ShapeRow {
    backend_kind: String,
    seconds: f64,
    counts: exacml_workload::runner::PackCounts,
    deliveries: std::collections::BTreeMap<String, u64>,
    audit_kinds: std::collections::BTreeMap<String, u64>,
    live_plans: u64,
    live_deployments: u64,
    final_policies: u64,
    /// Per-stage telemetry counter diffs (`setup` / `script` / `finish`).
    /// Full snapshots carry 64-bucket latency histograms per stage per
    /// node — the counters are the comparable part, and keep the committed
    /// baseline reviewable.
    stage_counters: Vec<(String, std::collections::BTreeMap<String, u64>)>,
}

impl ShapeRow {
    fn from_outcome(outcome: PackOutcome, seconds: f64) -> Self {
        ShapeRow {
            backend_kind: outcome.backend_kind,
            seconds,
            counts: outcome.counts,
            deliveries: outcome.deliveries,
            audit_kinds: outcome.audit_kinds,
            live_plans: outcome.live_plans,
            live_deployments: outcome.live_deployments,
            final_policies: outcome.final_policies,
            stage_counters: outcome
                .stage_telemetry
                .into_iter()
                .map(|stage| (stage.stage, stage.telemetry.counters))
                .collect(),
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct RetentionRow {
    /// Fan-out subscribers sharing the open policy's plan.
    subscribers: usize,
    /// Tuples ingested on the fan-out stream per side.
    tuples: usize,
    baseline_tps: f64,
    fanout_tps: f64,
    /// `fanout_tps / baseline_tps` — plan sharing keeps this near 1.
    retention: f64,
}

#[derive(Debug, Clone, Serialize)]
struct PackReport {
    pack: String,
    shapes: Vec<ShapeRow>,
    retention: RetentionRow,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    pr: u32,
    bench: String,
    small: bool,
    packs: Vec<PackReport>,
    /// `(pack name, fan-out retention)` rows, for the gate's per-pack keys.
    pack_retention: Vec<(String, f64)>,
    /// Worst pack retention divided by the smart-city retention — the
    /// machine-portable "no pack's merged plan degrades out of family"
    /// ratio, held to an absolute 0.5 floor by `perf_gate`.
    pack_retention_vs_smart_city_min: f64,
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exacml-packs-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The four shapes, rebuilt fresh per pack.
fn shapes(pack: &str) -> Vec<(Arc<dyn Backend>, Option<PathBuf>)> {
    let durable_dir = temp_root(&format!("{pack}-durable"));
    let replicated_dir = temp_root(&format!("{pack}-replicated"));
    vec![
        (<dyn Backend>::local(), None),
        (<dyn Backend>::fabric(3), None),
        (
            Arc::new(DurableServer::open(&durable_dir, DurableConfig::default()).unwrap()),
            Some(durable_dir),
        ),
        (
            Arc::new(ReplicatedFabric::create(ReplicatedConfig::new(3, &replicated_dir)).unwrap()),
            Some(replicated_dir),
        ),
    ]
}

/// Time one ingest of `tuples` rows on the pack's fan-out stream with
/// `subscribers` subjects holding the open policy's (shared) plan.
fn fanout_tps(pack: &ScenarioPack, subscribers: usize, tuples: usize) -> f64 {
    let backend = <dyn Backend>::local();
    for stream in &pack.streams {
        backend.register_stream(&stream.name, stream.schema()).unwrap();
    }
    for policy in &pack.policies {
        backend.load_policy(policy.build().unwrap()).unwrap();
    }
    for i in 0..subscribers {
        backend
            .handle_request(
                &Request::subscribe(&format!("bench-sub-{i}"), &pack.fanout_stream),
                None,
            )
            .unwrap();
    }
    let spec =
        pack.streams.iter().find(|s| s.name == pack.fanout_stream).expect("fan-out stream exists");
    let mut feed = exacml_workload::scenario::SyntheticFeed::new(spec, pack.seed);
    let batch = feed.next_batch(tuples as u64);
    let start = Instant::now();
    backend.push_batch(&pack.fanout_stream, batch).unwrap();
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    tuples as f64 / seconds
}

fn measure_retention(pack: &ScenarioPack, small: bool) -> RetentionRow {
    let subscribers = if small { 32 } else { 100 };
    let tuples = if small { 4_000 } else { 40_000 };
    // Warm both sides once, then take the best of 3 to tame scheduler noise.
    let baseline_tps = (0..3).map(|_| fanout_tps(pack, 1, tuples)).fold(0.0, f64::max);
    let fanout = (0..3).map(|_| fanout_tps(pack, subscribers, tuples)).fold(0.0, f64::max);
    RetentionRow {
        subscribers,
        tuples,
        baseline_tps,
        fanout_tps: fanout,
        retention: fanout / baseline_tps,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = CliOptions::parse(args.clone());
    let only_pack = args.iter().position(|a| a == "--pack").and_then(|i| args.get(i + 1)).cloned();

    let mut selected = packs::all();
    if let Some(name) = &only_pack {
        selected.retain(|p| &p.name == name);
        assert!(!selected.is_empty(), "unknown pack '{name}'");
    }

    let mut pack_reports = Vec::new();
    for pack in &selected {
        // Packs as authored are the smoke size (`--small`); the full run
        // multiplies every ingest step 8×. `scaled` clears the exact
        // delivery maxes (window emission counts grow with volume) while
        // decision pins and delivery minimums keep holding.
        let bench_pack = if options.small { pack.clone() } else { pack.clone().scaled(8) };
        let mut shape_rows = Vec::new();
        for (backend, store) in shapes(&pack.name) {
            let start = Instant::now();
            let outcome = run_pack_checked(backend.as_ref(), &bench_pack);
            let seconds = start.elapsed().as_secs_f64();
            println!(
                "{:<16} {:<18} {:>7.3}s  grants={} reuses={} denials={} blocked={}",
                pack.name,
                outcome.backend_kind,
                seconds,
                outcome.counts.grants,
                outcome.counts.reuses,
                outcome.counts.denials,
                outcome.counts.blocked
            );
            shape_rows.push(ShapeRow::from_outcome(outcome, seconds));
            drop(backend);
            if let Some(dir) = store {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
        let retention = measure_retention(pack, options.small);
        println!(
            "{:<16} retention: {} subscribers keep {:.2}x of 1-subscriber ingest",
            pack.name, retention.subscribers, retention.retention
        );
        pack_reports.push(PackReport { pack: pack.name.clone(), shapes: shape_rows, retention });
    }

    let pack_retention: Vec<(String, f64)> =
        pack_reports.iter().map(|p| (p.pack.clone(), p.retention.retention)).collect();
    let smart_city =
        pack_retention.iter().find(|(name, _)| name == "smart-city").map_or(1.0, |(_, r)| *r);
    let pack_retention_vs_smart_city_min =
        pack_retention.iter().map(|(_, r)| r / smart_city).fold(f64::INFINITY, f64::min);

    let report = Report {
        pr: 10,
        bench: "scenario_packs".to_string(),
        small: options.small,
        packs: pack_reports,
        pack_retention,
        pack_retention_vs_smart_city_min,
    };
    println!("pack_retention_vs_smart_city_min = {pack_retention_vs_smart_city_min:.3}");
    if let Some(path) = &options.json {
        write_json(path, &report).expect("write bench JSON");
        println!("wrote {}", path.display());
    }
}
