//! Figure 6(a): CDF of request-fulfilment time, unique query/request
//! sequence — direct query vs eXACML+.

use exacml_bench::report::CliOptions;
use exacml_bench::{cdf_table, fig6a_result, write_json};
use exacml_workload::WorkloadSpec;

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let spec = if options.small { WorkloadSpec::small() } else { WorkloadSpec::table3() };
    println!(
        "Figure 6(a): unique sequence, {} requests over {} policies",
        spec.n_requests, spec.n_policies
    );
    let result = fig6a_result(&spec, 20);
    println!("\n{}", cdf_table(&result.series));
    println!("{:<22} {:>12} {:>12} {:>12}", "system", "mean (s)", "p50 (s)", "p99 (s)");
    for (label, mean, p50, p99) in &result.summary {
        println!("{label:<22} {mean:>12.6} {p50:>12.6} {p99:>12.6}");
    }
    if let Some(path) = options.json {
        write_json(&path, &result).expect("write JSON");
        println!("\nraw series written to {}", path.display());
    }
}
