//! The PR-3 fabric measurement: brokered request latency, routed ingest
//! throughput and simulated delivery latency as the node count grows, on the
//! paper-testbed and public-cloud topologies. Emitted as
//! `BENCH_pr3_fabric.json` to extend the repo's perf trajectory.
//!
//! For each (topology, node count) scenario the harness builds a fabric,
//! places one stream per (subject, policy) pair, then measures:
//!
//! * **requests/sec** through the broker (every request routed to its owner
//!   node, charged with the simulated broker → node round trip);
//! * **ingest tuples/sec** with one producer thread per node pumping
//!   batches through the broker into the streams that node owns;
//! * **delivery latency** (simulated, µs): subscribers poll their fabric
//!   links while the virtual clock advances, and the per-tuple
//!   `arrival − send` times are aggregated into mean / p99.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin fabric_scale -- \
//!     [--small] [--json BENCH_pr3_fabric.json]
//! ```

use exacml_bench::report::{write_json, CliOptions};
use exacml_dsms::{Schema, Tuple, Value};
use exacml_plus::{Backend, Fabric, FabricConfig, StreamPolicyBuilder};
use exacml_simnet::Topology;
use exacml_xacml::Request;
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Serialize)]
struct DeliveryStats {
    delivered: usize,
    mean_us: f64,
    p99_us: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Scenario {
    topology: String,
    nodes: usize,
    streams: usize,
    /// Brokered access requests per second (wall clock, node workflow
    /// included).
    requests_per_sec: f64,
    /// Mean end-to-end request latency in seconds (node workflow + simulated
    /// broker and node network hops).
    mean_request_latency_s: f64,
    /// Tuples per second pumped through the broker, one producer thread per
    /// node.
    ingest_tuples_per_sec: f64,
    /// Simulated subscriber delivery latency.
    delivery: DeliveryStats,
}

#[derive(Debug, Clone, Serialize)]
struct FabricReport {
    pr: u32,
    bench: String,
    small: bool,
    scenarios: Vec<Scenario>,
}

fn weather_batch(schema: &std::sync::Arc<Schema>, n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::builder_shared(schema)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", 10.0 + (i % 50) as f64)
                .finish_with_defaults()
        })
        .collect()
}

fn run_scenario(
    topology_name: &str,
    topology: &Topology,
    nodes: usize,
    streams: usize,
    requests_per_stream: usize,
    tuples_per_stream: usize,
) -> Scenario {
    let fabric = Fabric::new(FabricConfig::new(nodes, topology.clone()).with_seed(7));
    // Control and data plane go through the unified backend API — exactly
    // what scenario code uses — so the measured path includes the trait
    // layer; fabric-specific observability (placement, the virtual clock)
    // stays on the concrete handle.
    let backend: &dyn Backend = &fabric;
    let schema = Schema::weather_example();
    let shared = schema.clone().shared();
    let names: Vec<String> = (0..streams).map(|i| format!("stream{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        backend.register_stream(name, schema.clone()).unwrap();
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .build();
        backend.load_policy(policy).unwrap();
    }

    // Brokered request throughput/latency: first grant per stream deploys,
    // repeats are served by the owner's access guard — both go through the
    // broker's routing and network charge, like the paper's Zipf workload.
    let started = Instant::now();
    let mut latency_total = Duration::ZERO;
    let mut granted = Vec::new();
    let mut request_count = 0usize;
    for round in 0..requests_per_stream {
        for (i, name) in names.iter().enumerate() {
            let request = Request::subscribe(&format!("user{i}"), name);
            let response = backend.handle_request(&request, None).unwrap();
            latency_total += response.total_latency();
            request_count += 1;
            if round == 0 {
                granted.push(response.handle().clone());
            }
        }
    }
    let requests_per_sec = request_count as f64 / started.elapsed().as_secs_f64();
    let mean_request_latency_s = latency_total.as_secs_f64() / request_count as f64;

    // Subscribe to every granted handle before the ingest run so delivery
    // latency is measured on the same data.
    let mut subscriptions: Vec<_> = granted.iter().map(|h| fabric.subscribe(h).unwrap()).collect();

    // Routed ingest: one producer thread per node, each pumping batches into
    // the streams its node owns (so threads never contend on a shard).
    let per_node_streams: Vec<Vec<&String>> = (0..nodes)
        .map(|i| names.iter().filter(|n| fabric.owner_of(n) == fabric.nodes()[i].id()).collect())
        .collect();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for owned in &per_node_streams {
            let shared = &shared;
            scope.spawn(move || {
                for name in owned {
                    let batch = weather_batch(shared, tuples_per_stream);
                    for chunk in batch.chunks(256) {
                        backend.push_batch(name, chunk.to_vec()).unwrap();
                    }
                }
            });
        }
    });
    let total_tuples = streams * tuples_per_stream;
    let ingest_tuples_per_sec = total_tuples as f64 / started.elapsed().as_secs_f64();

    // Drain the deliveries by advancing the virtual clock in steps, so
    // arrival ordering is exercised rather than collapsed into one drain.
    let mut latencies_us: Vec<f64> = Vec::new();
    for _ in 0..20 {
        fabric.advance(Duration::from_millis(50));
        for subscription in &mut subscriptions {
            for delivered in subscription.poll() {
                latencies_us.push(delivered.latency().as_secs_f64() * 1e6);
            }
        }
    }
    latencies_us.sort_by(f64::total_cmp);
    let delivered = latencies_us.len();
    let mean_us =
        if delivered == 0 { 0.0 } else { latencies_us.iter().sum::<f64>() / delivered as f64 };
    let p99_us =
        if delivered == 0 { 0.0 } else { latencies_us[((delivered - 1) as f64 * 0.99) as usize] };

    Scenario {
        topology: topology_name.to_string(),
        nodes,
        streams,
        requests_per_sec,
        mean_request_latency_s,
        ingest_tuples_per_sec,
        delivery: DeliveryStats { delivered, mean_us, p99_us },
    }
}

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let (streams, requests_per_stream, tuples_per_stream) =
        if options.small { (16, 4, 2_000) } else { (64, 8, 10_000) };
    let node_counts: &[usize] = if options.small { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let topologies: [(&str, Topology); 2] =
        [("paper_testbed", Topology::paper_testbed()), ("public_cloud", Topology::public_cloud())];

    let mut scenarios = Vec::new();
    println!("fabric_scale: {streams} streams, {tuples_per_stream} tuples/stream");
    for (name, topology) in &topologies {
        for &nodes in node_counts {
            let scenario = run_scenario(
                name,
                topology,
                nodes,
                streams,
                requests_per_stream,
                tuples_per_stream,
            );
            println!(
                "  {:>13} nodes={}: {:>8.0} req/s (mean {:>9.6} s) | ingest {:>11.0} t/s | delivery mean {:>8.1} µs p99 {:>8.1} µs ({} tuples)",
                scenario.topology,
                scenario.nodes,
                scenario.requests_per_sec,
                scenario.mean_request_latency_s,
                scenario.ingest_tuples_per_sec,
                scenario.delivery.mean_us,
                scenario.delivery.p99_us,
                scenario.delivery.delivered,
            );
            scenarios.push(scenario);
        }
    }

    let report =
        FabricReport { pr: 3, bench: "fabric_scale".into(), small: options.small, scenarios };
    let path = options.json.unwrap_or_else(|| std::path::PathBuf::from("BENCH_pr3_fabric.json"));
    write_json(&path, &report).expect("write report");
    println!("  wrote {}", path.display());
}
