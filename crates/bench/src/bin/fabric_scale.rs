//! The fabric scaling measurement: brokered request throughput, batched
//! ingest throughput and simulated delivery latency as the node count grows
//! 1 → 2 → 4 → 8, on the paper-testbed and public-cloud topologies. Emitted
//! as `BENCH_pr3_fabric.json` to extend the repo's perf trajectory.
//!
//! Two throughput readings are taken per scenario:
//!
//! * **wall-clock** (`requests_per_sec`, `ingest_tuples_per_sec`) — a fixed
//!   pool of client threads hammers the broker; informational only, because
//!   on a small CI runner the wall clock measures the host's core count,
//!   not the architecture;
//! * **virtual-time** (`sim_requests_per_sec`, `sim_ingest_tuples_per_sec`)
//!   — the simulated N-node system's makespan. Ingest divides the tuple
//!   count by the *slowest node's* pipe-busy time (each node's ingest
//!   pipeline is a serialising queue; pipelines drain concurrently), and
//!   requests divide by the slowest node's summed broker→node round trips.
//!   These are deterministic per seed and machine-independent, which is
//!   what lets CI gate on them.
//!
//! The report's top-level `fabric_monotonic_1_2` / `2_4` / `4_8` keys are
//! the worst observed virtual-throughput ratio when the node count doubles
//! (min over topologies × {ingest, requests}); `perf_gate` holds each to an
//! absolute ≥ 1.0 floor — doubling the fabric must never lose throughput.
//!
//! ```text
//! cargo run --release -p exacml-bench --bin fabric_scale -- \
//!     [--small] [--json BENCH_pr3_fabric.json]
//! ```

use exacml_bench::report::{write_json, CliOptions};
use exacml_dsms::{Schema, Tuple, Value};
use exacml_durable::TopologyPreset;
use exacml_plus::backend::StreamBatch;
use exacml_plus::{Backend, Fabric, FabricConfig, StreamPolicyBuilder};
use exacml_simnet::{NodeId, Topology};
use exacml_xacml::Request;
use serde::Serialize;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Fixed client pool, independent of the node count: the workload offered
/// to a 1-node fabric and an 8-node fabric is identical, so any throughput
/// difference comes from the fabric, not from the harness.
const CLIENTS: usize = 8;
/// Tuples per stream per `push_batches` round — one broker→node frame
/// carries up to `CHUNK × streams-per-owner` tuples for each owner.
const CHUNK: usize = 64;
/// Timed passes per phase; wall-clock readings take the best pass
/// (noise control), virtual-time readings accumulate across all of them.
const PASSES: usize = 3;

#[derive(Debug, Clone, Serialize)]
struct DeliveryStats {
    delivered: usize,
    mean_us: f64,
    p99_us: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Scenario {
    topology: String,
    nodes: usize,
    streams: usize,
    /// Brokered access requests per second, wall clock (informational).
    requests_per_sec: f64,
    /// Requests per second of simulated time: measured requests divided by
    /// the slowest node's summed broker→node round trips (nodes serve their
    /// requests concurrently; the busiest node bounds the fabric).
    sim_requests_per_sec: f64,
    /// Mean end-to-end request latency in seconds (node workflow +
    /// simulated broker and node network hops).
    mean_request_latency_s: f64,
    /// Tuples per second pumped through the broker, wall clock
    /// (informational).
    ingest_tuples_per_sec: f64,
    /// Tuples per second of simulated time: routed tuples divided by the
    /// ingest makespan (the slowest node's pipe-busy time; per-node
    /// pipelines serialise their own frames and drain concurrently).
    sim_ingest_tuples_per_sec: f64,
    /// Broker→node ingest frames shipped; `tuples / hops` is the batching
    /// amortisation factor.
    ingest_hops: u64,
    /// Simulated subscriber delivery latency.
    delivery: DeliveryStats,
}

#[derive(Debug, Clone, Serialize)]
struct FabricReport {
    pr: u32,
    bench: String,
    small: bool,
    /// Worst virtual-throughput ratio going 1 → 2 nodes (min over
    /// topologies × {ingest, requests}); ≥ 1.0 means scaling is monotonic.
    fabric_monotonic_1_2: f64,
    /// Worst virtual-throughput ratio going 2 → 4 nodes.
    fabric_monotonic_2_4: f64,
    /// Worst virtual-throughput ratio going 4 → 8 nodes.
    fabric_monotonic_4_8: f64,
    scenarios: Vec<Scenario>,
}

fn weather_chunk(schema: &std::sync::Arc<Schema>, base: usize, n: usize) -> Vec<Tuple> {
    (base..base + n)
        .map(|i| {
            Tuple::builder_shared(schema)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", 10.0 + (i % 50) as f64)
                .finish_with_defaults()
        })
        .collect()
}

/// Split `items` into `CLIENTS` near-equal slices (some possibly empty).
fn client_slices<T>(items: &[T]) -> Vec<&[T]> {
    let per = items.len().div_ceil(CLIENTS);
    (0..CLIENTS)
        .map(|c| items.get(c * per..((c + 1) * per).min(items.len())).unwrap_or(&[]))
        .collect()
}

fn run_scenario(
    topology_name: &str,
    topology_index: usize,
    topology: &Topology,
    nodes: usize,
    streams: usize,
    request_rounds: usize,
    tuples_per_stream: usize,
) -> Scenario {
    // Per-scenario seed: the topology and the node count each shift the
    // seed, so no two scenarios replay the same sampled-delay sequences
    // (identical delivery stats across scenarios were a seeding bug).
    let seed = 7 + 100 * topology_index as u64 + nodes as u64;
    let fabric = Fabric::new(FabricConfig::new(nodes, topology.clone()).with_seed(seed));
    // Control and data plane go through the unified backend API — exactly
    // what scenario code uses — so the measured path includes the trait
    // layer; fabric-specific observability (placement, the virtual clock,
    // ingest frontiers) stays on the concrete handle.
    let backend: &dyn Backend = &fabric;
    let schema = Schema::weather_example();
    let shared = schema.clone().shared();
    let names: Vec<String> = (0..streams).map(|i| format!("stream{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        backend.register_stream(name, schema.clone()).unwrap();
        let policy = StreamPolicyBuilder::new(format!("p{i}"), name)
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .build();
        backend.load_policy(policy).unwrap();
    }

    // Grant round (setup, excluded from the measurement): one deployed
    // grant per (subject, stream) pair.
    let indexed: Vec<(usize, String)> = names.iter().cloned().enumerate().collect();
    let mut granted = Vec::new();
    for (i, name) in &indexed {
        let response =
            backend.handle_request(&Request::subscribe(&format!("user{i}"), name), None).unwrap();
        granted.push(response.handle().clone());
    }

    // Brokered request throughput: the fixed client pool replays reuse
    // requests (served by the owner's access guard, charged the full
    // broker→node round trip) — the steady state of the paper's Zipf
    // workload. Wall clock takes the best pass; the virtual reading sums
    // each node's round trips across all passes.
    let slices = client_slices(&indexed);
    let mut best_wall_rps = 0.0f64;
    let mut latency_total = Duration::ZERO;
    let mut node_trip_nanos: HashMap<NodeId, u64> = HashMap::new();
    let measured_requests = PASSES * request_rounds * streams;
    for _ in 0..PASSES {
        let started = Instant::now();
        let per_thread: Vec<(Duration, HashMap<NodeId, u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| {
                    let fabric = &fabric;
                    scope.spawn(move || {
                        let mut latency = Duration::ZERO;
                        let mut trips: HashMap<NodeId, u64> = HashMap::new();
                        for _ in 0..request_rounds {
                            for (i, name) in *slice {
                                let request = Request::subscribe(&format!("user{i}"), name);
                                let response = fabric.handle_request(&request, None).unwrap();
                                latency += response.total_latency();
                                *trips.entry(response.node).or_default() +=
                                    response.broker_network.as_nanos() as u64;
                            }
                        }
                        (latency, trips)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = started.elapsed().as_secs_f64();
        best_wall_rps = best_wall_rps.max(request_rounds as f64 * streams as f64 / wall);
        for (latency, trips) in per_thread {
            latency_total += latency;
            for (node, nanos) in trips {
                *node_trip_nanos.entry(node).or_default() += nanos;
            }
        }
    }
    let busiest_trip_s = node_trip_nanos.values().copied().max().unwrap_or(1) as f64 / 1e9;
    let sim_requests_per_sec = measured_requests as f64 / busiest_trip_s;
    let mean_request_latency_s = latency_total.as_secs_f64() / measured_requests as f64;

    // Subscribe to every granted handle before the ingest run so delivery
    // latency is measured on the same data.
    let mut subscriptions: Vec<_> = granted.iter().map(|h| fabric.subscribe(h).unwrap()).collect();

    // Batched routed ingest: each client thread fans its slice of streams
    // out through `push_batches` — the broker groups by owner and ships one
    // frame per (node, call). Wall clock takes the best pass; the virtual
    // reading is tuples over the ingest makespan (the slowest node's
    // pipe-busy time across all passes).
    let frontier_before: Vec<u64> =
        fabric.nodes().iter().map(|n| n.ingest_frontier_nanos()).collect();
    let rounds = tuples_per_stream.div_ceil(CHUNK);
    let mut best_wall_tps = 0.0f64;
    for _ in 0..PASSES {
        let started = Instant::now();
        std::thread::scope(|scope| {
            for slice in client_slices(&indexed) {
                let shared = &shared;
                scope.spawn(move || {
                    for round in 0..rounds {
                        let n = CHUNK.min(tuples_per_stream - round * CHUNK);
                        let batches: Vec<StreamBatch> = slice
                            .iter()
                            .map(|(_, name)| {
                                StreamBatch::new(name, weather_chunk(shared, round * CHUNK, n))
                            })
                            .collect();
                        backend.push_batches(batches).unwrap();
                    }
                });
            }
        });
        let wall = started.elapsed().as_secs_f64();
        best_wall_tps = best_wall_tps.max(streams as f64 * tuples_per_stream as f64 / wall);
    }
    let makespan_nanos = fabric
        .nodes()
        .iter()
        .zip(&frontier_before)
        .map(|(n, before)| n.ingest_frontier_nanos().saturating_sub(*before))
        .max()
        .unwrap_or(1)
        .max(1);
    let total_tuples = PASSES * streams * tuples_per_stream;
    let sim_ingest_tuples_per_sec = total_tuples as f64 / (makespan_nanos as f64 / 1e9);

    // Drain the deliveries by advancing the virtual clock in steps, so
    // arrival ordering is exercised rather than collapsed into one drain.
    let mut latencies_us: Vec<f64> = Vec::new();
    for _ in 0..20 {
        fabric.advance(Duration::from_millis(50));
        for subscription in &mut subscriptions {
            for delivered in subscription.poll() {
                latencies_us.push(delivered.latency().as_secs_f64() * 1e6);
            }
        }
    }
    latencies_us.sort_by(f64::total_cmp);
    let delivered = latencies_us.len();
    let mean_us =
        if delivered == 0 { 0.0 } else { latencies_us.iter().sum::<f64>() / delivered as f64 };
    let p99_us =
        if delivered == 0 { 0.0 } else { latencies_us[((delivered - 1) as f64 * 0.99) as usize] };

    Scenario {
        topology: topology_name.to_string(),
        nodes,
        streams,
        requests_per_sec: best_wall_rps,
        sim_requests_per_sec,
        mean_request_latency_s,
        ingest_tuples_per_sec: best_wall_tps,
        sim_ingest_tuples_per_sec,
        ingest_hops: fabric.stats().ingest_hops,
        delivery: DeliveryStats { delivered, mean_us, p99_us },
    }
}

/// The worst virtual-throughput ratio across topologies and both planes
/// when the node count goes `from` → `to`.
fn monotonic_ratio(scenarios: &[Scenario], from: usize, to: usize) -> f64 {
    let mut worst = f64::INFINITY;
    for low in scenarios.iter().filter(|s| s.nodes == from) {
        let Some(high) = scenarios.iter().find(|s| s.nodes == to && s.topology == low.topology)
        else {
            continue;
        };
        worst = worst
            .min(high.sim_ingest_tuples_per_sec / low.sim_ingest_tuples_per_sec)
            .min(high.sim_requests_per_sec / low.sim_requests_per_sec);
    }
    worst
}

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    // The stream count stays fixed (placement spread is what scaling is
    // about); --small shrinks the per-stream workload only.
    let streams = 64;
    let (request_rounds, tuples_per_stream) = if options.small { (2, 512) } else { (4, 4_096) };
    let node_counts: [usize; 4] = [1, 2, 4, 8];

    let topologies: [(&str, Topology); 2] = [
        (TopologyPreset::PaperTestbed.name(), TopologyPreset::PaperTestbed.topology()),
        (TopologyPreset::PublicCloud.name(), TopologyPreset::PublicCloud.topology()),
    ];

    let mut scenarios = Vec::new();
    println!(
        "fabric_scale: {streams} streams, {tuples_per_stream} tuples/stream, {CLIENTS} clients"
    );
    for (topology_index, (name, topology)) in topologies.iter().enumerate() {
        for &nodes in &node_counts {
            let scenario = run_scenario(
                name,
                topology_index,
                topology,
                nodes,
                streams,
                request_rounds,
                tuples_per_stream,
            );
            println!(
                "  {:>13} nodes={}: sim {:>9.0} req/s / {:>11.0} t/s | wall {:>8.0} req/s / {:>10.0} t/s | delivery mean {:>7.1} µs p99 {:>7.1} µs ({} tuples, {} hops)",
                scenario.topology,
                scenario.nodes,
                scenario.sim_requests_per_sec,
                scenario.sim_ingest_tuples_per_sec,
                scenario.requests_per_sec,
                scenario.ingest_tuples_per_sec,
                scenario.delivery.mean_us,
                scenario.delivery.p99_us,
                scenario.delivery.delivered,
                scenario.ingest_hops,
            );
            scenarios.push(scenario);
        }
    }

    let report = FabricReport {
        pr: 3,
        bench: "fabric_scale".into(),
        small: options.small,
        fabric_monotonic_1_2: monotonic_ratio(&scenarios, 1, 2),
        fabric_monotonic_2_4: monotonic_ratio(&scenarios, 2, 4),
        fabric_monotonic_4_8: monotonic_ratio(&scenarios, 4, 8),
        scenarios,
    };
    println!(
        "  monotonic 1→2 {:.2}×  2→4 {:.2}×  4→8 {:.2}×  (worst ratio over topologies × planes)",
        report.fabric_monotonic_1_2, report.fabric_monotonic_2_4, report.fabric_monotonic_4_8
    );
    let path = options.json.unwrap_or_else(|| std::path::PathBuf::from("BENCH_pr3_fabric.json"));
    write_json(&path, &report).expect("write report");
    println!("  wrote {}", path.display());
}
