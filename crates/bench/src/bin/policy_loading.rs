//! The policy-loading measurement of Section 4.2: loading a policy takes a
//! small, constant amount of time irrespective of the number of policies
//! already loaded (the paper reports 0.25 s ± 0.06 s on its Java prototype).

use exacml_bench::report::CliOptions;
use exacml_bench::{policy_loading_experiment, write_json};

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let policies = options.policies.unwrap_or(if options.small { 100 } else { 1000 });
    println!("Policy loading: {policies} policies");
    let result = policy_loading_experiment(policies, 2012);
    println!("  mean   {:.6} s", result.mean_seconds);
    println!("  stddev {:.6} s", result.stddev_seconds);
    println!("  first  {:.6} s", result.first_seconds);
    println!("  last   {:.6} s", result.last_seconds);
    println!("(the paper's Java/LAN prototype reports 0.25 s ± 0.06 s; the claim reproduced here is that the cost does not grow with the number of loaded policies)");
    if let Some(path) = options.json {
        write_json(&path, &result).expect("write JSON");
        println!("raw result written to {}", path.display());
    }
}
