//! Table 3: the workload parameters, plus a summary of the generated corpus
//! (proving the generated composition matches the requested distribution).

use exacml_bench::report::CliOptions;
use exacml_workload::{WorkloadGenerator, WorkloadSpec};
use std::collections::BTreeMap;

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let spec = if options.small { WorkloadSpec::small() } else { WorkloadSpec::table3() };

    println!("Table 3: summary of parameters used in experiments\n");
    println!("{:<18} {:<28} Description", "Variable", "Value");
    for (name, value, description) in spec.table_rows() {
        println!("{name:<18} {value:<28} {description}");
    }

    let generator = WorkloadGenerator::new(spec);
    let queries = generator.generate_queries();
    let mut per_composition: BTreeMap<String, usize> = BTreeMap::new();
    for q in &queries {
        *per_composition.entry(q.composition.clone()).or_default() += 1;
    }
    println!("\nGenerated corpus: {} unique continuous queries", queries.len());
    for (composition, count) in &per_composition {
        println!("  {composition:<10} {count}");
    }
    let unique = generator.unique_sequence(queries.len());
    let zipf = generator.zipf_sequence(queries.len());
    println!(
        "\nunique sequence: {} requests over {} distinct queries",
        unique.len(),
        unique.distinct()
    );
    println!("zipf sequence:   {} requests over {} distinct queries", zipf.len(), zipf.distinct());
}
