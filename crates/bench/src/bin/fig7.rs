//! Figure 7: detailed processing time of access-control requests.
//! Defaults to the 7(b) set-up (1500 requests / 1000 policies); pass
//! `--requests 100 --policies 50` for 7(a).

use exacml_bench::report::CliOptions;
use exacml_bench::{fig7_result, series_table, write_json};

fn main() {
    let options = CliOptions::parse(std::env::args().skip(1));
    let (requests, policies) = if options.small {
        (options.requests.unwrap_or(100), options.policies.unwrap_or(50))
    } else {
        (options.requests.unwrap_or(1500), options.policies.unwrap_or(1000))
    };
    println!("Figure 7: {requests} requests with {policies} policies loaded");
    let result = fig7_result(requests, policies, 2012);
    let every = (result.rows.len() / 25).max(1);
    println!("\n{}", series_table(&result.rows, every));
    let (total, pdp, graph, dsms, network) = result.means;
    println!("means: total {total:.6}s  PDP {pdp:.6}s  query-graph {graph:.6}s  DSMS {dsms:.6}s  network {network:.6}s");
    if let Some(path) = options.json {
        write_json(&path, &result).expect("write JSON");
        println!("\nraw series written to {}", path.display());
    }
}
