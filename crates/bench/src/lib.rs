//! # exacml-bench — experiment harness for the eXACML+ evaluation
//!
//! This crate regenerates every table and figure of the paper's Section 4.2
//! evaluation:
//!
//! | artefact | binary |
//! |---|---|
//! | Table 3 (workload parameters / corpus summary) | `cargo run -p exacml-bench --release --bin table3` |
//! | policy loading cost (¶ before Fig. 6) | `cargo run -p exacml-bench --release --bin policy_loading` |
//! | Figure 6(a) — response-time CDF, unique sequence | `cargo run -p exacml-bench --release --bin fig6a` |
//! | Figure 6(b) — response-time CDF, Zipf sequence, cache on/off | `cargo run -p exacml-bench --release --bin fig6b` |
//! | Figure 7(a)/(b) — per-request time decomposition | `cargo run -p exacml-bench --release --bin fig7` |
//!
//! The Criterion micro-benchmarks in `benches/` back the per-component
//! claims (PDP cost vs. policy count, query-graph manipulation, NR/PR
//! analysis cost, DSMS throughput, proxy cache effect).
//!
//! All experiment binaries accept `--small` to run a ~10% scaled workload and
//! `--json <path>` to dump the raw series for EXPERIMENTS.md.

pub mod experiments;
pub mod legacy;
pub mod report;

pub use experiments::{
    build_environment, fig6a as fig6a_result, fig6b as fig6b_result, fig7 as fig7_result,
    policy_loading_experiment, run_direct_queries, run_exacml_sequence, Environment, Fig6Result,
    Fig7Result, PolicyLoadingResult,
};
pub use report::{cdf_table, series_table, write_json};
