//! A faithful reproduction of the stream engine's **pre-PR-2 hot path**,
//! kept as the baseline for the `engine_throughput` measurements.
//!
//! Before the concurrency PR the engine (a) lived behind one global mutex in
//! `DataServer`, (b) compared the tuple's schema against the stream's by
//! deep equality on every push, (c) cloned the deployment id list per push,
//! and (d) ran the *interpreted* operators — every filter leaf, map
//! attribute and aggregate spec resolved its attribute by name
//! (`Schema::index_of`, a case-insensitive linear scan) for every tuple.
//! This module reproduces exactly that per-push work using the public
//! operator API, so `BENCH_pr2_throughput.json` compares the shipped sharded
//! engine against what the repo actually did before, not against a strawman.

use exacml_dsms::window::SlidingBuffer;
use exacml_dsms::{DsmsError, Operator, QueryGraph, Schema, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

struct LegacyStage {
    operator: Operator,
    output_schema: Arc<Schema>,
    window: Option<SlidingBuffer>,
}

struct LegacyDeployment {
    stages: Vec<LegacyStage>,
    emitted: u64,
}

impl LegacyDeployment {
    /// The seed's `DeploymentState::process`: a fresh `Vec` per stage and
    /// interpreted (name-resolving) operator application per tuple.
    fn process(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let mut current = vec![tuple];
        for stage in &mut self.stages {
            if current.is_empty() {
                break;
            }
            let mut next = Vec::with_capacity(current.len());
            for t in current {
                match &stage.operator {
                    Operator::Filter(op) => {
                        if let Some(t) = op.apply(t) {
                            next.push(t);
                        }
                    }
                    Operator::Map(op) => next.push(op.apply(&t, &stage.output_schema)),
                    Operator::Aggregate(op) => {
                        let buffer = stage
                            .window
                            .as_mut()
                            .expect("aggregate stages always carry a window buffer");
                        next.extend(op.apply(buffer, t, &stage.output_schema));
                    }
                }
            }
            current = next;
        }
        current
    }
}

/// The pre-PR engine shape: single-threaded (`&mut self`), meant to be
/// wrapped in a `Mutex` by its caller exactly as `DataServer` used to do.
#[derive(Default)]
pub struct LegacyEngine {
    streams: HashMap<String, Arc<Schema>>,
    deployments: HashMap<u64, LegacyDeployment>,
    by_stream: HashMap<String, Vec<u64>>,
    next_id: u64,
}

impl LegacyEngine {
    /// An empty legacy engine.
    #[must_use]
    pub fn new() -> Self {
        LegacyEngine::default()
    }

    /// Register an input stream.
    pub fn register_stream(&mut self, name: &str, schema: Schema) {
        self.streams.insert(name.to_string(), schema.shared());
        self.by_stream.entry(name.to_string()).or_default();
    }

    /// Deploy a query graph (validation as the seed did it).
    ///
    /// # Errors
    /// Fails when the stream is unknown or the graph invalid.
    pub fn deploy(&mut self, graph: &QueryGraph) -> Result<u64, DsmsError> {
        let input_schema = self
            .streams
            .get(&graph.stream)
            .ok_or_else(|| DsmsError::UnknownStream(graph.stream.clone()))?;
        let mut stages = Vec::with_capacity(graph.nodes.len());
        let mut current: Schema = (**input_schema).clone();
        for node in &graph.nodes {
            let out = node.operator.output_schema(&current)?;
            let window = match &node.operator {
                Operator::Aggregate(op) => Some(SlidingBuffer::new(op.window)),
                _ => None,
            };
            stages.push(LegacyStage {
                operator: node.operator.clone(),
                output_schema: out.clone().shared(),
                window,
            });
            current = out;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.by_stream.entry(graph.stream.clone()).or_default().push(id);
        self.deployments.insert(id, LegacyDeployment { stages, emitted: 0 });
        Ok(id)
    }

    /// The seed's `StreamEngine::push`: deep schema comparison, a cloned
    /// deployment-id list, and interpreted operator chains.
    ///
    /// # Errors
    /// Fails when the stream is unknown or the tuple does not match its
    /// schema.
    pub fn push(&mut self, stream: &str, tuple: Tuple) -> Result<usize, DsmsError> {
        let schema = self
            .streams
            .get(stream)
            .cloned()
            .ok_or_else(|| DsmsError::UnknownStream(stream.to_string()))?;
        if tuple.schema().as_ref() != schema.as_ref() {
            return Err(DsmsError::SchemaMismatch {
                stream: stream.to_string(),
                detail: "tuple schema differs from stream schema".to_string(),
            });
        }
        let ids = self.by_stream.get(stream).cloned().unwrap_or_default();
        let mut emitted = 0usize;
        for id in ids {
            let Some(state) = self.deployments.get_mut(&id) else { continue };
            let outputs = state.process(tuple.clone());
            state.emitted += outputs.len() as u64;
            emitted += outputs.len();
        }
        Ok(emitted)
    }

    /// Total derived tuples emitted by a deployment.
    #[must_use]
    pub fn emitted_by(&self, id: u64) -> Option<u64> {
        self.deployments.get(&id).map(|d| d.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_dsms::{QueryGraphBuilder, StreamEngine, Value};

    /// The baseline must agree with the shipped engine on what is emitted —
    /// it is the same semantics, only the slower implementation.
    #[test]
    fn legacy_engine_agrees_with_sharded_engine() {
        let schema = Schema::weather_example();
        let graph = QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 50")
            .unwrap()
            .map(["samplingtime", "rainrate"])
            .build();

        let mut legacy = LegacyEngine::new();
        legacy.register_stream("weather", schema.clone());
        let legacy_id = legacy.deploy(&graph).unwrap();

        let engine = StreamEngine::new();
        engine.register_stream("weather", schema.clone()).unwrap();
        let d = engine.deploy(&graph).unwrap();

        for i in 0..200 {
            let t = Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i))
                .set("rainrate", (i % 100) as f64)
                .finish_with_defaults();
            let a = legacy.push("weather", t.clone()).unwrap();
            let b = engine.push("weather", t).unwrap();
            assert_eq!(a, b, "divergence at tuple {i}");
        }
        assert_eq!(legacy.emitted_by(legacy_id), engine.emitted_by(d.id));
    }
}
