//! DSMS substrate throughput: tuples per second through each operator kind —
//! backs the "StreamBase" series of Figure 7 and the engine's own claims.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use exacml_dsms::{
    AggFunc, AggSpec, QueryGraph, QueryGraphBuilder, Schema, StreamEngine, Tuple, Value, WindowSpec,
};
use std::time::Duration;

fn weather_tuples(n: usize) -> (Schema, Vec<Tuple>) {
    let schema = Schema::weather_example();
    let tuples = (0..n)
        .map(|i| {
            Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", (i % 100) as f64)
                .set("windspeed", (i % 40) as f64)
                .finish_with_defaults()
        })
        .collect();
    (schema, tuples)
}

fn graphs() -> Vec<(&'static str, QueryGraph)> {
    vec![
        ("identity", QueryGraph::identity("weather")),
        (
            "filter",
            QueryGraphBuilder::on_stream("weather").filter_str("rainrate > 50").unwrap().build(),
        ),
        ("map", QueryGraphBuilder::on_stream("weather").map(["samplingtime", "rainrate"]).build()),
        (
            "aggregate",
            QueryGraphBuilder::on_stream("weather")
                .aggregate(
                    WindowSpec::tuples(5, 2),
                    vec![
                        AggSpec::new("rainrate", AggFunc::Avg),
                        AggSpec::new("windspeed", AggFunc::Max),
                    ],
                )
                .build(),
        ),
        (
            "full_chain",
            QueryGraphBuilder::on_stream("weather")
                .filter_str("rainrate > 10")
                .unwrap()
                .map(["samplingtime", "rainrate", "windspeed"])
                .aggregate(WindowSpec::tuples(5, 2), vec![AggSpec::new("rainrate", AggFunc::Avg)])
                .build(),
        ),
    ]
}

fn bench_dsms(c: &mut Criterion) {
    const BATCH: usize = 1000;
    let (schema, tuples) = weather_tuples(BATCH);

    let mut group = c.benchmark_group("dsms_push");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, graph) in graphs() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let engine = StreamEngine::new();
                    engine.register_stream("weather", schema.clone()).unwrap();
                    engine.deploy(&graph).unwrap();
                    engine
                },
                |engine| {
                    for t in &tuples {
                        engine.push("weather", t.clone()).unwrap();
                    }
                    engine
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dsms_deploy");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    let full = graphs().pop().unwrap().1;
    group.bench_function("deploy_withdraw", |b| {
        let engine = StreamEngine::new();
        engine.register_stream("weather", schema.clone()).unwrap();
        b.iter(|| {
            let d = engine.deploy(&full).unwrap();
            engine.withdraw(d.id).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dsms);
criterion_main!(benches);
