//! End-to-end framework cost: a full access request through the data server,
//! and the proxy cache hit/miss ablation behind Figure 6(b).

use criterion::{criterion_group, criterion_main, Criterion};
use exacml_dsms::Schema;
use exacml_plus::{DataServer, Proxy, ServerConfig, StreamPolicyBuilder};
use exacml_simnet::Topology;
use exacml_xacml::Request;
use std::sync::Arc;
use std::time::Duration;

fn server_with_policies(n: usize) -> Arc<DataServer> {
    let server = Arc::new(DataServer::new(ServerConfig {
        topology: Topology::local(),
        ..ServerConfig::default()
    }));
    server.register_stream("weather", Schema::weather_example()).unwrap();
    for i in 0..n {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), "weather")
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate", "windspeed"])
            .build();
        server.load_policy(policy).unwrap();
    }
    server
}

fn bench_framework(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_request");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);

    for policies in [50usize, 1000] {
        let server = server_with_policies(policies);
        let request = Request::subscribe(&format!("user{}", policies / 2), "weather");
        group.bench_function(format!("handle_request_{policies}_policies"), |b| {
            b.iter(|| {
                let response = server.handle_request(&request, None).unwrap();
                // Release so the next iteration deploys again rather than
                // reusing, keeping iterations comparable.
                server.release_access(&format!("user{}", policies / 2), "weather");
                response
            });
        });
    }

    let server = server_with_policies(100);
    let proxy_cached = Proxy::with_cache(Arc::clone(&server), true);
    let request = Request::subscribe("user1", "weather");
    proxy_cached.request(&request, None).unwrap();
    group.bench_function("proxy_cache_hit", |b| {
        b.iter(|| proxy_cached.request(&request, None).unwrap());
    });

    let proxy_uncached = Proxy::with_cache(Arc::clone(&server), false);
    let request = Request::subscribe("user2", "weather");
    group.bench_function("proxy_cache_miss", |b| {
        b.iter(|| proxy_uncached.request(&request, None).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
