//! Concurrent engine throughput: the PR-2 hot-path claims.
//!
//! Three groups back the numbers recorded in `BENCH_pr2_throughput.json`:
//!
//! * `fanout` — one stream feeding many deployments at once (the zero-copy
//!   `Arc`-backed tuple fan-out);
//! * `ingest` — batched vs. single-tuple pushes, and multi-threaded ingest
//!   into distinct streams (the per-stream shards) vs. the old
//!   global-`Mutex` architecture simulated by wrapping the engine in one
//!   lock;
//! * `pdp` — cold (linear-scan), indexed, and cached decision latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exacml_bench::legacy::LegacyEngine;
use exacml_dsms::{QueryGraph, QueryGraphBuilder, Schema, StreamEngine, Tuple, Value};
use exacml_xacml::{Pdp, PolicyStore, Request};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn weather_tuples(n: usize) -> (Schema, Vec<Tuple>) {
    let schema = Schema::weather_example();
    let shared = schema.clone().shared();
    let tuples = (0..n)
        .map(|i| {
            Tuple::builder_shared(&shared)
                .set("samplingtime", Value::Timestamp(i as i64 * 30_000))
                .set("rainrate", (i % 100) as f64)
                .set("windspeed", (i % 40) as f64)
                .finish_with_defaults()
        })
        .collect();
    (schema, tuples)
}

fn filter_graph(stream: &str, threshold: u32) -> QueryGraph {
    QueryGraphBuilder::on_stream(stream)
        .filter_str(&format!("rainrate > {threshold}"))
        .unwrap()
        .build()
}

fn bench_fanout(c: &mut Criterion) {
    const BATCH: usize = 1000;
    let (schema, tuples) = weather_tuples(BATCH);

    let mut group = c.benchmark_group("engine_fanout");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));
    for deployments in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("deployments", deployments),
            &deployments,
            |b, &n| {
                let engine = StreamEngine::new();
                engine.register_stream("weather", schema.clone()).unwrap();
                let receivers: Vec<_> = (0..n)
                    .map(|i| {
                        let d = engine.deploy(&filter_graph("weather", (i % 90) as u32)).unwrap();
                        engine.subscribe(&d.output_handle).unwrap()
                    })
                    .collect();
                b.iter(|| {
                    engine.push_batch("weather", tuples.iter().cloned()).unwrap();
                    for rx in &receivers {
                        rx.try_iter().for_each(drop);
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    const BATCH: usize = 1000;
    let (schema, tuples) = weather_tuples(BATCH);

    let mut group = c.benchmark_group("engine_ingest");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));

    // Single-tuple pushes vs. one batched push on an otherwise idle engine.
    let engine = StreamEngine::new();
    engine.register_stream("weather", schema.clone()).unwrap();
    engine.deploy(&filter_graph("weather", 50)).unwrap();
    group.bench_function("single_push", |b| {
        b.iter(|| {
            for t in &tuples {
                engine.push("weather", t.clone()).unwrap();
            }
        });
    });
    group.bench_function("push_batch", |b| {
        b.iter(|| engine.push_batch("weather", tuples.iter().cloned()).unwrap());
    });

    // Multi-threaded ingest into distinct streams: sharded engine vs. the
    // old single-global-lock architecture.
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements((BATCH * threads) as u64));
        group.bench_with_input(BenchmarkId::new("sharded_threads", threads), &threads, |b, &n| {
            let engine = Arc::new(StreamEngine::new());
            for i in 0..n {
                engine.register_stream(&format!("s{i}"), schema.clone()).unwrap();
                engine.deploy(&filter_graph(&format!("s{i}"), 50)).unwrap();
            }
            b.iter(|| {
                std::thread::scope(|scope| {
                    for i in 0..n {
                        let engine = Arc::clone(&engine);
                        let tuples = &tuples;
                        scope.spawn(move || {
                            engine.push_batch(&format!("s{i}"), tuples.iter().cloned()).unwrap();
                        });
                    }
                });
            });
        });
        group.bench_with_input(
            BenchmarkId::new("global_lock_threads", threads),
            &threads,
            |b, &n| {
                let engine = Arc::new(Mutex::new(LegacyEngine::new()));
                {
                    let mut engine = engine.lock();
                    for i in 0..n {
                        engine.register_stream(&format!("s{i}"), schema.clone());
                        engine.deploy(&filter_graph(&format!("s{i}"), 50)).unwrap();
                    }
                }
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for i in 0..n {
                            let engine = Arc::clone(&engine);
                            let tuples = &tuples;
                            scope.spawn(move || {
                                let stream = format!("s{i}");
                                for t in tuples {
                                    engine.lock().push(&stream, t.clone()).unwrap();
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

fn bench_pdp_paths(c: &mut Criterion) {
    use exacml_plus::StreamPolicyBuilder;
    let store = Arc::new(PolicyStore::new());
    for i in 0..1000 {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), "weather")
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .build();
        store.add(policy).unwrap();
    }
    let pdp = Pdp::new(store);
    let request = Request::subscribe("user500", "weather");

    let mut group = c.benchmark_group("pdp_paths");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    group.bench_function("linear_1000", |b| {
        b.iter(|| {
            assert!(pdp.evaluate_linear(&request).is_permit());
        });
    });
    group.bench_function("indexed_1000", |b| {
        b.iter(|| {
            assert!(pdp.evaluate_uncached(&request).is_permit());
        });
    });
    group.bench_function("cached_1000", |b| {
        assert!(pdp.evaluate(&request).is_permit()); // warm the cache
        b.iter(|| {
            assert!(pdp.evaluate(&request).is_permit());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fanout, bench_ingest, bench_pdp_paths);
criterion_main!(benches);
