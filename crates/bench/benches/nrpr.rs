//! NR/PR conflict-analysis cost vs. condition size — the paper bounds the
//! procedure by O(k·n²) where k is the number of DNF conjuncts and n their
//! width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exacml_expr::{analyze_merge, parse_expr};
use std::time::Duration;

fn conjunctive_condition(terms: usize, offset: usize) -> String {
    (0..terms).map(|i| format!("a{i} > {}", i + offset)).collect::<Vec<_>>().join(" AND ")
}

fn disjunctive_condition(clauses: usize) -> String {
    (0..clauses).map(|i| format!("(a > {i} AND b < {})", 100 - i)).collect::<Vec<_>>().join(" OR ")
}

fn bench_nrpr(c: &mut Criterion) {
    let mut group = c.benchmark_group("nrpr_conjunct_width");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for n in [2usize, 4, 8, 16, 32] {
        let policy = parse_expr(&conjunctive_condition(n, 0)).unwrap();
        let user = parse_expr(&conjunctive_condition(n, 1)).unwrap();
        group.bench_with_input(BenchmarkId::new("terms", n), &n, |b, _| {
            b.iter(|| analyze_merge(&policy, &user));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("nrpr_clause_count");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for k in [1usize, 2, 4, 8] {
        let policy = parse_expr(&disjunctive_condition(k)).unwrap();
        let user = parse_expr("a > 50 AND b < 20").unwrap();
        group.bench_with_input(BenchmarkId::new("clauses", k), &k, |b, _| {
            b.iter(|| analyze_merge(&policy, &user));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("expr_pipeline");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    let source = "((a > 20 AND a < 30) OR NOT (a != 40)) AND (NOT (a >= 10) AND b = 20)";
    group.bench_function("parse", |b| b.iter(|| parse_expr(source).unwrap()));
    let parsed = parse_expr(source).unwrap();
    group.bench_function("dnf", |b| b.iter(|| exacml_expr::Dnf::from_expr(&parsed)));
    group.bench_function("simplify", |b| b.iter(|| exacml_expr::simplify(&parsed)));
    group.finish();
}

criterion_group!(benches, bench_nrpr);
criterion_main!(benches);
