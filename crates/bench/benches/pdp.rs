//! PDP evaluation cost vs. number of loaded policies — backs the Figure 7
//! claim that the access-control decision stays under a few milliseconds as
//! the policy store grows from 50 to 1000 policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exacml_plus::StreamPolicyBuilder;
use exacml_xacml::{Pdp, PolicyStore, Request};
use std::sync::Arc;
use std::time::Duration;

fn store_with(n: usize) -> Arc<PolicyStore> {
    let store = Arc::new(PolicyStore::new());
    for i in 0..n {
        let policy = StreamPolicyBuilder::new(format!("p{i}"), "weather")
            .subject(format!("user{i}"))
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate"])
            .build();
        store.add(policy).unwrap();
    }
    store
}

fn bench_pdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdp_evaluate");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for n in [10usize, 50, 100, 500, 1000] {
        let pdp = Pdp::new(store_with(n));
        // The matching policy sits in the middle of the store.
        let request = Request::subscribe(&format!("user{}", n / 2), "weather");
        group.bench_with_input(BenchmarkId::new("policies", n), &n, |b, _| {
            b.iter(|| {
                let response = pdp.evaluate(&request);
                assert!(response.is_permit());
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("policy_xml");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    let policy = StreamPolicyBuilder::new("p", "weather")
        .subject("LTA")
        .filter("rainrate > 5 AND windspeed < 30")
        .visible_attributes(["samplingtime", "rainrate", "windspeed"])
        .build();
    let xml = exacml_xacml::xml::write_policy(&policy);
    group.bench_function("write", |b| b.iter(|| exacml_xacml::xml::write_policy(&policy)));
    group.bench_function("parse", |b| b.iter(|| exacml_xacml::xml::parse_policy(&xml).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_pdp);
criterion_main!(benches);
