//! Query-graph manipulation cost: obligations → graph translation and
//! policy/user graph merging (the "QueryGraph" series of Figure 7).

use criterion::{criterion_group, criterion_main, Criterion};
use exacml_dsms::{AggFunc, AggSpec, QueryGraphBuilder, Schema, WindowSpec};
use exacml_plus::{graph_from_obligations, merge_graphs, obligations_from_graph, MergeOptions};
use std::time::Duration;

fn example_graphs() -> (exacml_dsms::QueryGraph, exacml_dsms::QueryGraph) {
    let policy = QueryGraphBuilder::on_stream("weather")
        .filter_str("rainrate > 5 AND windspeed < 30")
        .unwrap()
        .map(["samplingtime", "rainrate", "windspeed"])
        .aggregate(
            WindowSpec::tuples(5, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
                AggSpec::new("windspeed", AggFunc::Max),
            ],
        )
        .build();
    let user = QueryGraphBuilder::on_stream("weather")
        .filter_str("rainrate > 50")
        .unwrap()
        .map(["samplingtime", "rainrate"])
        .aggregate(
            WindowSpec::tuples(10, 2),
            vec![
                AggSpec::new("samplingtime", AggFunc::LastValue),
                AggSpec::new("rainrate", AggFunc::Avg),
            ],
        )
        .build();
    (policy, user)
}

fn bench_merge(c: &mut Criterion) {
    let (policy, user) = example_graphs();
    let obligations = obligations_from_graph(&policy);
    let schema = Schema::weather_example();

    let mut group = c.benchmark_group("query_graph");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    group.bench_function("obligations_to_graph", |b| {
        b.iter(|| graph_from_obligations("weather", &obligations).unwrap());
    });
    group.bench_function("merge_with_simplify", |b| {
        b.iter(|| merge_graphs(&policy, &user, MergeOptions::default()).unwrap());
    });
    group.bench_function("merge_concatenate_only", |b| {
        b.iter(|| {
            merge_graphs(
                &policy,
                &user,
                MergeOptions { simplify_filters: false, ..MergeOptions::default() },
            )
            .unwrap()
        });
    });
    group.bench_function("streamsql_generate", |b| {
        b.iter(|| exacml_dsms::streamsql::generate(&policy, &schema));
    });
    let sql = exacml_dsms::streamsql::generate(&policy, &schema);
    group.bench_function("streamsql_parse", |b| {
        b.iter(|| exacml_dsms::streamsql::parse(&sql).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
