//! Policies, targets, rules and combining algorithms.

use crate::attribute::AttributeCategory;
use crate::obligation::Obligation;
use crate::request::Request;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The effect of a rule or decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// Access granted.
    Permit,
    /// Access denied.
    Deny,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Permit => f.write_str("Permit"),
            Effect::Deny => f.write_str("Deny"),
        }
    }
}

impl Effect {
    /// Parse the XACML effect keyword.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Effect> {
        match s.trim() {
            "Permit" | "permit" => Some(Effect::Permit),
            "Deny" | "deny" => Some(Effect::Deny),
            _ => None,
        }
    }
}

/// One attribute matcher of a target: the request must carry an attribute of
/// the given category and id whose textual value equals `value`
/// (`string-equal` semantics — the only match function the framework needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeMatch {
    /// The category the attribute must appear in.
    pub category: AttributeCategory,
    /// The attribute identifier.
    pub attribute_id: String,
    /// The value to compare against (string-equal).
    pub value: String,
}

impl AttributeMatch {
    /// Construct a matcher.
    pub fn new(
        category: AttributeCategory,
        attribute_id: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        AttributeMatch { category, attribute_id: attribute_id.into(), value: value.into() }
    }

    /// Whether the request satisfies the matcher.
    #[must_use]
    pub fn matches(&self, request: &Request) -> bool {
        request.values_of(self.category, &self.attribute_id).iter().any(|v| v.text == self.value)
    }
}

/// A target: the conjunction of attribute matchers that decides whether a
/// policy or rule applies to a request. An empty target applies to every
/// request.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Target {
    /// All matchers; every one must be satisfied.
    pub matches: Vec<AttributeMatch>,
}

impl Target {
    /// A target that applies to every request.
    #[must_use]
    pub fn any() -> Self {
        Target { matches: Vec::new() }
    }

    /// Build a target from matchers.
    #[must_use]
    pub fn new(matches: Vec<AttributeMatch>) -> Self {
        Target { matches }
    }

    /// The common subject/resource/action target used by the framework: the
    /// named subject asking for the named stream with the named action.
    #[must_use]
    pub fn subject_resource_action(subject: &str, resource: &str, action: &str) -> Self {
        use crate::request::ids;
        Target::new(vec![
            AttributeMatch::new(AttributeCategory::Subject, ids::SUBJECT_ID, subject),
            AttributeMatch::new(AttributeCategory::Resource, ids::RESOURCE_ID, resource),
            AttributeMatch::new(AttributeCategory::Action, ids::ACTION_ID, action),
        ])
    }

    /// Whether the request satisfies every matcher.
    #[must_use]
    pub fn matches(&self, request: &Request) -> bool {
        self.matches.iter().all(|m| m.matches(request))
    }
}

/// A rule inside a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule identifier.
    pub id: String,
    /// The effect the rule produces when it applies.
    pub effect: Effect,
    /// The rule's own target (evaluated after the policy target).
    pub target: Target,
}

impl Rule {
    /// A permit rule applying to every request that reached the policy.
    pub fn permit_all(id: impl Into<String>) -> Self {
        Rule { id: id.into(), effect: Effect::Permit, target: Target::any() }
    }

    /// A deny rule applying to every request that reached the policy.
    pub fn deny_all(id: impl Into<String>) -> Self {
        Rule { id: id.into(), effect: Effect::Deny, target: Target::any() }
    }
}

/// Rule combining algorithms (within one policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RuleCombiningAlg {
    /// The first rule whose target matches decides.
    #[default]
    FirstApplicable,
    /// Any matching Permit rule wins over Deny rules.
    PermitOverrides,
    /// Any matching Deny rule wins over Permit rules.
    DenyOverrides,
}

impl RuleCombiningAlg {
    /// The URN used in XACML policy documents.
    #[must_use]
    pub fn urn(self) -> &'static str {
        match self {
            RuleCombiningAlg::FirstApplicable => {
                "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"
            }
            RuleCombiningAlg::PermitOverrides => {
                "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides"
            }
            RuleCombiningAlg::DenyOverrides => {
                "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:deny-overrides"
            }
        }
    }

    /// Parse the URN (or a short alias).
    #[must_use]
    pub fn from_urn(urn: &str) -> Option<RuleCombiningAlg> {
        let tail = urn.rsplit(':').next().unwrap_or(urn);
        match tail {
            "first-applicable" => Some(RuleCombiningAlg::FirstApplicable),
            "permit-overrides" => Some(RuleCombiningAlg::PermitOverrides),
            "deny-overrides" => Some(RuleCombiningAlg::DenyOverrides),
            _ => None,
        }
    }
}

/// Policy combining algorithms (across policies in the PDP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PolicyCombiningAlg {
    /// The first policy whose target matches decides.
    #[default]
    FirstApplicable,
    /// A Permit from any matching policy wins.
    PermitOverrides,
    /// A Deny from any matching policy wins.
    DenyOverrides,
}

/// An access-control policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Policy identifier (unique within the store).
    pub id: String,
    /// Free-form description.
    pub description: String,
    /// The policy's target.
    pub target: Target,
    /// The policy's rules.
    pub rules: Vec<Rule>,
    /// How the rules are combined.
    pub rule_combining: RuleCombiningAlg,
    /// The obligations returned alongside a matching decision.
    pub obligations: Vec<Obligation>,
}

impl Policy {
    /// A new policy with no rules and no obligations.
    pub fn new(id: impl Into<String>) -> Self {
        Policy {
            id: id.into(),
            description: String::new(),
            target: Target::any(),
            rules: Vec::new(),
            rule_combining: RuleCombiningAlg::FirstApplicable,
            obligations: Vec::new(),
        }
    }

    /// Set the description (builder style).
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Set the target (builder style).
    #[must_use]
    pub fn with_target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Append a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Set the rule combining algorithm (builder style).
    #[must_use]
    pub fn with_rule_combining(mut self, alg: RuleCombiningAlg) -> Self {
        self.rule_combining = alg;
        self
    }

    /// Append an obligation (builder style).
    #[must_use]
    pub fn with_obligation(mut self, obligation: Obligation) -> Self {
        self.obligations.push(obligation);
        self
    }

    /// Structural validation: non-empty id, at least one rule, no duplicate
    /// rule ids.
    ///
    /// # Errors
    /// Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.id.trim().is_empty() {
            return Err("policy id is empty".into());
        }
        if self.rules.is_empty() {
            return Err("policy has no rules".into());
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.id.trim().is_empty() {
                return Err(format!("rule #{i} has an empty id"));
            }
            if self.rules[..i].iter().any(|r| r.id == rule.id) {
                return Err(format!("duplicate rule id '{}'", rule.id));
            }
        }
        Ok(())
    }

    /// Evaluate the policy against a request: `None` when the policy's
    /// target does not match (Not Applicable), otherwise the combined effect
    /// of the matching rules.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> Option<Effect> {
        if !self.target.matches(request) {
            return None;
        }
        let applicable = self.rules.iter().filter(|r| r.target.matches(request)).map(|r| r.effect);
        match self.rule_combining {
            RuleCombiningAlg::FirstApplicable => applicable.clone().next(),
            RuleCombiningAlg::PermitOverrides => {
                let effects: Vec<Effect> = applicable.collect();
                if effects.contains(&Effect::Permit) {
                    Some(Effect::Permit)
                } else if effects.contains(&Effect::Deny) {
                    Some(Effect::Deny)
                } else {
                    None
                }
            }
            RuleCombiningAlg::DenyOverrides => {
                let effects: Vec<Effect> = applicable.collect();
                if effects.contains(&Effect::Deny) {
                    Some(Effect::Deny)
                } else if effects.contains(&Effect::Permit) {
                    Some(Effect::Permit)
                } else {
                    None
                }
            }
        }
    }

    /// The obligations that accompany a decision with the given effect.
    #[must_use]
    pub fn obligations_for(&self, effect: Effect) -> Vec<Obligation> {
        self.obligations.iter().filter(|o| o.fulfill_on == effect).cloned().collect()
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Policy[{}, {} rules, {} obligations]",
            self.id,
            self.rules.len(),
            self.obligations.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeValue;
    use crate::request::ids;

    fn lta_policy() -> Policy {
        Policy::new("nea-weather-for-lta")
            .with_description("NEA weather data for the LTA warning system")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::permit_all("permit"))
    }

    #[test]
    fn target_matching() {
        let policy = lta_policy();
        assert_eq!(policy.evaluate(&Request::subscribe("LTA", "weather")), Some(Effect::Permit));
        assert_eq!(policy.evaluate(&Request::subscribe("LTA", "gps")), None);
        assert_eq!(policy.evaluate(&Request::subscribe("NEA", "weather")), None);
        // Extra attributes do not disturb matching.
        let req = Request::subscribe("LTA", "weather")
            .with_subject(ids::SUBJECT_ROLE, AttributeValue::string("agency"));
        assert_eq!(policy.evaluate(&req), Some(Effect::Permit));
    }

    #[test]
    fn empty_target_matches_everything() {
        let policy = Policy::new("open").with_rule(Rule::permit_all("p"));
        assert_eq!(policy.evaluate(&Request::new()), Some(Effect::Permit));
        assert_eq!(
            policy.evaluate(&Request::subscribe("anyone", "anything")),
            Some(Effect::Permit)
        );
    }

    #[test]
    fn rule_combining_algorithms() {
        let base = Policy::new("p")
            .with_rule(Rule::deny_all("deny"))
            .with_rule(Rule::permit_all("permit"));
        let req = Request::new();

        let first = base.clone().with_rule_combining(RuleCombiningAlg::FirstApplicable);
        assert_eq!(first.evaluate(&req), Some(Effect::Deny));

        let permit_overrides = base.clone().with_rule_combining(RuleCombiningAlg::PermitOverrides);
        assert_eq!(permit_overrides.evaluate(&req), Some(Effect::Permit));

        let deny_overrides = base.with_rule_combining(RuleCombiningAlg::DenyOverrides);
        assert_eq!(deny_overrides.evaluate(&req), Some(Effect::Deny));
    }

    #[test]
    fn rules_with_non_matching_targets_are_skipped() {
        let policy = Policy::new("p")
            .with_rule(Rule {
                id: "only-lta".into(),
                effect: Effect::Permit,
                target: Target::new(vec![AttributeMatch::new(
                    AttributeCategory::Subject,
                    ids::SUBJECT_ID,
                    "LTA",
                )]),
            })
            .with_rule(Rule::deny_all("fallback"));
        assert_eq!(policy.evaluate(&Request::subscribe("LTA", "x")), Some(Effect::Permit));
        assert_eq!(policy.evaluate(&Request::subscribe("EMA", "x")), Some(Effect::Deny));
    }

    #[test]
    fn obligations_filtered_by_effect() {
        let policy = lta_policy()
            .with_obligation(Obligation::on_permit("exacml:obligation:stream-filter"))
            .with_obligation(Obligation::on_deny("audit-denied"));
        assert_eq!(policy.obligations_for(Effect::Permit).len(), 1);
        assert_eq!(policy.obligations_for(Effect::Deny).len(), 1);
        assert_eq!(policy.obligations_for(Effect::Permit)[0].id, "exacml:obligation:stream-filter");
    }

    #[test]
    fn validation() {
        assert!(lta_policy().validate().is_ok());
        assert!(Policy::new("").with_rule(Rule::permit_all("r")).validate().is_err());
        assert!(Policy::new("p").validate().is_err());
        let dup = Policy::new("p").with_rule(Rule::permit_all("r")).with_rule(Rule::deny_all("r"));
        assert!(dup.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn combining_urns_round_trip() {
        for alg in [
            RuleCombiningAlg::FirstApplicable,
            RuleCombiningAlg::PermitOverrides,
            RuleCombiningAlg::DenyOverrides,
        ] {
            assert_eq!(RuleCombiningAlg::from_urn(alg.urn()), Some(alg));
        }
        assert_eq!(RuleCombiningAlg::from_urn("bogus"), None);
    }

    #[test]
    fn effect_parsing() {
        assert_eq!(Effect::from_str_opt("Permit"), Some(Effect::Permit));
        assert_eq!(Effect::from_str_opt("deny"), Some(Effect::Deny));
        assert_eq!(Effect::from_str_opt("maybe"), None);
    }
}
