//! XML serialization of policies and requests.
//!
//! The paper's prototype stores policies and requests as XACML XML documents
//! (Figure 2 shows the obligations portion of one). This module provides a
//! small, dependency-free XML reader/writer sufficient for those documents:
//!
//! * [`XmlElement`] — a generic element tree with attributes and text,
//! * [`parse_document`] — a strict, non-validating parser (no namespaces,
//!   no DTDs; supports comments, the XML declaration, entity escapes and
//!   self-closing tags),
//! * [`write_policy`] / [`parse_policy`] — Policy documents,
//! * [`write_request`] / [`parse_request`] — Request documents.

use crate::attribute::{AttributeCategory, AttributeValue, XmlDataType};
use crate::error::XacmlError;
use crate::obligation::{AttributeAssignment, Obligation};
use crate::policy::{AttributeMatch, Effect, Policy, Rule, RuleCombiningAlg, Target};
use crate::request::Request;

/// A generic XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlElement {
    /// Element name.
    pub name: String,
    /// Attributes, in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements, in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

impl XmlElement {
    /// A new element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement { name: name.into(), ..Default::default() }
    }

    /// Add an attribute (builder style).
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Add a child element (builder style).
    #[must_use]
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// Set the text content (builder style).
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Value of an attribute by name.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All children with the given element name.
    #[must_use]
    pub fn children_named(&self, name: &str) -> Vec<&XmlElement> {
        self.children.iter().filter(|c| c.name == name).collect()
    }

    /// The first child with the given element name.
    #[must_use]
    pub fn first_child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Serialize to pretty-printed XML (two-space indentation).
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (name, value) in &self.attributes {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if self.children.is_empty() {
            out.push_str(&escape(&self.text));
            out.push_str("</");
            out.push_str(&self.name);
            out.push_str(">\n");
            return;
        }
        out.push('\n');
        if !self.text.is_empty() {
            out.push_str(&"  ".repeat(indent + 1));
            out.push_str(&escape(&self.text));
            out.push('\n');
        }
        for child in &self.children {
            child.write_into(out, indent + 1);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escape the five predefined XML entities.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Undo [`escape`].
#[must_use]
pub fn unescape(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parse an XML document into its root element.
///
/// # Errors
/// Returns [`XacmlError::XmlParse`] describing the first problem found.
pub fn parse_document(input: &str) -> Result<XmlElement, XacmlError> {
    let mut parser = XmlParser { input: input.as_bytes(), pos: 0 };
    parser.skip_prolog();
    let root = parser.parse_element()?;
    parser.skip_whitespace_and_comments();
    if parser.pos < parser.input.len() {
        return Err(XacmlError::XmlParse {
            position: parser.pos,
            detail: "trailing content after the root element".into(),
        });
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl XmlParser<'_> {
    fn err(&self, detail: impl Into<String>) -> XacmlError {
        XacmlError::XmlParse { position: self.pos, detail: detail.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match find_from(self.input, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn skip_prolog(&mut self) {
        loop {
            self.skip_whitespace_and_comments();
            if self.starts_with("<?") {
                match find_from(self.input, self.pos + 2, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else if self.starts_with("<!DOCTYPE") {
                match find_from(self.input, self.pos, ">") {
                    Some(end) => self.pos = end + 1,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XacmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let c = c as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlElement, XacmlError> {
        self.skip_whitespace_and_comments();
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name.clone());

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("expected '=' after attribute '{attr_name}'")));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = self.peek().ok_or_else(|| self.err("unexpected end of input"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected a quoted attribute value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().map(|c| c != quote).unwrap_or(false) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = unescape(&String::from_utf8_lossy(&self.input[start..self.pos]));
                    self.pos += 1;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.err("unexpected end of input inside a tag")),
            }
        }

        // Content: text, children, comments, until the closing tag.
        loop {
            // Accumulate text up to the next '<'.
            let start = self.pos;
            while self.peek().map(|c| c != b'<').unwrap_or(false) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = String::from_utf8_lossy(&self.input[start..self.pos]);
                let trimmed = chunk.trim();
                if !trimmed.is_empty() {
                    if !element.text.is_empty() {
                        element.text.push(' ');
                    }
                    element.text.push_str(&unescape(trimmed));
                }
            }
            if self.peek().is_none() {
                return Err(self.err(format!("missing closing tag for <{name}>")));
            }
            if self.starts_with("<!--") {
                match find_from(self.input, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let closing = self.parse_name()?;
                if closing != name {
                    return Err(
                        self.err(format!("mismatched closing tag </{closing}> for <{name}>"))
                    );
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            let child = self.parse_element()?;
            element.children.push(child);
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let needle = needle.as_bytes();
    if from >= haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|i| i + from)
}

// ---------------------------------------------------------------------------
// Policy documents
// ---------------------------------------------------------------------------

fn target_to_xml(target: &Target) -> XmlElement {
    let mut el = XmlElement::new("Target");
    for (category, outer, inner, match_name) in [
        (AttributeCategory::Subject, "Subjects", "Subject", "SubjectMatch"),
        (AttributeCategory::Resource, "Resources", "Resource", "ResourceMatch"),
        (AttributeCategory::Action, "Actions", "Action", "ActionMatch"),
        (AttributeCategory::Environment, "Environments", "Environment", "EnvironmentMatch"),
    ] {
        let matches: Vec<&AttributeMatch> =
            target.matches.iter().filter(|m| m.category == category).collect();
        if matches.is_empty() {
            continue;
        }
        let mut inner_el = XmlElement::new(inner);
        for m in matches {
            inner_el = inner_el.child(
                XmlElement::new(match_name)
                    .attr("MatchId", "urn:oasis:names:tc:xacml:1.0:function:string-equal")
                    .attr("AttributeId", m.attribute_id.clone())
                    .with_text(m.value.clone()),
            );
        }
        el = el.child(XmlElement::new(outer).child(inner_el));
    }
    el
}

fn target_from_xml(el: &XmlElement) -> Result<Target, XacmlError> {
    let mut matches = Vec::new();
    for (category, outer, inner, match_name) in [
        (AttributeCategory::Subject, "Subjects", "Subject", "SubjectMatch"),
        (AttributeCategory::Resource, "Resources", "Resource", "ResourceMatch"),
        (AttributeCategory::Action, "Actions", "Action", "ActionMatch"),
        (AttributeCategory::Environment, "Environments", "Environment", "EnvironmentMatch"),
    ] {
        for outer_el in el.children_named(outer) {
            for inner_el in outer_el.children_named(inner) {
                for m in inner_el.children_named(match_name) {
                    let attribute_id = m.attribute("AttributeId").ok_or_else(|| {
                        XacmlError::XmlStructure(format!("{match_name} missing AttributeId"))
                    })?;
                    matches.push(AttributeMatch::new(category, attribute_id, m.text.clone()));
                }
            }
        }
    }
    Ok(Target::new(matches))
}

fn obligation_to_xml(obligation: &Obligation) -> XmlElement {
    let mut el = XmlElement::new("Obligation")
        .attr("ObligationId", obligation.id.clone())
        .attr("FulfillOn", obligation.fulfill_on.to_string());
    for a in &obligation.assignments {
        el = el.child(
            XmlElement::new("AttributeAssignment")
                .attr("AttributeId", a.attribute_id.clone())
                .attr("DataType", a.value.data_type.uri())
                .with_text(a.value.text.clone()),
        );
    }
    el
}

fn obligation_from_xml(el: &XmlElement) -> Result<Obligation, XacmlError> {
    let id = el
        .attribute("ObligationId")
        .ok_or_else(|| XacmlError::XmlStructure("Obligation missing ObligationId".into()))?;
    let fulfill_on = el
        .attribute("FulfillOn")
        .and_then(Effect::from_str_opt)
        .ok_or_else(|| XacmlError::XmlStructure("Obligation missing/invalid FulfillOn".into()))?;
    let mut obligation = Obligation { id: id.to_string(), fulfill_on, assignments: Vec::new() };
    for a in el.children_named("AttributeAssignment") {
        let attribute_id = a.attribute("AttributeId").ok_or_else(|| {
            XacmlError::XmlStructure("AttributeAssignment missing AttributeId".into())
        })?;
        let data_type = a
            .attribute("DataType")
            .map(|uri| {
                XmlDataType::from_uri(uri)
                    .ok_or_else(|| XacmlError::UnknownDataType(uri.to_string()))
            })
            .transpose()?
            .unwrap_or(XmlDataType::String);
        obligation.assignments.push(AttributeAssignment::new(
            attribute_id,
            AttributeValue { data_type, text: a.text.clone() },
        ));
    }
    Ok(obligation)
}

/// Serialize a policy to an XML document.
#[must_use]
pub fn write_policy(policy: &Policy) -> String {
    let mut root = XmlElement::new("Policy")
        .attr("PolicyId", policy.id.clone())
        .attr("RuleCombiningAlgId", policy.rule_combining.urn());
    if !policy.description.is_empty() {
        root = root.child(XmlElement::new("Description").with_text(policy.description.clone()));
    }
    root = root.child(target_to_xml(&policy.target));
    for rule in &policy.rules {
        let mut rule_el = XmlElement::new("Rule")
            .attr("RuleId", rule.id.clone())
            .attr("Effect", rule.effect.to_string());
        if !rule.target.matches.is_empty() {
            rule_el = rule_el.child(target_to_xml(&rule.target));
        }
        root = root.child(rule_el);
    }
    if !policy.obligations.is_empty() {
        let mut obligations = XmlElement::new("Obligations");
        for o in &policy.obligations {
            obligations = obligations.child(obligation_to_xml(o));
        }
        root = root.child(obligations);
    }
    format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}", root.to_xml())
}

/// Parse a policy from an XML document produced by [`write_policy`]
/// (or an equivalent hand-written document).
///
/// # Errors
/// Returns [`XacmlError`] on XML or structural problems.
pub fn parse_policy(xml: &str) -> Result<Policy, XacmlError> {
    let root = parse_document(xml)?;
    if root.name != "Policy" {
        return Err(XacmlError::XmlStructure(format!("expected <Policy>, found <{}>", root.name)));
    }
    let id = root
        .attribute("PolicyId")
        .ok_or_else(|| XacmlError::XmlStructure("Policy missing PolicyId".into()))?
        .to_string();
    let rule_combining = root
        .attribute("RuleCombiningAlgId")
        .and_then(RuleCombiningAlg::from_urn)
        .unwrap_or_default();
    let description = root.first_child("Description").map(|d| d.text.clone()).unwrap_or_default();
    let target = match root.first_child("Target") {
        Some(t) => target_from_xml(t)?,
        None => Target::any(),
    };
    let mut rules = Vec::new();
    for rule_el in root.children_named("Rule") {
        let rule_id = rule_el
            .attribute("RuleId")
            .ok_or_else(|| XacmlError::XmlStructure("Rule missing RuleId".into()))?;
        let effect = rule_el
            .attribute("Effect")
            .and_then(Effect::from_str_opt)
            .ok_or_else(|| XacmlError::XmlStructure("Rule missing/invalid Effect".into()))?;
        let rule_target = match rule_el.first_child("Target") {
            Some(t) => target_from_xml(t)?,
            None => Target::any(),
        };
        rules.push(Rule { id: rule_id.to_string(), effect, target: rule_target });
    }
    let mut obligations = Vec::new();
    if let Some(obs) = root.first_child("Obligations") {
        for o in obs.children_named("Obligation") {
            obligations.push(obligation_from_xml(o)?);
        }
    }
    let policy = Policy { id: id.clone(), description, target, rules, rule_combining, obligations };
    policy.validate().map_err(|detail| XacmlError::InvalidPolicy { policy_id: id, detail })?;
    Ok(policy)
}

// ---------------------------------------------------------------------------
// Request documents
// ---------------------------------------------------------------------------

/// Serialize a request to an XML document.
#[must_use]
pub fn write_request(request: &Request) -> String {
    let mut root = XmlElement::new("Request");
    for category in AttributeCategory::all() {
        let attrs: Vec<_> = request.attributes.iter().filter(|a| a.category == category).collect();
        if attrs.is_empty() {
            continue;
        }
        let mut cat_el = XmlElement::new(category.element_name());
        for a in attrs {
            cat_el = cat_el.child(
                XmlElement::new("Attribute")
                    .attr("AttributeId", a.attribute_id.clone())
                    .attr("DataType", a.value.data_type.uri())
                    .child(XmlElement::new("AttributeValue").with_text(a.value.text.clone())),
            );
        }
        root = root.child(cat_el);
    }
    format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}", root.to_xml())
}

/// Parse a request from an XML document produced by [`write_request`].
///
/// # Errors
/// Returns [`XacmlError`] on XML or structural problems.
pub fn parse_request(xml: &str) -> Result<Request, XacmlError> {
    let root = parse_document(xml)?;
    if root.name != "Request" {
        return Err(XacmlError::XmlStructure(format!("expected <Request>, found <{}>", root.name)));
    }
    let mut request = Request::new();
    for cat_el in &root.children {
        let Some(category) = AttributeCategory::from_element_name(&cat_el.name) else {
            return Err(XacmlError::XmlStructure(format!(
                "unexpected element <{}> inside <Request>",
                cat_el.name
            )));
        };
        for attr_el in cat_el.children_named("Attribute") {
            let attribute_id = attr_el
                .attribute("AttributeId")
                .ok_or_else(|| XacmlError::XmlStructure("Attribute missing AttributeId".into()))?;
            let data_type = attr_el
                .attribute("DataType")
                .map(|uri| {
                    XmlDataType::from_uri(uri)
                        .ok_or_else(|| XacmlError::UnknownDataType(uri.to_string()))
                })
                .transpose()?
                .unwrap_or(XmlDataType::String);
            let text = attr_el
                .first_child("AttributeValue")
                .map(|v| v.text.clone())
                .unwrap_or_else(|| attr_el.text.clone());
            request =
                request.with_attribute(category, attribute_id, AttributeValue { data_type, text });
        }
    }
    request.validate().map_err(XacmlError::InvalidRequest)?;
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ids;

    #[test]
    fn element_builder_and_serialization() {
        let el = XmlElement::new("A")
            .attr("x", "1")
            .child(XmlElement::new("B").with_text("hello <world>"))
            .child(XmlElement::new("C"));
        let xml = el.to_xml();
        assert!(xml.contains("<A x=\"1\">"));
        assert!(xml.contains("<B>hello &lt;world&gt;</B>"));
        assert!(xml.contains("<C/>"));
        assert!(xml.trim_end().ends_with("</A>"));
    }

    #[test]
    fn parse_simple_document() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <Root a="1" b='two'>
              text
              <Child/>
              <Child key="v&amp;v">nested</Child>
            </Root>"#;
        let root = parse_document(doc).unwrap();
        assert_eq!(root.name, "Root");
        assert_eq!(root.attribute("a"), Some("1"));
        assert_eq!(root.attribute("b"), Some("two"));
        assert_eq!(root.text, "text");
        assert_eq!(root.children_named("Child").len(), 2);
        assert_eq!(root.children_named("Child")[1].attribute("key"), Some("v&v"));
        assert_eq!(root.children_named("Child")[1].text, "nested");
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse_document("<A><B></A>"), Err(XacmlError::XmlParse { .. })));
        assert!(matches!(parse_document("<A>"), Err(XacmlError::XmlParse { .. })));
        assert!(matches!(parse_document("<A></A><B/>"), Err(XacmlError::XmlParse { .. })));
        assert!(matches!(parse_document("<A x=1></A>"), Err(XacmlError::XmlParse { .. })));
        assert!(matches!(parse_document("no xml at all"), Err(XacmlError::XmlParse { .. })));
    }

    #[test]
    fn escape_round_trip() {
        let s = "a < b && c > 'd' \"e\"";
        assert_eq!(unescape(&escape(s)), s);
    }

    fn sample_policy() -> Policy {
        Policy::new("nea-weather-for-lta")
            .with_description("NEA weather for LTA")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::permit_all("permit"))
            .with_obligation(
                Obligation::on_permit("exacml:obligation:stream-filter")
                    .with_string("pCloud:obligation:stream-filter-condition-id", "rainrate > 5"),
            )
            .with_obligation(
                Obligation::on_permit("exacml:obligation:stream-window")
                    .with_integer("pCloud:obligation:stream-window-step-id", 2)
                    .with_integer("pCloud:obligation:stream-window-size-id", 5)
                    .with_string("pCloud:obligation:stream-window-type-id", "tuple")
                    .with_string("pCloud:obligation:stream-window-attr-id", "rainrate:avg"),
            )
    }

    #[test]
    fn policy_round_trip() {
        let policy = sample_policy();
        let xml = write_policy(&policy);
        assert!(xml.contains("ObligationId=\"exacml:obligation:stream-filter\""));
        assert!(xml.contains("FulfillOn=\"Permit\""));
        assert!(xml.contains("rainrate &gt; 5"));
        let parsed = parse_policy(&xml).unwrap();
        assert_eq!(parsed, policy);
    }

    #[test]
    fn policy_round_trip_preserves_figure2_structure() {
        let xml = write_policy(&sample_policy());
        let parsed = parse_policy(&xml).unwrap();
        let window =
            parsed.obligations.iter().find(|o| o.id == "exacml:obligation:stream-window").unwrap();
        assert_eq!(window.first_integer("pCloud:obligation:stream-window-size-id"), Some(5));
        assert_eq!(window.first_integer("pCloud:obligation:stream-window-step-id"), Some(2));
        assert_eq!(window.first_text("pCloud:obligation:stream-window-type-id"), Some("tuple"));
        assert_eq!(
            window.first_text("pCloud:obligation:stream-window-attr-id"),
            Some("rainrate:avg")
        );
    }

    #[test]
    fn parse_policy_rejects_bad_documents() {
        assert!(matches!(parse_policy("<NotAPolicy/>"), Err(XacmlError::XmlStructure(_))));
        assert!(matches!(
            parse_policy("<Policy><Rule RuleId=\"r\" Effect=\"Permit\"/></Policy>"),
            Err(XacmlError::XmlStructure(_))
        ));
        // Valid XML but no rules → invalid policy.
        assert!(matches!(
            parse_policy("<Policy PolicyId=\"p\"></Policy>"),
            Err(XacmlError::InvalidPolicy { .. })
        ));
    }

    #[test]
    fn request_round_trip() {
        let request = Request::subscribe("LTA", "weather")
            .with_subject(ids::SUBJECT_ROLE, AttributeValue::string("agency"));
        let xml = write_request(&request);
        assert!(xml.contains("<Subject>"));
        assert!(xml.contains("<Resource>"));
        assert!(xml.contains("<Action>"));
        let parsed = parse_request(&xml).unwrap();
        // Serialization groups attributes by category, so compare contents
        // rather than the original insertion order.
        assert_eq!(parsed.attributes.len(), request.attributes.len());
        for attr in &request.attributes {
            assert!(parsed.attributes.contains(attr), "missing {attr:?}");
        }
        assert_eq!(parsed.subject_id(), Some("LTA"));
        assert_eq!(parsed.resource_id(), Some("weather"));
    }

    #[test]
    fn parse_request_rejects_bad_documents() {
        assert!(matches!(parse_request("<Policy/>"), Err(XacmlError::XmlStructure(_))));
        assert!(matches!(
            parse_request("<Request><Bogus/></Request>"),
            Err(XacmlError::XmlStructure(_))
        ));
        assert!(matches!(
            parse_request(
                "<Request><Subject><Attribute DataType=\"x#string\"/></Subject></Request>"
            ),
            Err(XacmlError::XmlStructure(_))
        ));
    }

    #[test]
    fn parsed_policy_evaluates_like_original() {
        use crate::pdp::{Pdp, PolicyStore};
        use std::sync::Arc;
        let xml = write_policy(&sample_policy());
        let parsed = parse_policy(&xml).unwrap();
        let store = Arc::new(PolicyStore::new());
        store.add(parsed).unwrap();
        let pdp = Pdp::new(store);
        let response = pdp.evaluate(&Request::subscribe("LTA", "weather"));
        assert!(response.is_permit());
        assert_eq!(response.obligations.len(), 2);
        assert_eq!(
            pdp.evaluate(&Request::subscribe("EMA", "weather")).decision,
            crate::pdp::Decision::NotApplicable
        );
    }
}
