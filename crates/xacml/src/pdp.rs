//! Policy store and Policy Decision Point.
//!
//! The PDP "manages policies and evaluates user requests against the stored
//! policies, the result of which are permit or deny decisions" together with
//! the obligations of the matching policy (Section 2.1). The store supports
//! the add / remove / update operations the query-graph management layer of
//! eXACML+ reacts to (Section 3.3).

use crate::obligation::Obligation;
use crate::policy::{Effect, Policy, PolicyCombiningAlg};
use crate::request::Request;
use crate::XacmlError;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The final decision returned to the PEP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Access granted.
    Permit,
    /// Access explicitly denied.
    Deny,
    /// No policy applied to the request.
    NotApplicable,
    /// The evaluation could not be completed.
    Indeterminate,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Permit => "Permit",
            Decision::Deny => "Deny",
            Decision::NotApplicable => "NotApplicable",
            Decision::Indeterminate => "Indeterminate",
        };
        f.write_str(s)
    }
}

/// The PDP's answer: a decision, the obligations the PEP must fulfil, and the
/// id of the policy that produced the decision (used by eXACML+ to associate
/// deployed query graphs with their spawning policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionResponse {
    /// The decision.
    pub decision: Decision,
    /// Obligations attached to the decision.
    pub obligations: Vec<Obligation>,
    /// Id of the policy that decided, when one did.
    pub policy_id: Option<String>,
}

impl DecisionResponse {
    /// A Not-Applicable response with no obligations.
    #[must_use]
    pub fn not_applicable() -> Self {
        DecisionResponse {
            decision: Decision::NotApplicable,
            obligations: Vec::new(),
            policy_id: None,
        }
    }

    /// Whether access was granted.
    #[must_use]
    pub fn is_permit(&self) -> bool {
        self.decision == Decision::Permit
    }
}

/// A thread-safe, insertion-ordered policy store.
#[derive(Debug, Default)]
pub struct PolicyStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Insertion order of policy ids (first-applicable combining is order
    /// dependent, and the evaluation workload loads policies sequentially).
    order: Vec<String>,
    policies: HashMap<String, Policy>,
}

impl PolicyStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// Load (add) a policy.
    ///
    /// # Errors
    /// Fails when a policy with the same id exists or the policy is invalid.
    pub fn add(&self, policy: Policy) -> Result<(), XacmlError> {
        policy
            .validate()
            .map_err(|detail| XacmlError::InvalidPolicy { policy_id: policy.id.clone(), detail })?;
        let mut inner = self.inner.write();
        if inner.policies.contains_key(&policy.id) {
            return Err(XacmlError::PolicyAlreadyExists(policy.id));
        }
        inner.order.push(policy.id.clone());
        inner.policies.insert(policy.id.clone(), policy);
        Ok(())
    }

    /// Replace an existing policy (keeps its position in the evaluation
    /// order). This is the "policy modified by the owner" event of
    /// Section 3.3.
    ///
    /// # Errors
    /// Fails when no policy with this id exists or the new document is
    /// invalid.
    pub fn update(&self, policy: Policy) -> Result<(), XacmlError> {
        policy
            .validate()
            .map_err(|detail| XacmlError::InvalidPolicy { policy_id: policy.id.clone(), detail })?;
        let mut inner = self.inner.write();
        if !inner.policies.contains_key(&policy.id) {
            return Err(XacmlError::UnknownPolicy(policy.id));
        }
        inner.policies.insert(policy.id.clone(), policy);
        Ok(())
    }

    /// Remove a policy. This is the "policy removed by the owner" event of
    /// Section 3.3.
    ///
    /// # Errors
    /// Fails when no policy with this id exists.
    pub fn remove(&self, policy_id: &str) -> Result<Policy, XacmlError> {
        let mut inner = self.inner.write();
        let policy = inner
            .policies
            .remove(policy_id)
            .ok_or_else(|| XacmlError::UnknownPolicy(policy_id.to_string()))?;
        inner.order.retain(|id| id != policy_id);
        Ok(policy)
    }

    /// Fetch a policy by id.
    #[must_use]
    pub fn get(&self, policy_id: &str) -> Option<Policy> {
        self.inner.read().policies.get(policy_id).cloned()
    }

    /// Whether a policy with this id is loaded.
    #[must_use]
    pub fn contains(&self, policy_id: &str) -> bool {
        self.inner.read().policies.contains_key(policy_id)
    }

    /// Number of loaded policies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().policies.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Policy ids in evaluation order.
    #[must_use]
    pub fn ids(&self) -> Vec<String> {
        self.inner.read().order.clone()
    }

    /// Snapshot of the policies in evaluation order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Policy> {
        let inner = self.inner.read();
        inner.order.iter().filter_map(|id| inner.policies.get(id).cloned()).collect()
    }

    /// Visit every policy in evaluation order without cloning, stopping when
    /// the visitor returns `Some`. This is the hot path of PDP evaluation —
    /// the evaluation workload holds a thousand policies and the paper's
    /// scalability claim depends on the per-request PDP cost staying flat.
    pub fn scan<R>(&self, mut visitor: impl FnMut(&Policy) -> Option<R>) -> Option<R> {
        let inner = self.inner.read();
        for id in &inner.order {
            if let Some(policy) = inner.policies.get(id) {
                if let Some(result) = visitor(policy) {
                    return Some(result);
                }
            }
        }
        None
    }
}

/// The Policy Decision Point.
#[derive(Debug, Clone)]
pub struct Pdp {
    store: Arc<PolicyStore>,
    combining: PolicyCombiningAlg,
}

impl Pdp {
    /// A PDP over a shared policy store with first-applicable combining
    /// (the behaviour of the paper's prototype, whose workload generates a
    /// dedicated policy per request).
    #[must_use]
    pub fn new(store: Arc<PolicyStore>) -> Self {
        Pdp { store, combining: PolicyCombiningAlg::FirstApplicable }
    }

    /// Override the policy combining algorithm.
    #[must_use]
    pub fn with_combining(mut self, combining: PolicyCombiningAlg) -> Self {
        self.combining = combining;
        self
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<PolicyStore> {
        &self.store
    }

    /// Evaluate a request against every loaded policy.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> DecisionResponse {
        if request.validate().is_err() {
            return DecisionResponse {
                decision: Decision::Indeterminate,
                obligations: Vec::new(),
                policy_id: None,
            };
        }
        let mut permit: Option<DecisionResponse> = None;
        let mut deny: Option<DecisionResponse> = None;

        let first = self.store.scan(|policy| match policy.evaluate(request) {
            Some(effect @ Effect::Permit) => {
                let response = Self::respond(policy, effect);
                if self.combining == PolicyCombiningAlg::FirstApplicable {
                    Some(response)
                } else {
                    if permit.is_none() {
                        permit = Some(response);
                    }
                    None
                }
            }
            Some(effect @ Effect::Deny) => {
                let response = Self::respond(policy, effect);
                if self.combining == PolicyCombiningAlg::FirstApplicable {
                    Some(response)
                } else {
                    if deny.is_none() {
                        deny = Some(response);
                    }
                    None
                }
            }
            None => None,
        });
        if let Some(response) = first {
            return response;
        }

        match self.combining {
            PolicyCombiningAlg::FirstApplicable => DecisionResponse::not_applicable(),
            PolicyCombiningAlg::PermitOverrides => {
                permit.or(deny).unwrap_or_else(DecisionResponse::not_applicable)
            }
            PolicyCombiningAlg::DenyOverrides => {
                deny.or(permit).unwrap_or_else(DecisionResponse::not_applicable)
            }
        }
    }

    fn respond(policy: &Policy, effect: Effect) -> DecisionResponse {
        DecisionResponse {
            decision: match effect {
                Effect::Permit => Decision::Permit,
                Effect::Deny => Decision::Deny,
            },
            obligations: policy.obligations_for(effect),
            policy_id: Some(policy.id.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Rule, Target};

    fn store_with(policies: Vec<Policy>) -> Arc<PolicyStore> {
        let store = Arc::new(PolicyStore::new());
        for p in policies {
            store.add(p).unwrap();
        }
        store
    }

    fn permit_policy(id: &str, subject: &str, stream: &str) -> Policy {
        Policy::new(id)
            .with_target(Target::subject_resource_action(subject, stream, "subscribe"))
            .with_rule(Rule::permit_all("permit"))
            .with_obligation(Obligation::on_permit(format!("{id}-obligation")))
    }

    #[test]
    fn store_add_get_remove_update() {
        let store = PolicyStore::new();
        store.add(permit_policy("p1", "LTA", "weather")).unwrap();
        assert!(store.contains("p1"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.ids(), vec!["p1".to_string()]);
        assert!(matches!(
            store.add(permit_policy("p1", "LTA", "weather")),
            Err(XacmlError::PolicyAlreadyExists(_))
        ));

        let mut updated = permit_policy("p1", "LTA", "gps");
        updated.description = "now for gps".into();
        store.update(updated).unwrap();
        assert_eq!(store.get("p1").unwrap().description, "now for gps");
        assert!(matches!(
            store.update(permit_policy("p2", "x", "y")),
            Err(XacmlError::UnknownPolicy(_))
        ));

        store.remove("p1").unwrap();
        assert!(store.is_empty());
        assert!(matches!(store.remove("p1"), Err(XacmlError::UnknownPolicy(_))));
    }

    #[test]
    fn store_rejects_invalid_policy() {
        let store = PolicyStore::new();
        assert!(matches!(
            store.add(Policy::new("no-rules")),
            Err(XacmlError::InvalidPolicy { .. })
        ));
    }

    #[test]
    fn pdp_permits_matching_request_with_obligations() {
        let store = store_with(vec![permit_policy("p1", "LTA", "weather")]);
        let pdp = Pdp::new(store);
        let response = pdp.evaluate(&Request::subscribe("LTA", "weather"));
        assert!(response.is_permit());
        assert_eq!(response.policy_id.as_deref(), Some("p1"));
        assert_eq!(response.obligations.len(), 1);
    }

    #[test]
    fn pdp_not_applicable_when_nothing_matches() {
        let store = store_with(vec![permit_policy("p1", "LTA", "weather")]);
        let pdp = Pdp::new(store);
        let response = pdp.evaluate(&Request::subscribe("EMA", "weather"));
        assert_eq!(response.decision, Decision::NotApplicable);
        assert!(response.obligations.is_empty());
        assert!(response.policy_id.is_none());
    }

    #[test]
    fn pdp_first_applicable_uses_load_order() {
        let deny = Policy::new("deny-all").with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let pdp = Pdp::new(store_with(vec![deny.clone(), permit.clone()]));
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Deny);
        let pdp = Pdp::new(store_with(vec![permit, deny]));
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Permit);
    }

    #[test]
    fn pdp_permit_and_deny_overrides() {
        let deny = Policy::new("deny-all").with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let store = store_with(vec![deny, permit]);
        let pdp = Pdp::new(Arc::clone(&store)).with_combining(PolicyCombiningAlg::PermitOverrides);
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Permit);
        let pdp = Pdp::new(store).with_combining(PolicyCombiningAlg::DenyOverrides);
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Deny);
    }

    #[test]
    fn pdp_indeterminate_on_malformed_request() {
        let pdp = Pdp::new(store_with(vec![permit_policy("p", "a", "b")]));
        let bad = Request::new().with_subject("", crate::attribute::AttributeValue::string("x"));
        assert_eq!(pdp.evaluate(&bad).decision, Decision::Indeterminate);
    }

    #[test]
    fn pdp_scales_over_many_policies() {
        // Mirrors the evaluation set-up: hundreds of unique policies, one
        // matching the request.
        let mut policies = Vec::new();
        for i in 0..500 {
            policies.push(permit_policy(
                &format!("p{i}"),
                &format!("user{i}"),
                &format!("stream{i}"),
            ));
        }
        let pdp = Pdp::new(store_with(policies));
        let response = pdp.evaluate(&Request::subscribe("user250", "stream250"));
        assert!(response.is_permit());
        assert_eq!(response.policy_id.as_deref(), Some("p250"));
    }
}
