//! Policy store and Policy Decision Point.
//!
//! The PDP "manages policies and evaluates user requests against the stored
//! policies, the result of which are permit or deny decisions" together with
//! the obligations of the matching policy (Section 2.1). The store supports
//! the add / remove / update operations the query-graph management layer of
//! eXACML+ reacts to (Section 3.3).
//!
//! # Hot-path structure
//!
//! The store keeps, besides the insertion-ordered policy list, a **target
//! index** keyed on the `(subject-id, resource-id, action-id)` triple that
//! the framework's policy targets are built from. A request carrying a
//! single value for each of those attributes only evaluates the policies in
//! its triple bucket plus the policies whose targets are not triple-shaped
//! (the *generic* residue), merged back into insertion order so
//! first-applicable combining is preserved bit-for-bit. Requests that don't
//! fit the triple shape fall back to the full linear scan.
//!
//! On top of the index, each [`Pdp`] carries a **decision cache** keyed by
//! the canonicalized request. The cache is coupled to the store's revision
//! counter, which every add / remove / update bumps — the same Section 3.3
//! events that withdraw deployed query graphs also invalidate cached
//! decisions, so a cached decision is never served across a policy change.
//!
//! Policies are stored behind `Arc`s: [`PolicyStore::snapshot`] and
//! [`PolicyStore::get`] hand out shared references instead of deep-cloning
//! policy documents.

use crate::attribute::AttributeCategory;
use crate::obligation::Obligation;
use crate::policy::{Effect, Policy, PolicyCombiningAlg, Target};
use crate::request::{ids, Request};
use crate::XacmlError;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The final decision returned to the PEP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Access granted.
    Permit,
    /// Access explicitly denied.
    Deny,
    /// No policy applied to the request.
    NotApplicable,
    /// The evaluation could not be completed.
    Indeterminate,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Permit => "Permit",
            Decision::Deny => "Deny",
            Decision::NotApplicable => "NotApplicable",
            Decision::Indeterminate => "Indeterminate",
        };
        f.write_str(s)
    }
}

/// The PDP's answer: a decision, the obligations the PEP must fulfil, and the
/// id of the policy that produced the decision (used by eXACML+ to associate
/// deployed query graphs with their spawning policy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionResponse {
    /// The decision.
    pub decision: Decision,
    /// Obligations attached to the decision.
    pub obligations: Vec<Obligation>,
    /// Id of the policy that decided, when one did.
    pub policy_id: Option<String>,
}

impl DecisionResponse {
    /// A Not-Applicable response with no obligations.
    #[must_use]
    pub fn not_applicable() -> Self {
        DecisionResponse {
            decision: Decision::NotApplicable,
            obligations: Vec::new(),
            policy_id: None,
        }
    }

    /// Whether access was granted.
    #[must_use]
    pub fn is_permit(&self) -> bool {
        self.decision == Decision::Permit
    }
}

/// Key of the target index: the `(subject, resource, action)` values a
/// triple-shaped policy target requires.
type TripleKey = (String, String, String);

/// The `(subject-id, resource-id, action-id)` values a policy target
/// requires, when the target has at least one matcher for each. Extra
/// matchers (roles, environment) do not prevent indexing — the full target
/// is still evaluated at decision time; the index only narrows the
/// candidate set.
fn triple_key_of(target: &Target) -> Option<TripleKey> {
    let first = |category: AttributeCategory, id: &str| {
        target
            .matches
            .iter()
            .find(|m| m.category == category && m.attribute_id == id)
            .map(|m| m.value.clone())
    };
    Some((
        first(AttributeCategory::Subject, ids::SUBJECT_ID)?,
        first(AttributeCategory::Resource, ids::RESOURCE_ID)?,
        first(AttributeCategory::Action, ids::ACTION_ID)?,
    ))
}

/// Target index over the store: triple-shaped policies bucketed by their
/// required `(subject, resource, action)` values, everything else in the
/// generic list. Entries carry the policy's position in the evaluation
/// order so candidate sets can be merged back into first-applicable order.
#[derive(Debug, Default)]
struct TargetIndex {
    by_triple: HashMap<TripleKey, Vec<(usize, Arc<Policy>)>>,
    generic: Vec<(usize, Arc<Policy>)>,
}

/// A thread-safe, insertion-ordered policy store.
#[derive(Debug, Default)]
pub struct PolicyStore {
    inner: RwLock<StoreInner>,
    /// Revision-tagged shared snapshot of the id list, rebuilt lazily on
    /// demand so `ids()` costs a reference-count bump between mutations and
    /// `add` stays O(1).
    ids_cache: Mutex<(u64, Arc<[String]>)>,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Insertion order of policy ids (first-applicable combining is order
    /// dependent, and the evaluation workload loads policies sequentially).
    order: Vec<String>,
    policies: HashMap<String, Arc<Policy>>,
    index: TargetIndex,
    /// Bumped by every add / remove / update; decision caches compare it to
    /// decide whether their entries are still valid.
    revision: u64,
}

impl StoreInner {
    /// Index the policy that was just appended to `order` — O(1), so
    /// sequential bulk loading (the evaluation workload loads policies one
    /// by one) stays linear overall.
    fn index_appended(&mut self) {
        let pos = self.order.len() - 1;
        let policy = &self.policies[&self.order[pos]];
        match triple_key_of(&policy.target) {
            Some(key) => {
                self.index.by_triple.entry(key).or_default().push((pos, Arc::clone(policy)))
            }
            None => self.index.generic.push((pos, Arc::clone(policy))),
        }
        self.revision += 1;
    }

    /// Rebuild the target index from scratch and bump the revision. Used for
    /// remove and update, which can shift positions or move a policy between
    /// buckets; those events are rare next to evaluations (each one also
    /// withdraws query graphs, Section 3.3), so the full rebuild keeps the
    /// bookkeeping trivially correct.
    fn reindex(&mut self) {
        self.index.by_triple.clear();
        self.index.generic.clear();
        for (pos, id) in self.order.iter().enumerate() {
            let policy = &self.policies[id];
            match triple_key_of(&policy.target) {
                Some(key) => {
                    self.index.by_triple.entry(key).or_default().push((pos, Arc::clone(policy)))
                }
                None => self.index.generic.push((pos, Arc::clone(policy))),
            }
        }
        self.revision += 1;
    }
}

/// The single value of a request attribute, when the request carries exactly
/// zero or one — `Err(())` marks a multi-valued attribute, which makes the
/// request ineligible for the triple index.
fn single_value<'r>(
    request: &'r Request,
    category: AttributeCategory,
    id: &str,
) -> Result<Option<&'r str>, ()> {
    let values = request.values_of(category, id);
    match values.as_slice() {
        [] => Ok(None),
        [one] => Ok(Some(one.text.as_str())),
        _ => Err(()),
    }
}

impl PolicyStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        PolicyStore::default()
    }

    /// Load (add) a policy.
    ///
    /// # Errors
    /// Fails when a policy with the same id exists or the policy is invalid.
    pub fn add(&self, policy: Policy) -> Result<(), XacmlError> {
        policy
            .validate()
            .map_err(|detail| XacmlError::InvalidPolicy { policy_id: policy.id.clone(), detail })?;
        let mut inner = self.inner.write();
        if inner.policies.contains_key(&policy.id) {
            return Err(XacmlError::PolicyAlreadyExists(policy.id));
        }
        inner.order.push(policy.id.clone());
        inner.policies.insert(policy.id.clone(), Arc::new(policy));
        inner.index_appended();
        Ok(())
    }

    /// Replace an existing policy (keeps its position in the evaluation
    /// order). This is the "policy modified by the owner" event of
    /// Section 3.3.
    ///
    /// # Errors
    /// Fails when no policy with this id exists or the new document is
    /// invalid.
    pub fn update(&self, policy: Policy) -> Result<(), XacmlError> {
        policy
            .validate()
            .map_err(|detail| XacmlError::InvalidPolicy { policy_id: policy.id.clone(), detail })?;
        let mut inner = self.inner.write();
        if !inner.policies.contains_key(&policy.id) {
            return Err(XacmlError::UnknownPolicy(policy.id));
        }
        inner.policies.insert(policy.id.clone(), Arc::new(policy));
        inner.reindex();
        Ok(())
    }

    /// Remove a policy. This is the "policy removed by the owner" event of
    /// Section 3.3.
    ///
    /// # Errors
    /// Fails when no policy with this id exists.
    pub fn remove(&self, policy_id: &str) -> Result<Arc<Policy>, XacmlError> {
        let mut inner = self.inner.write();
        let policy = inner
            .policies
            .remove(policy_id)
            .ok_or_else(|| XacmlError::UnknownPolicy(policy_id.to_string()))?;
        inner.order.retain(|id| id != policy_id);
        inner.reindex();
        Ok(policy)
    }

    /// Fetch a policy by id (a shared reference, not a deep clone).
    #[must_use]
    pub fn get(&self, policy_id: &str) -> Option<Arc<Policy>> {
        self.inner.read().policies.get(policy_id).cloned()
    }

    /// Whether a policy with this id is loaded.
    #[must_use]
    pub fn contains(&self, policy_id: &str) -> bool {
        self.inner.read().policies.contains_key(policy_id)
    }

    /// Number of loaded policies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().policies.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Policy ids in evaluation order, as a shared snapshot (between
    /// mutations: one reference-count bump, no per-call cloning of the id
    /// strings).
    #[must_use]
    pub fn ids(&self) -> Arc<[String]> {
        let mut cache = self.ids_cache.lock();
        let inner = self.inner.read();
        if cache.0 != inner.revision {
            *cache = (inner.revision, inner.order.clone().into());
        }
        Arc::clone(&cache.1)
    }

    /// Snapshot of the policies in evaluation order. Each entry is an `Arc`
    /// share of the stored policy — the documents themselves are not cloned.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<Policy>> {
        let inner = self.inner.read();
        inner.order.iter().filter_map(|id| inner.policies.get(id).cloned()).collect()
    }

    /// The store's revision counter; bumped by every add / remove / update.
    /// Decision caches use it to detect staleness.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.inner.read().revision
    }

    /// Recovery hook: advance the revision counter to at least `revision`
    /// (no-op when the store is already past it). A store rebuilt from a
    /// compacted journal has seen fewer add/remove/update events than the
    /// original, so replay alone would leave the counter behind the value
    /// persisted at the last snapshot; jumping forward restores the
    /// pre-crash revision and conservatively invalidates every coupled
    /// decision cache.
    pub fn resume_revision_at(&self, revision: u64) {
        let mut inner = self.inner.write();
        inner.revision = inner.revision.max(revision);
    }

    /// Visit every policy in evaluation order without cloning, stopping when
    /// the visitor returns `Some`. This is the reference evaluation path —
    /// the indexed candidate sets must agree with it, which the property
    /// tests assert.
    pub fn scan<R>(&self, mut visitor: impl FnMut(&Policy) -> Option<R>) -> Option<R> {
        let inner = self.inner.read();
        for id in &inner.order {
            if let Some(policy) = inner.policies.get(id) {
                if let Some(result) = visitor(policy) {
                    return Some(result);
                }
            }
        }
        None
    }

    /// The policies that can possibly apply to `request`, in evaluation
    /// order, or `None` when the request is not triple-indexable (some
    /// triple attribute carries multiple values) and the caller must fall
    /// back to the full scan.
    ///
    /// Correctness: a triple-indexed policy requires its exact
    /// `(subject, resource, action)` values to be present in the request, so
    /// for a request carrying at most one value per triple attribute, every
    /// policy outside the request's bucket and the generic list evaluates to
    /// Not&nbsp;Applicable and can be skipped without changing the combined
    /// outcome under any combining algorithm.
    fn indexed_candidates(&self, request: &Request) -> Option<Vec<Arc<Policy>>> {
        let subject = single_value(request, AttributeCategory::Subject, ids::SUBJECT_ID).ok()?;
        let resource = single_value(request, AttributeCategory::Resource, ids::RESOURCE_ID).ok()?;
        let action = single_value(request, AttributeCategory::Action, ids::ACTION_ID).ok()?;

        let inner = self.inner.read();
        let bucket: &[(usize, Arc<Policy>)] = match (subject, resource, action) {
            (Some(s), Some(r), Some(a)) => {
                // Borrow the key parts without building owned Strings unless
                // the bucket exists is not possible with a tuple key; the
                // three small allocations happen once per (uncached) request.
                let key = (s.to_string(), r.to_string(), a.to_string());
                inner.index.by_triple.get(&key).map_or(&[][..], Vec::as_slice)
            }
            // A request missing one of the triple attributes can never
            // satisfy a triple-shaped target: only generic policies apply.
            _ => &[],
        };

        // Merge bucket and generic back into evaluation order.
        let mut candidates = Vec::with_capacity(bucket.len() + inner.index.generic.len());
        let (mut i, mut j) = (0, 0);
        while i < bucket.len() && j < inner.index.generic.len() {
            if bucket[i].0 < inner.index.generic[j].0 {
                candidates.push(Arc::clone(&bucket[i].1));
                i += 1;
            } else {
                candidates.push(Arc::clone(&inner.index.generic[j].1));
                j += 1;
            }
        }
        candidates.extend(bucket[i..].iter().map(|(_, p)| Arc::clone(p)));
        candidates.extend(inner.index.generic[j..].iter().map(|(_, p)| Arc::clone(p)));
        Some(candidates)
    }
}

/// A revision-coupled cache of PDP decisions keyed by canonicalized request.
#[derive(Debug, Default)]
struct DecisionCache {
    inner: Mutex<DecisionCacheInner>,
}

#[derive(Debug, Default)]
struct DecisionCacheInner {
    /// Store revision the cached entries were computed against.
    revision: u64,
    map: HashMap<String, DecisionResponse>,
}

/// Upper bound on cached decisions; the map is cleared wholesale when it is
/// reached (the workload's request population is far smaller).
const DECISION_CACHE_CAPACITY: usize = 8192;

/// Canonical text form of a request: category/id/value triples, sorted, so
/// attribute order in the request document does not fragment the cache.
fn canonical_request_key(request: &Request) -> String {
    let mut parts: Vec<String> = request
        .attributes
        .iter()
        .map(|a| format!("{:?}\x1f{}\x1f{}", a.category, a.attribute_id, a.value.text))
        .collect();
    parts.sort_unstable();
    parts.join("\x1e")
}

/// The Policy Decision Point.
#[derive(Debug, Clone)]
pub struct Pdp {
    store: Arc<PolicyStore>,
    combining: PolicyCombiningAlg,
    /// Shared across clones of this PDP (same store, same combining).
    cache: Arc<DecisionCache>,
}

impl Pdp {
    /// A PDP over a shared policy store with first-applicable combining
    /// (the behaviour of the paper's prototype, whose workload generates a
    /// dedicated policy per request).
    #[must_use]
    pub fn new(store: Arc<PolicyStore>) -> Self {
        Pdp {
            store,
            combining: PolicyCombiningAlg::FirstApplicable,
            cache: Arc::new(DecisionCache::default()),
        }
    }

    /// Override the policy combining algorithm. The decision cache is
    /// replaced: cached decisions depend on the combining algorithm, so they
    /// must not leak between a PDP and a re-combined copy of it.
    #[must_use]
    pub fn with_combining(mut self, combining: PolicyCombiningAlg) -> Self {
        self.combining = combining;
        self.cache = Arc::new(DecisionCache::default());
        self
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<PolicyStore> {
        &self.store
    }

    /// Number of decisions currently cached (observability for tests and
    /// benches).
    #[must_use]
    pub fn cached_decisions(&self) -> usize {
        self.cache.inner.lock().map.len()
    }

    /// Evaluate a request against the loaded policies, serving repeated
    /// requests from the decision cache. Cached entries are invalidated by
    /// the store's add / remove / update events (via the revision counter),
    /// so a decision is never served across a policy change.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> DecisionResponse {
        if request.validate().is_err() {
            return DecisionResponse {
                decision: Decision::Indeterminate,
                obligations: Vec::new(),
                policy_id: None,
            };
        }

        let key = canonical_request_key(request);
        let revision = self.store.revision();
        {
            let mut cache = self.cache.inner.lock();
            if cache.revision == revision {
                if let Some(hit) = cache.map.get(&key) {
                    return hit.clone();
                }
            } else {
                cache.map.clear();
                cache.revision = revision;
            }
        }

        let response = self.evaluate_uncached(request);

        // Only cache when the store has not changed underneath the
        // evaluation; otherwise the entry might reflect either revision.
        if self.store.revision() == revision {
            let mut cache = self.cache.inner.lock();
            if cache.revision == revision {
                if cache.map.len() >= DECISION_CACHE_CAPACITY {
                    cache.map.clear();
                }
                cache.map.insert(key, response.clone());
            }
        }
        response
    }

    /// Evaluate without consulting or filling the decision cache, using the
    /// target index to narrow the candidate set.
    #[must_use]
    pub fn evaluate_uncached(&self, request: &Request) -> DecisionResponse {
        if request.validate().is_err() {
            return DecisionResponse {
                decision: Decision::Indeterminate,
                obligations: Vec::new(),
                policy_id: None,
            };
        }
        match self.store.indexed_candidates(request) {
            Some(candidates) => {
                self.combine(request, candidates.iter().map(std::convert::AsRef::as_ref))
            }
            None => self.evaluate_linear(request),
        }
    }

    /// Reference implementation: a full linear scan over the store in
    /// insertion order, bypassing both the target index and the cache. The
    /// property tests assert [`Pdp::evaluate`] agrees with this bit for bit.
    #[must_use]
    pub fn evaluate_linear(&self, request: &Request) -> DecisionResponse {
        if request.validate().is_err() {
            return DecisionResponse {
                decision: Decision::Indeterminate,
                obligations: Vec::new(),
                policy_id: None,
            };
        }
        let mut permit: Option<DecisionResponse> = None;
        let mut deny: Option<DecisionResponse> = None;

        let first = self.store.scan(|policy| match policy.evaluate(request) {
            Some(effect @ Effect::Permit) => {
                let response = Self::respond(policy, effect);
                if self.combining == PolicyCombiningAlg::FirstApplicable {
                    Some(response)
                } else {
                    if permit.is_none() {
                        permit = Some(response);
                    }
                    None
                }
            }
            Some(effect @ Effect::Deny) => {
                let response = Self::respond(policy, effect);
                if self.combining == PolicyCombiningAlg::FirstApplicable {
                    Some(response)
                } else {
                    if deny.is_none() {
                        deny = Some(response);
                    }
                    None
                }
            }
            None => None,
        });
        if let Some(response) = first {
            return response;
        }
        self.combined_fallback(permit, deny)
    }

    /// Run the combining algorithm over an ordered candidate iterator.
    fn combine<'p>(
        &self,
        request: &Request,
        policies: impl Iterator<Item = &'p Policy>,
    ) -> DecisionResponse {
        let mut permit: Option<DecisionResponse> = None;
        let mut deny: Option<DecisionResponse> = None;
        for policy in policies {
            match policy.evaluate(request) {
                Some(effect @ Effect::Permit) => {
                    let response = Self::respond(policy, effect);
                    if self.combining == PolicyCombiningAlg::FirstApplicable {
                        return response;
                    }
                    if permit.is_none() {
                        permit = Some(response);
                    }
                }
                Some(effect @ Effect::Deny) => {
                    let response = Self::respond(policy, effect);
                    if self.combining == PolicyCombiningAlg::FirstApplicable {
                        return response;
                    }
                    if deny.is_none() {
                        deny = Some(response);
                    }
                }
                None => {}
            }
        }
        self.combined_fallback(permit, deny)
    }

    fn combined_fallback(
        &self,
        permit: Option<DecisionResponse>,
        deny: Option<DecisionResponse>,
    ) -> DecisionResponse {
        match self.combining {
            PolicyCombiningAlg::FirstApplicable => DecisionResponse::not_applicable(),
            PolicyCombiningAlg::PermitOverrides => {
                permit.or(deny).unwrap_or_else(DecisionResponse::not_applicable)
            }
            PolicyCombiningAlg::DenyOverrides => {
                deny.or(permit).unwrap_or_else(DecisionResponse::not_applicable)
            }
        }
    }

    fn respond(policy: &Policy, effect: Effect) -> DecisionResponse {
        DecisionResponse {
            decision: match effect {
                Effect::Permit => Decision::Permit,
                Effect::Deny => Decision::Deny,
            },
            obligations: policy.obligations_for(effect),
            policy_id: Some(policy.id.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Rule, Target};

    fn store_with(policies: Vec<Policy>) -> Arc<PolicyStore> {
        let store = Arc::new(PolicyStore::new());
        for p in policies {
            store.add(p).unwrap();
        }
        store
    }

    fn permit_policy(id: &str, subject: &str, stream: &str) -> Policy {
        Policy::new(id)
            .with_target(Target::subject_resource_action(subject, stream, "subscribe"))
            .with_rule(Rule::permit_all("permit"))
            .with_obligation(Obligation::on_permit(format!("{id}-obligation")))
    }

    #[test]
    fn store_add_get_remove_update() {
        let store = PolicyStore::new();
        store.add(permit_policy("p1", "LTA", "weather")).unwrap();
        assert!(store.contains("p1"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.ids().as_ref(), ["p1".to_string()]);
        assert!(matches!(
            store.add(permit_policy("p1", "LTA", "weather")),
            Err(XacmlError::PolicyAlreadyExists(_))
        ));

        let mut updated = permit_policy("p1", "LTA", "gps");
        updated.description = "now for gps".into();
        store.update(updated).unwrap();
        assert_eq!(store.get("p1").unwrap().description, "now for gps");
        assert!(matches!(
            store.update(permit_policy("p2", "x", "y")),
            Err(XacmlError::UnknownPolicy(_))
        ));

        store.remove("p1").unwrap();
        assert!(store.is_empty());
        assert!(matches!(store.remove("p1"), Err(XacmlError::UnknownPolicy(_))));
    }

    #[test]
    fn store_rejects_invalid_policy() {
        let store = PolicyStore::new();
        assert!(matches!(
            store.add(Policy::new("no-rules")),
            Err(XacmlError::InvalidPolicy { .. })
        ));
    }

    #[test]
    fn store_revision_bumps_on_every_mutation() {
        let store = PolicyStore::new();
        let r0 = store.revision();
        store.add(permit_policy("p1", "LTA", "weather")).unwrap();
        let r1 = store.revision();
        assert!(r1 > r0);
        store.update(permit_policy("p1", "LTA", "gps")).unwrap();
        let r2 = store.revision();
        assert!(r2 > r1);
        store.remove("p1").unwrap();
        assert!(store.revision() > r2);
    }

    #[test]
    fn snapshot_shares_policies_instead_of_cloning() {
        let store = PolicyStore::new();
        store.add(permit_policy("p1", "LTA", "weather")).unwrap();
        let a = store.snapshot();
        let b = store.get("p1").unwrap();
        assert!(Arc::ptr_eq(&a[0], &b));
    }

    #[test]
    fn pdp_permits_matching_request_with_obligations() {
        let store = store_with(vec![permit_policy("p1", "LTA", "weather")]);
        let pdp = Pdp::new(store);
        let response = pdp.evaluate(&Request::subscribe("LTA", "weather"));
        assert!(response.is_permit());
        assert_eq!(response.policy_id.as_deref(), Some("p1"));
        assert_eq!(response.obligations.len(), 1);
    }

    #[test]
    fn pdp_not_applicable_when_nothing_matches() {
        let store = store_with(vec![permit_policy("p1", "LTA", "weather")]);
        let pdp = Pdp::new(store);
        let response = pdp.evaluate(&Request::subscribe("EMA", "weather"));
        assert_eq!(response.decision, Decision::NotApplicable);
        assert!(response.obligations.is_empty());
        assert!(response.policy_id.is_none());
    }

    #[test]
    fn pdp_first_applicable_uses_load_order() {
        let deny = Policy::new("deny-all").with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let pdp = Pdp::new(store_with(vec![deny.clone(), permit.clone()]));
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Deny);
        let pdp = Pdp::new(store_with(vec![permit, deny]));
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Permit);
    }

    #[test]
    fn pdp_first_applicable_interleaves_indexed_and_generic_policies() {
        // A triple-indexed Deny loaded *before* a generic Permit must still
        // win under first-applicable for the triple's request.
        let deny = Policy::new("deny-lta")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let pdp = Pdp::new(store_with(vec![deny, permit]));
        let response = pdp.evaluate(&Request::subscribe("LTA", "weather"));
        assert_eq!(response.decision, Decision::Deny);
        assert_eq!(response.policy_id.as_deref(), Some("deny-lta"));
        // The reverse order gives the generic Permit first.
        let deny = Policy::new("deny-lta")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let pdp = Pdp::new(store_with(vec![permit, deny]));
        assert_eq!(pdp.evaluate(&Request::subscribe("LTA", "weather")).decision, Decision::Permit);
    }

    #[test]
    fn pdp_permit_and_deny_overrides() {
        let deny = Policy::new("deny-all").with_rule(Rule::deny_all("d"));
        let permit = Policy::new("permit-all").with_rule(Rule::permit_all("p"));
        let store = store_with(vec![deny, permit]);
        let pdp = Pdp::new(Arc::clone(&store)).with_combining(PolicyCombiningAlg::PermitOverrides);
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Permit);
        let pdp = Pdp::new(store).with_combining(PolicyCombiningAlg::DenyOverrides);
        assert_eq!(pdp.evaluate(&Request::new()).decision, Decision::Deny);
    }

    #[test]
    fn pdp_indeterminate_on_malformed_request() {
        let pdp = Pdp::new(store_with(vec![permit_policy("p", "a", "b")]));
        let bad = Request::new().with_subject("", crate::attribute::AttributeValue::string("x"));
        assert_eq!(pdp.evaluate(&bad).decision, Decision::Indeterminate);
    }

    #[test]
    fn pdp_scales_over_many_policies() {
        // Mirrors the evaluation set-up: hundreds of unique policies, one
        // matching the request.
        let mut policies = Vec::new();
        for i in 0..500 {
            policies.push(permit_policy(
                &format!("p{i}"),
                &format!("user{i}"),
                &format!("stream{i}"),
            ));
        }
        let pdp = Pdp::new(store_with(policies));
        let response = pdp.evaluate(&Request::subscribe("user250", "stream250"));
        assert!(response.is_permit());
        assert_eq!(response.policy_id.as_deref(), Some("p250"));
    }

    #[test]
    fn cache_serves_repeated_requests_and_survives_reordering() {
        let pdp = Pdp::new(store_with(vec![permit_policy("p1", "LTA", "weather")]));
        let request = Request::subscribe("LTA", "weather");
        assert_eq!(pdp.cached_decisions(), 0);
        let first = pdp.evaluate(&request);
        assert_eq!(pdp.cached_decisions(), 1);
        let second = pdp.evaluate(&request);
        assert_eq!(first, second);
        assert_eq!(pdp.cached_decisions(), 1);

        // The same attributes in a different document order hit the same
        // canonical key.
        use crate::attribute::AttributeValue;
        let reordered = Request::new()
            .with_action(ids::ACTION_ID, AttributeValue::string("subscribe"))
            .with_resource(ids::RESOURCE_ID, AttributeValue::string("weather"))
            .with_subject(ids::SUBJECT_ID, AttributeValue::string("LTA"));
        assert_eq!(pdp.evaluate(&reordered), first);
        assert_eq!(pdp.cached_decisions(), 1);
    }

    #[test]
    fn cache_invalidates_on_add_remove_update() {
        let store = store_with(vec![permit_policy("p1", "LTA", "weather")]);
        let pdp = Pdp::new(Arc::clone(&store));
        let request = Request::subscribe("LTA", "weather");
        assert!(pdp.evaluate(&request).is_permit());
        assert_eq!(pdp.cached_decisions(), 1);

        // Remove: the cached Permit must not survive.
        store.remove("p1").unwrap();
        let response = pdp.evaluate(&request);
        assert_eq!(response.decision, Decision::NotApplicable);

        // Add: the cached NotApplicable must not survive.
        store.add(permit_policy("p1", "LTA", "weather")).unwrap();
        assert!(pdp.evaluate(&request).is_permit());

        // Update: the decision must reflect the new document.
        let deny = Policy::new("p1")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::deny_all("d"));
        store.update(deny).unwrap();
        assert_eq!(pdp.evaluate(&request).decision, Decision::Deny);
    }

    #[test]
    fn indexed_evaluation_matches_linear_reference() {
        // Mixed store: triple-indexed policies, generic policies, deny
        // rules, multiple policies per triple.
        let policies = vec![
            permit_policy("p0", "LTA", "weather"),
            Policy::new("g0").with_rule(Rule::deny_all("d")),
            permit_policy("p1", "EMA", "weather"),
            Policy::new("p1b")
                .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
                .with_rule(Rule::deny_all("d")),
            Policy::new("g1").with_rule(Rule::permit_all("p")),
        ];
        for combining in [
            PolicyCombiningAlg::FirstApplicable,
            PolicyCombiningAlg::PermitOverrides,
            PolicyCombiningAlg::DenyOverrides,
        ] {
            let pdp = Pdp::new(store_with(policies.clone())).with_combining(combining);
            for request in [
                Request::subscribe("LTA", "weather"),
                Request::subscribe("EMA", "weather"),
                Request::subscribe("nobody", "nothing"),
                Request::new(),
            ] {
                assert_eq!(
                    pdp.evaluate_uncached(&request),
                    pdp.evaluate_linear(&request),
                    "index/linear divergence under {combining:?} for {request}"
                );
            }
        }
    }

    #[test]
    fn multi_valued_requests_fall_back_to_the_linear_scan() {
        use crate::attribute::AttributeValue;
        let pdp = Pdp::new(store_with(vec![
            permit_policy("p1", "LTA", "weather"),
            permit_policy("p2", "EMA", "weather"),
        ]));
        // Two subject ids: the triple index cannot pick a bucket. Both
        // policies' targets are satisfied, so first-applicable must find p1
        // (the first loaded), exactly as the linear reference does.
        let request = Request::subscribe("EMA", "weather")
            .with_subject(ids::SUBJECT_ID, AttributeValue::string("LTA"));
        let response = pdp.evaluate(&request);
        assert!(response.is_permit());
        assert_eq!(response.policy_id.as_deref(), Some("p1"));
        assert_eq!(pdp.evaluate_linear(&request), response);
    }
}
