//! Access requests.
//!
//! A request carries the requester's credentials (subject attributes), the
//! resource being asked for (for eXACML+, the name/URI of a data stream),
//! the action (e.g. `subscribe`) and optional environment attributes. The
//! paper's workload generator produces one request file per policy so that
//! the PDP always permits it (Section 4.2).

use crate::attribute::{AttributeCategory, AttributeValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attribute of a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestAttribute {
    /// The category (subject / resource / action / environment).
    pub category: AttributeCategory,
    /// The attribute identifier (a URI in full XACML; free-form here).
    pub attribute_id: String,
    /// The attribute value.
    pub value: AttributeValue,
}

/// An access request evaluated by the PDP.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Request {
    /// All attributes of the request.
    pub attributes: Vec<RequestAttribute>,
}

/// Standard attribute identifiers used throughout the framework.
pub mod ids {
    /// The subject identifier (who is asking).
    pub const SUBJECT_ID: &str = "urn:oasis:names:tc:xacml:1.0:subject:subject-id";
    /// The subject's role.
    pub const SUBJECT_ROLE: &str = "urn:oasis:names:tc:xacml:2.0:subject:role";
    /// The resource identifier (which stream).
    pub const RESOURCE_ID: &str = "urn:oasis:names:tc:xacml:1.0:resource:resource-id";
    /// The action identifier (what is being done).
    pub const ACTION_ID: &str = "urn:oasis:names:tc:xacml:1.0:action:action-id";
}

impl Request {
    /// Empty request (matched only by empty targets).
    #[must_use]
    pub fn new() -> Self {
        Request::default()
    }

    /// Convenience constructor for the common subject / resource / action
    /// triple used throughout the framework and the evaluation workload.
    #[must_use]
    pub fn subscribe(subject: &str, stream: &str) -> Self {
        Request::new()
            .with_subject(ids::SUBJECT_ID, AttributeValue::string(subject))
            .with_resource(ids::RESOURCE_ID, AttributeValue::string(stream))
            .with_action(ids::ACTION_ID, AttributeValue::string("subscribe"))
    }

    /// Add an attribute (builder style).
    #[must_use]
    pub fn with_attribute(
        mut self,
        category: AttributeCategory,
        attribute_id: impl Into<String>,
        value: AttributeValue,
    ) -> Self {
        self.attributes.push(RequestAttribute {
            category,
            attribute_id: attribute_id.into(),
            value,
        });
        self
    }

    /// Add a subject attribute.
    #[must_use]
    pub fn with_subject(self, attribute_id: impl Into<String>, value: AttributeValue) -> Self {
        self.with_attribute(AttributeCategory::Subject, attribute_id, value)
    }

    /// Add a resource attribute.
    #[must_use]
    pub fn with_resource(self, attribute_id: impl Into<String>, value: AttributeValue) -> Self {
        self.with_attribute(AttributeCategory::Resource, attribute_id, value)
    }

    /// Add an action attribute.
    #[must_use]
    pub fn with_action(self, attribute_id: impl Into<String>, value: AttributeValue) -> Self {
        self.with_attribute(AttributeCategory::Action, attribute_id, value)
    }

    /// Add an environment attribute.
    #[must_use]
    pub fn with_environment(self, attribute_id: impl Into<String>, value: AttributeValue) -> Self {
        self.with_attribute(AttributeCategory::Environment, attribute_id, value)
    }

    /// All values of an attribute in a category.
    #[must_use]
    pub fn values_of(
        &self,
        category: AttributeCategory,
        attribute_id: &str,
    ) -> Vec<&AttributeValue> {
        self.attributes
            .iter()
            .filter(|a| a.category == category && a.attribute_id == attribute_id)
            .map(|a| &a.value)
            .collect()
    }

    /// First value of an attribute in a category, as text.
    #[must_use]
    pub fn first_value(&self, category: AttributeCategory, attribute_id: &str) -> Option<&str> {
        self.values_of(category, attribute_id).first().map(|v| v.text.as_str())
    }

    /// The subject identifier, if present.
    #[must_use]
    pub fn subject_id(&self) -> Option<&str> {
        self.first_value(AttributeCategory::Subject, ids::SUBJECT_ID)
    }

    /// The resource identifier (stream name), if present.
    #[must_use]
    pub fn resource_id(&self) -> Option<&str> {
        self.first_value(AttributeCategory::Resource, ids::RESOURCE_ID)
    }

    /// The action identifier, if present.
    #[must_use]
    pub fn action_id(&self) -> Option<&str> {
        self.first_value(AttributeCategory::Action, ids::ACTION_ID)
    }

    /// Basic structural validation: every attribute id non-empty.
    ///
    /// # Errors
    /// Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        for attr in &self.attributes {
            if attr.attribute_id.trim().is_empty() {
                return Err("request contains an attribute with an empty id".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Request[subject={:?}, resource={:?}, action={:?}]",
            self.subject_id(),
            self.resource_id(),
            self.action_id()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_constructor_sets_triple() {
        let r = Request::subscribe("LTA", "weather");
        assert_eq!(r.subject_id(), Some("LTA"));
        assert_eq!(r.resource_id(), Some("weather"));
        assert_eq!(r.action_id(), Some("subscribe"));
        r.validate().unwrap();
    }

    #[test]
    fn values_of_filters_by_category_and_id() {
        let r = Request::new()
            .with_subject(ids::SUBJECT_ROLE, AttributeValue::string("analyst"))
            .with_subject(ids::SUBJECT_ROLE, AttributeValue::string("driver"))
            .with_resource(ids::RESOURCE_ID, AttributeValue::string("weather"));
        assert_eq!(r.values_of(AttributeCategory::Subject, ids::SUBJECT_ROLE).len(), 2);
        assert_eq!(r.values_of(AttributeCategory::Resource, ids::SUBJECT_ROLE).len(), 0);
        assert_eq!(r.first_value(AttributeCategory::Subject, ids::SUBJECT_ROLE), Some("analyst"));
    }

    #[test]
    fn validation_rejects_empty_ids() {
        let r = Request::new().with_subject("", AttributeValue::string("x"));
        assert!(r.validate().is_err());
    }

    #[test]
    fn display_mentions_the_triple() {
        let r = Request::subscribe("NEA", "gps");
        let s = r.to_string();
        assert!(s.contains("NEA"));
        assert!(s.contains("gps"));
    }
}
