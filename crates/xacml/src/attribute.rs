//! Attribute values and categories.
//!
//! XACML attributes are typed by XML Schema data-type URIs
//! (e.g. `http://www.w3.org/2001/XMLSchema#string`) and grouped into the
//! *subject*, *resource*, *action* and *environment* categories of a request.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The XML Schema data types used by the framework's policies
/// (Figure 2 uses `#string` and `#integer`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XmlDataType {
    /// `http://www.w3.org/2001/XMLSchema#string`
    String,
    /// `http://www.w3.org/2001/XMLSchema#integer`
    Integer,
    /// `http://www.w3.org/2001/XMLSchema#double`
    Double,
    /// `http://www.w3.org/2001/XMLSchema#boolean`
    Boolean,
    /// `http://www.w3.org/2001/XMLSchema#anyURI`
    AnyUri,
}

impl XmlDataType {
    /// The full data-type URI, as written in policy documents.
    #[must_use]
    pub fn uri(self) -> &'static str {
        match self {
            XmlDataType::String => "http://www.w3.org/2001/XMLSchema#string",
            XmlDataType::Integer => "http://www.w3.org/2001/XMLSchema#integer",
            XmlDataType::Double => "http://www.w3.org/2001/XMLSchema#double",
            XmlDataType::Boolean => "http://www.w3.org/2001/XMLSchema#boolean",
            XmlDataType::AnyUri => "http://www.w3.org/2001/XMLSchema#anyURI",
        }
    }

    /// Parse a data-type URI (the bare fragment, e.g. `string`, is also
    /// accepted for robustness).
    #[must_use]
    pub fn from_uri(uri: &str) -> Option<XmlDataType> {
        let frag = uri.rsplit('#').next().unwrap_or(uri);
        match frag.to_ascii_lowercase().as_str() {
            "string" => Some(XmlDataType::String),
            "integer" | "int" | "long" => Some(XmlDataType::Integer),
            "double" | "float" => Some(XmlDataType::Double),
            "boolean" | "bool" => Some(XmlDataType::Boolean),
            "anyuri" => Some(XmlDataType::AnyUri),
            _ => None,
        }
    }
}

impl fmt::Display for XmlDataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.uri())
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeValue {
    /// The data type of the value.
    pub data_type: XmlDataType,
    /// The lexical representation of the value (XACML carries values as
    /// text; typed accessors parse on demand).
    pub text: String,
}

impl AttributeValue {
    /// A string value.
    pub fn string(text: impl Into<String>) -> Self {
        AttributeValue { data_type: XmlDataType::String, text: text.into() }
    }

    /// An integer value.
    #[must_use]
    pub fn integer(value: i64) -> Self {
        AttributeValue { data_type: XmlDataType::Integer, text: value.to_string() }
    }

    /// A double value.
    #[must_use]
    pub fn double(value: f64) -> Self {
        AttributeValue { data_type: XmlDataType::Double, text: value.to_string() }
    }

    /// A boolean value.
    #[must_use]
    pub fn boolean(value: bool) -> Self {
        AttributeValue { data_type: XmlDataType::Boolean, text: value.to_string() }
    }

    /// A URI value.
    pub fn any_uri(text: impl Into<String>) -> Self {
        AttributeValue { data_type: XmlDataType::AnyUri, text: text.into() }
    }

    /// Integer view, if the value parses as one.
    #[must_use]
    pub fn as_integer(&self) -> Option<i64> {
        self.text.trim().parse().ok()
    }

    /// Double view, if the value parses as one.
    #[must_use]
    pub fn as_double(&self) -> Option<f64> {
        self.text.trim().parse().ok()
    }

    /// Boolean view, if the value parses as one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self.text.trim().to_ascii_lowercase().as_str() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The category an attribute belongs to inside a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeCategory {
    /// The requesting subject (user credentials).
    Subject,
    /// The requested resource (a data stream name / URI).
    Resource,
    /// The requested action (e.g. `read`, `subscribe`).
    Action,
    /// Environment attributes (time of day, requesting host, ...).
    Environment,
}

impl AttributeCategory {
    /// All categories, in canonical order.
    #[must_use]
    pub fn all() -> [AttributeCategory; 4] {
        [
            AttributeCategory::Subject,
            AttributeCategory::Resource,
            AttributeCategory::Action,
            AttributeCategory::Environment,
        ]
    }

    /// The XML element name used in request documents.
    #[must_use]
    pub fn element_name(self) -> &'static str {
        match self {
            AttributeCategory::Subject => "Subject",
            AttributeCategory::Resource => "Resource",
            AttributeCategory::Action => "Action",
            AttributeCategory::Environment => "Environment",
        }
    }

    /// Parse the XML element name.
    #[must_use]
    pub fn from_element_name(name: &str) -> Option<AttributeCategory> {
        match name {
            "Subject" => Some(AttributeCategory::Subject),
            "Resource" => Some(AttributeCategory::Resource),
            "Action" => Some(AttributeCategory::Action),
            "Environment" => Some(AttributeCategory::Environment),
            _ => None,
        }
    }
}

impl fmt::Display for AttributeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.element_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_uri_round_trip() {
        for ty in [
            XmlDataType::String,
            XmlDataType::Integer,
            XmlDataType::Double,
            XmlDataType::Boolean,
            XmlDataType::AnyUri,
        ] {
            assert_eq!(XmlDataType::from_uri(ty.uri()), Some(ty));
        }
        assert_eq!(XmlDataType::from_uri("string"), Some(XmlDataType::String));
        assert_eq!(XmlDataType::from_uri("bogus"), None);
    }

    #[test]
    fn typed_views() {
        assert_eq!(AttributeValue::integer(5).as_integer(), Some(5));
        assert_eq!(AttributeValue::double(2.5).as_double(), Some(2.5));
        assert_eq!(AttributeValue::boolean(true).as_bool(), Some(true));
        assert_eq!(AttributeValue::string("x").as_integer(), None);
        assert_eq!(AttributeValue::string(" 7 ").as_integer(), Some(7));
    }

    #[test]
    fn category_element_names_round_trip() {
        for cat in AttributeCategory::all() {
            assert_eq!(AttributeCategory::from_element_name(cat.element_name()), Some(cat));
        }
        assert_eq!(AttributeCategory::from_element_name("Bogus"), None);
    }
}
