//! # exacml-xacml — an XACML subset engine
//!
//! The eXACML+ framework builds on the OASIS **XACML** access-control
//! standard: data owners write policies whose *targets* say who may access
//! which resource with which action, a **Policy Decision Point (PDP)**
//! evaluates incoming requests against the stored policies and returns a
//! Permit/Deny decision together with a set of **obligations**, and a
//! **Policy Enforcement Point (PEP)** marshals requests and enforces the
//! obligations (Section 2.1 of the paper). The paper's key trick is to embed
//! the fine-grained stream constraints inside the obligations block
//! (Figure 2).
//!
//! The original prototype extends Sun's Java XACML implementation; this crate
//! is a from-scratch Rust implementation of the subset the framework needs:
//!
//! * the attribute / target / rule / policy model ([`attribute`], [`policy`]),
//! * requests carrying subject, resource and action attributes ([`request`]),
//! * obligations with attribute assignments ([`obligation`]),
//! * a PDP with a thread-safe policy store and the standard combining
//!   algorithms ([`pdp`]),
//! * an XML reader/writer for policy and request documents in the same shape
//!   as the paper's Figure 2 ([`xml`]).

pub mod attribute;
pub mod error;
pub mod obligation;
pub mod pdp;
pub mod policy;
pub mod repository;
pub mod request;
pub mod xml;

pub use attribute::{AttributeCategory, AttributeValue, XmlDataType};
pub use error::XacmlError;
pub use obligation::{AttributeAssignment, Obligation};
pub use pdp::{Decision, DecisionResponse, Pdp, PolicyStore};
pub use policy::{
    AttributeMatch, Effect, Policy, PolicyCombiningAlg, Rule, RuleCombiningAlg, Target,
};
pub use repository::{PolicyRepository, RepositoryError};
pub use request::Request;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::attribute::{AttributeCategory, AttributeValue, XmlDataType};
    pub use crate::error::XacmlError;
    pub use crate::obligation::{AttributeAssignment, Obligation};
    pub use crate::pdp::{Decision, DecisionResponse, Pdp, PolicyStore};
    pub use crate::policy::{
        AttributeMatch, Effect, Policy, PolicyCombiningAlg, Rule, RuleCombiningAlg, Target,
    };
    pub use crate::request::Request;
}
