//! Obligations.
//!
//! Obligations are the XACML escape hatch the eXACML/eXACML+ line of work
//! exploits: the PDP returns them alongside the Permit/Deny decision, and the
//! PEP must fulfil them. The paper embeds the fine-grained stream constraints
//! — filter condition, visible attributes, window specification — inside the
//! obligations block of the policy (Figure 2, Table 1).

use crate::attribute::AttributeValue;
use crate::policy::Effect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `<AttributeAssignment>` of an obligation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeAssignment {
    /// The assignment's attribute identifier
    /// (e.g. `pCloud:obligation:stream-filter-condition-id`).
    pub attribute_id: String,
    /// The assigned value.
    pub value: AttributeValue,
}

impl AttributeAssignment {
    /// Construct an assignment.
    pub fn new(attribute_id: impl Into<String>, value: AttributeValue) -> Self {
        AttributeAssignment { attribute_id: attribute_id.into(), value }
    }

    /// A string-typed assignment (the most common case in Figure 2).
    pub fn string(attribute_id: impl Into<String>, text: impl Into<String>) -> Self {
        AttributeAssignment::new(attribute_id, AttributeValue::string(text))
    }

    /// An integer-typed assignment (window size / advance step in Figure 2).
    pub fn integer(attribute_id: impl Into<String>, value: i64) -> Self {
        AttributeAssignment::new(attribute_id, AttributeValue::integer(value))
    }
}

/// An obligation returned by the PDP on a matching decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obligation {
    /// The obligation identifier (e.g. `exacml:obligation:stream-filter`).
    pub id: String,
    /// The decision the obligation applies to (`FulfillOn` in XACML).
    pub fulfill_on: Effect,
    /// The obligation's attribute assignments.
    pub assignments: Vec<AttributeAssignment>,
}

impl Obligation {
    /// A new obligation fulfilled on Permit (all of the paper's stream
    /// obligations are `FulfillOn="Permit"`).
    pub fn on_permit(id: impl Into<String>) -> Self {
        Obligation { id: id.into(), fulfill_on: Effect::Permit, assignments: Vec::new() }
    }

    /// A new obligation fulfilled on Deny.
    pub fn on_deny(id: impl Into<String>) -> Self {
        Obligation { id: id.into(), fulfill_on: Effect::Deny, assignments: Vec::new() }
    }

    /// Append an assignment (builder style).
    #[must_use]
    pub fn with_assignment(mut self, assignment: AttributeAssignment) -> Self {
        self.assignments.push(assignment);
        self
    }

    /// Append a string assignment (builder style).
    #[must_use]
    pub fn with_string(self, attribute_id: &str, text: impl Into<String>) -> Self {
        self.with_assignment(AttributeAssignment::string(attribute_id, text))
    }

    /// Append an integer assignment (builder style).
    #[must_use]
    pub fn with_integer(self, attribute_id: &str, value: i64) -> Self {
        self.with_assignment(AttributeAssignment::integer(attribute_id, value))
    }

    /// All values assigned to one attribute id, in document order (the map
    /// and window-attribute obligations repeat the same id, e.g. one
    /// `stream-map-attribute-id` per visible column).
    #[must_use]
    pub fn values_of(&self, attribute_id: &str) -> Vec<&AttributeValue> {
        self.assignments
            .iter()
            .filter(|a| a.attribute_id == attribute_id)
            .map(|a| &a.value)
            .collect()
    }

    /// The first value of an attribute id, as text.
    #[must_use]
    pub fn first_text(&self, attribute_id: &str) -> Option<&str> {
        self.values_of(attribute_id).first().map(|v| v.text.as_str())
    }

    /// The first value of an attribute id, as an integer.
    #[must_use]
    pub fn first_integer(&self, attribute_id: &str) -> Option<i64> {
        self.values_of(attribute_id).first().and_then(|v| v.as_integer())
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (FulfillOn={}, {} assignments)",
            self.id,
            self.fulfill_on,
            self.assignments.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let ob = Obligation::on_permit("exacml:obligation:stream-map")
            .with_string("pCloud:obligation:stream-map-attribute-id", "samplingtime")
            .with_string("pCloud:obligation:stream-map-attribute-id", "rainrate")
            .with_integer("pCloud:obligation:stream-window-size-id", 5);
        assert_eq!(ob.fulfill_on, Effect::Permit);
        assert_eq!(ob.values_of("pCloud:obligation:stream-map-attribute-id").len(), 2);
        assert_eq!(
            ob.first_text("pCloud:obligation:stream-map-attribute-id"),
            Some("samplingtime")
        );
        assert_eq!(ob.first_integer("pCloud:obligation:stream-window-size-id"), Some(5));
        assert_eq!(ob.first_text("nosuch"), None);
        assert!(ob.to_string().contains("stream-map"));
    }

    #[test]
    fn on_deny_sets_effect() {
        let ob = Obligation::on_deny("audit");
        assert_eq!(ob.fulfill_on, Effect::Deny);
    }
}
