//! File-backed policy repository.
//!
//! The paper's prototype stores each policy as an XACML XML file that is
//! "loaded into eXACML+ to provide access control policies to the PDP"
//! (Section 4.2). This module provides that on-disk layer: a directory of
//! `<policy-id>.xml` documents that can be listed, loaded into a
//! [`PolicyStore`], saved and removed, so data owners can manage policies
//! with ordinary file tools and the server can (re)load them at start-up.

use crate::error::XacmlError;
use crate::pdp::PolicyStore;
use crate::policy::Policy;
use crate::xml::{parse_policy, write_policy};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of policy documents.
#[derive(Debug, Clone)]
pub struct PolicyRepository {
    root: PathBuf,
}

/// Errors produced by repository operations (I/O plus policy parsing).
#[derive(Debug)]
pub enum RepositoryError {
    /// An underlying filesystem error.
    Io(io::Error),
    /// A policy document failed to parse or validate.
    Policy { file: PathBuf, error: XacmlError },
}

impl std::fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepositoryError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepositoryError::Policy { file, error } => {
                write!(f, "bad policy document {}: {error}", file.display())
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<io::Error> for RepositoryError {
    fn from(e: io::Error) -> Self {
        RepositoryError::Io(e)
    }
}

impl PolicyRepository {
    /// Open (creating if necessary) a repository rooted at `root`.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RepositoryError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(PolicyRepository { root })
    }

    /// The repository's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, policy_id: &str) -> PathBuf {
        // Keep file names safe: replace path separators and spaces.
        let safe: String = policy_id
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{safe}.xml"))
    }

    /// Persist one policy as `<policy-id>.xml` (overwriting any previous
    /// version of the same policy).
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn save(&self, policy: &Policy) -> Result<PathBuf, RepositoryError> {
        let path = self.file_for(&policy.id);
        fs::write(&path, write_policy(policy))?;
        Ok(path)
    }

    /// Load one policy by id.
    ///
    /// # Errors
    /// Fails when the file is missing, unreadable or not a valid policy.
    pub fn load(&self, policy_id: &str) -> Result<Policy, RepositoryError> {
        let path = self.file_for(policy_id);
        let text = fs::read_to_string(&path)?;
        parse_policy(&text).map_err(|error| RepositoryError::Policy { file: path, error })
    }

    /// Delete one policy document. Returns `true` when a file was removed.
    ///
    /// # Errors
    /// Fails on I/O errors other than "not found".
    pub fn remove(&self, policy_id: &str) -> Result<bool, RepositoryError> {
        match fs::remove_file(self.file_for(policy_id)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(RepositoryError::Io(e)),
        }
    }

    /// The ids (file stems) of every stored policy document, sorted.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn list(&self) -> Result<Vec<String>, RepositoryError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("xml") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Parse every stored policy document, in sorted file order.
    ///
    /// # Errors
    /// Fails on the first unreadable or invalid document.
    pub fn load_all(&self) -> Result<Vec<Policy>, RepositoryError> {
        let mut policies = Vec::new();
        for entry in self.sorted_xml_files()? {
            let text = fs::read_to_string(&entry)?;
            let policy = parse_policy(&text)
                .map_err(|error| RepositoryError::Policy { file: entry, error })?;
            policies.push(policy);
        }
        Ok(policies)
    }

    /// Load every stored policy into a [`PolicyStore`], skipping ids that are
    /// already present. Returns the number of policies added.
    ///
    /// # Errors
    /// Fails on the first unreadable or invalid document, or on a policy the
    /// store rejects for a reason other than a duplicate id.
    pub fn load_into(&self, store: &PolicyStore) -> Result<usize, RepositoryError> {
        let mut added = 0usize;
        for policy in self.load_all()? {
            if store.contains(&policy.id) {
                continue;
            }
            store
                .add(policy)
                .map_err(|error| RepositoryError::Policy { file: self.root.clone(), error })?;
            added += 1;
        }
        Ok(added)
    }

    /// Persist every policy of a store into the repository. Returns the
    /// number of documents written.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn save_store(&self, store: &PolicyStore) -> Result<usize, RepositoryError> {
        let mut written = 0usize;
        for policy in store.snapshot() {
            self.save(&policy)?;
            written += 1;
        }
        Ok(written)
    }

    fn sorted_xml_files(&self) -> Result<Vec<PathBuf>, RepositoryError> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("xml"))
            .collect();
        files.sort();
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Obligation;
    use crate::policy::{Rule, Target};

    fn temp_repo(tag: &str) -> PolicyRepository {
        let dir = std::env::temp_dir().join(format!("exacml-repo-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PolicyRepository::open(dir).unwrap()
    }

    fn sample_policy(id: &str) -> Policy {
        Policy::new(id)
            .with_description("repository test policy")
            .with_target(Target::subject_resource_action("LTA", "weather", "subscribe"))
            .with_rule(Rule::permit_all("permit"))
            .with_obligation(
                Obligation::on_permit("exacml:obligation:stream-filter")
                    .with_string("pCloud:obligation:stream-filter-condition-id", "rainrate > 5"),
            )
    }

    #[test]
    fn save_load_remove_round_trip() {
        let repo = temp_repo("rt");
        let policy = sample_policy("p-one");
        let path = repo.save(&policy).unwrap();
        assert!(path.exists());
        assert_eq!(repo.load("p-one").unwrap(), policy);
        assert_eq!(repo.list().unwrap(), vec!["p-one".to_string()]);
        assert!(repo.remove("p-one").unwrap());
        assert!(!repo.remove("p-one").unwrap());
        assert!(repo.load("p-one").is_err());
        let _ = fs::remove_dir_all(repo.root());
    }

    #[test]
    fn unsafe_ids_are_sanitised_into_file_names() {
        let repo = temp_repo("sanitise");
        let policy = sample_policy("weird/../id with spaces");
        let path = repo.save(&policy).unwrap();
        assert!(path.starts_with(repo.root()));
        assert!(path.file_name().unwrap().to_str().unwrap().ends_with(".xml"));
        // It can be loaded back under the same (unsanitised) id.
        assert_eq!(repo.load("weird/../id with spaces").unwrap().id, policy.id);
        let _ = fs::remove_dir_all(repo.root());
    }

    #[test]
    fn load_all_and_load_into_store() {
        let repo = temp_repo("store");
        for i in 0..5 {
            repo.save(&sample_policy(&format!("p{i}"))).unwrap();
        }
        assert_eq!(repo.load_all().unwrap().len(), 5);
        let store = PolicyStore::new();
        assert_eq!(repo.load_into(&store).unwrap(), 5);
        assert_eq!(store.len(), 5);
        // Loading again adds nothing (duplicates are skipped).
        assert_eq!(repo.load_into(&store).unwrap(), 0);
        let _ = fs::remove_dir_all(repo.root());
    }

    #[test]
    fn save_store_persists_everything() {
        let repo = temp_repo("save-store");
        let store = PolicyStore::new();
        for i in 0..3 {
            store.add(sample_policy(&format!("s{i}"))).unwrap();
        }
        assert_eq!(repo.save_store(&store).unwrap(), 3);
        assert_eq!(repo.list().unwrap().len(), 3);
        let _ = fs::remove_dir_all(repo.root());
    }

    #[test]
    fn corrupt_documents_are_reported_with_their_path() {
        let repo = temp_repo("corrupt");
        fs::write(repo.root().join("broken.xml"), "<NotAPolicy/>").unwrap();
        let err = repo.load_all().unwrap_err();
        assert!(matches!(err, RepositoryError::Policy { .. }));
        assert!(err.to_string().contains("broken.xml"));
        let _ = fs::remove_dir_all(repo.root());
    }
}
