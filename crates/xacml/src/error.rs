//! Error types for the XACML engine.

use std::fmt;

/// Errors produced by the XACML subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum XacmlError {
    /// A policy with this id already exists in the store.
    PolicyAlreadyExists(String),
    /// No policy with this id exists in the store.
    UnknownPolicy(String),
    /// A policy document failed structural validation.
    InvalidPolicy { policy_id: String, detail: String },
    /// A request document failed structural validation.
    InvalidRequest(String),
    /// The XML text could not be parsed.
    XmlParse { position: usize, detail: String },
    /// The XML document parsed but does not have the expected structure.
    XmlStructure(String),
    /// A data-type URI was not recognised.
    UnknownDataType(String),
}

impl fmt::Display for XacmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XacmlError::PolicyAlreadyExists(id) => write!(f, "policy '{id}' already exists"),
            XacmlError::UnknownPolicy(id) => write!(f, "unknown policy '{id}'"),
            XacmlError::InvalidPolicy { policy_id, detail } => {
                write!(f, "invalid policy '{policy_id}': {detail}")
            }
            XacmlError::InvalidRequest(detail) => write!(f, "invalid request: {detail}"),
            XacmlError::XmlParse { position, detail } => {
                write!(f, "XML parse error at offset {position}: {detail}")
            }
            XacmlError::XmlStructure(detail) => write!(f, "unexpected XML structure: {detail}"),
            XacmlError::UnknownDataType(uri) => write!(f, "unknown data type '{uri}'"),
        }
    }
}

impl std::error::Error for XacmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(XacmlError::UnknownPolicy("p1".into()).to_string().contains("p1"));
        assert!(XacmlError::XmlParse { position: 10, detail: "x".into() }
            .to_string()
            .contains("offset 10"));
    }
}
