//! Snapshots: the compacted logical state of a durable server.
//!
//! A snapshot folds the whole journal history into the state that still
//! matters — registered streams, the loaded policies in store order, the
//! *live* grants, the audit trail, and the counters replay must resume
//! (journal sequence, store revision, deployment ids). Everything released,
//! removed or superseded before the snapshot is simply absent, which is
//! what keeps replay bounded: recovery cost is proportional to the live
//! state plus the WAL tail since the last snapshot, never to the server's
//! lifetime.
//!
//! The snapshot is one framed line (the WAL's checksum framing) written to
//! a temporary file, fsynced, and atomically renamed over `snapshot.json` —
//! a crash leaves either the old snapshot or the new one, never a torn mix.
//! The WAL is reset only *after* the rename; a crash in between is safe
//! because every WAL record's sequence number is compared against the
//! snapshot's [`Snapshot::wal_horizon`] during replay, so already-folded
//! records are skipped, not applied twice.

use crate::record::{decode_audit_event, decode_grant, decode_schema, GrantRecord};
use crate::wal::{frame, unframe};
use exacml_dsms::Schema;
use exacml_plus::AuditEvent;
use serde::Serialize;
use serde_json::Value;
use std::path::Path;

/// A registered input stream, as carried in snapshots.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamEntry {
    /// The stream name.
    pub name: String,
    /// Its schema.
    pub schema: Schema,
}

/// The compacted logical state of a durable server.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Snapshot {
    /// Snapshot format version.
    pub version: u64,
    /// The journal horizon: every WAL record with `seq < wal_horizon` is
    /// already folded into this snapshot and is skipped during replay.
    pub wal_horizon: u64,
    /// The policy store's revision counter at snapshot time (restored so
    /// decision caches built before the crash stay invalidated).
    pub store_revision: u64,
    /// One past the largest deployment id ever minted (so released handles
    /// are never re-issued after recovery).
    pub next_deployment_id: u64,
    /// One past the largest handle serial ever journaled — including
    /// grants released before this snapshot. Recovery adopts live grants'
    /// URIs verbatim, so the serial counter must clear every serial that
    /// was ever handed out or a fresh mint could resurrect a retired URI.
    pub next_handle_serial: u64,
    /// Registered input streams, sorted by name.
    pub streams: Vec<StreamEntry>,
    /// Loaded policies in store order (first-applicable combining is order
    /// dependent), each as its XACML document.
    pub policies: Vec<String>,
    /// Live grants in grant order (replay order). Under plan sharing
    /// several grants may carry the same deployment id.
    pub grants: Vec<GrantRecord>,
    /// The audit trail, verbatim.
    pub audit: Vec<AuditEvent>,
}

/// Write a snapshot atomically: temporary file, fsync, rename.
///
/// # Errors
/// Propagates I/O errors and unencodable floats.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), String> {
    let payload = serde_json::to_string(snapshot).map_err(|e| e.to_string())?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, frame(&payload)).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(&tmp).map_err(|e| e.to_string())?;
    file.sync_all().map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, path).map_err(|e| e.to_string())
}

/// Read a snapshot back. A missing file reads as `None` (genesis recovery);
/// a present but unreadable one is an error — unlike a torn WAL tail it
/// cannot be partially salvaged, and silently starting empty would violate
/// the durability promise.
///
/// # Errors
/// Fails on I/O errors, checksum mismatches and vocabulary mismatches.
pub fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.to_string()),
    };
    let payload = unframe(text.trim_end_matches('\n'))
        .ok_or_else(|| format!("{}: snapshot frame or checksum mismatch", path.display()))?;
    let value = serde_json::from_str(payload).map_err(|e| e.to_string())?;
    decode_snapshot(&value).map(Some)
}

fn u64_of(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("snapshot is missing numeric '{key}'"))
}

fn seq_of<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("snapshot is missing array '{key}'"))
}

fn decode_snapshot(value: &Value) -> Result<Snapshot, String> {
    let mut streams = Vec::new();
    for entry in seq_of(value, "streams")? {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "stream entry without a name".to_string())?;
        let schema = decode_schema(
            entry.get("schema").ok_or_else(|| "stream entry without a schema".to_string())?,
        )?;
        streams.push(StreamEntry { name: name.to_string(), schema });
    }
    let policies = seq_of(value, "policies")?
        .iter()
        .map(|p| p.as_str().map(str::to_string).ok_or_else(|| "policy is not a string".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let grants =
        seq_of(value, "grants")?.iter().map(decode_grant).collect::<Result<Vec<_>, _>>()?;
    let audit =
        seq_of(value, "audit")?.iter().map(decode_audit_event).collect::<Result<Vec<_>, _>>()?;
    let next_deployment_id = u64_of(value, "next_deployment_id")?;
    // Stores written before plan sharing minted handle serials in lockstep
    // with deployment ids, so their implied next serial is that counter.
    let next_handle_serial = value
        .get("next_handle_serial")
        .and_then(Value::as_f64)
        .map_or(next_deployment_id, |f| f as u64);
    Ok(Snapshot {
        version: u64_of(value, "version")?,
        wal_horizon: u64_of(value, "wal_horizon")?,
        store_revision: u64_of(value, "store_revision")?,
        next_deployment_id,
        next_handle_serial,
        streams,
        policies,
        grants,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_plus::AuditEventKind;
    use std::path::PathBuf;

    fn temp_snapshot(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exacml-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snapshot.json")
    }

    fn sample() -> Snapshot {
        Snapshot {
            version: 1,
            wal_horizon: 42,
            store_revision: 7,
            next_deployment_id: 12,
            next_handle_serial: 25,
            streams: vec![StreamEntry {
                name: "weather".into(),
                schema: Schema::weather_example(),
            }],
            policies: vec!["<Policy PolicyId=\"p\"/>".into()],
            grants: vec![GrantRecord {
                subject: "LTA".into(),
                stream: "weather".into(),
                query_xml: None,
                deployment: 11,
                handle: "exacml://dsms/streams/11".into(),
            }],
            audit: vec![AuditEvent {
                sequence: 3,
                timestamp_ms: 123,
                kind: AuditEventKind::Granted,
                subject: Some("LTA".into()),
                stream: Some("weather".into()),
                policy_id: Some("p".into()),
                detail: "handle exacml://dsms/streams/11".into(),
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let path = temp_snapshot("rt");
        assert!(read_snapshot(&path).unwrap().is_none());
        let snapshot = sample();
        write_snapshot(&path, &snapshot).unwrap();
        let read = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(read.wal_horizon, snapshot.wal_horizon);
        assert_eq!(read.store_revision, snapshot.store_revision);
        assert_eq!(read.next_deployment_id, snapshot.next_deployment_id);
        assert_eq!(read.next_handle_serial, snapshot.next_handle_serial);
        assert_eq!(read.streams, snapshot.streams);
        assert_eq!(read.policies, snapshot.policies);
        assert_eq!(read.grants, snapshot.grants);
        assert_eq!(read.audit, snapshot.audit);
        // No leftover temporary file.
        assert!(!path.with_extension("json.tmp").exists());
    }

    #[test]
    fn old_snapshots_without_a_serial_counter_default_to_the_deployment_counter() {
        // Stores written before plan sharing carry no next_handle_serial;
        // their serials ran in lockstep with deployment ids.
        let path = temp_snapshot("old");
        let payload = r#"{"version":1,"wal_horizon":0,"store_revision":0,"next_deployment_id":9,"streams":[],"policies":[],"grants":[],"audit":[]}"#;
        std::fs::write(&path, frame(payload)).unwrap();
        let read = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(read.next_deployment_id, 9);
        assert_eq!(read.next_handle_serial, 9);
    }

    #[test]
    fn corrupt_snapshots_are_errors_not_empty_stores() {
        let path = temp_snapshot("bad");
        write_snapshot(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).unwrap_err().contains("checksum"));
    }
}
