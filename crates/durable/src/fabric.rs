//! [`ReplicatedFabric`]: a brokering fabric of durable nodes that survives
//! losing one.
//!
//! The plain [`Fabric`](exacml_plus::Fabric) scales the enforcement point
//! out to N nodes but a dead node takes its streams, grants and audit trail
//! with it. This module closes that gap by combining the two existing
//! layers:
//!
//! * each **logical node** `i` runs a [`DurableServer`] journaling every
//!   state-mutating operation (PR 5's WAL + snapshot store), minting handle
//!   URIs under the stable host name `node{i}`;
//! * a [`ReplicaMirror`] per peer ships the journal's bytes to K other
//!   **physical hosts** over the simulated topology — control-plane records
//!   synchronously (the broker waits for the ack in virtual time, so an
//!   acknowledged grant is always on K+1 disks), ingest records in
//!   batches (bounded lag, surfaced as
//!   [`RobustnessStats::replication_lag_records`]);
//! * when the broker finds a node's host **dead**, it *fails over*: the
//!   first surviving peer holding a replica replays the shipped journal
//!   through the ordinary recovery workflow
//!   ([`DurableServer::recover_with`]), re-minting the dead node's handles
//!   at their recorded URIs — the logical node keeps its identity,
//!   rendezvous ownership and audit trail, only its physical host changes.
//!
//! Subscribers whose node failed over re-subscribe with their (unchanged)
//! handle and are re-attached to the adopter. Transient faults from an
//! installed [`FaultPlan`] degrade to retried hops exactly as on the plain
//! fabric; `Fault::Crash` windows go further and kill the scheduled host at
//! their virtual-clock instant, which is what the chaos tests drive.

use crate::replication::ReplicaMirror;
use crate::server::{DurableConfig, DurableServer};
use exacml_dsms::{Schema, StreamHandle, Tuple};
use exacml_plus::{
    rendezvous_owner, AccessControl, Backend, BackendHealth, BackendResponse, ExacmlError,
    FabricSubscription, PolicyAdmin, RetryPolicy, RobustnessStats, ShardedMap, StreamBackend,
    StreamBatch, Subscription, TaggedAuditEvent, UserQuery,
};
use exacml_simnet::{Clock, FaultPlan, ManualClock, NodeId, SimLink, Topology};
use exacml_telemetry::{Metric, Stage, Telemetry, TelemetrySnapshot};
use exacml_xacml::{Policy, Request};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a replicated durable fabric.
#[derive(Debug, Clone)]
pub struct ReplicatedConfig {
    /// Logical nodes (and initial physical hosts) behind the broker.
    pub nodes: usize,
    /// Replication factor K: every logical node's journal is mirrored onto
    /// K peer hosts (clamped to `nodes - 1`). K = 0 disables replication —
    /// a dead host then loses its nodes exactly like the plain fabric.
    pub replication: usize,
    /// Root directory; host `p` stores its primary under `node{p}/store`
    /// and its mirror of logical node `i` under `node{p}/replica-of-{i}`.
    pub root: PathBuf,
    /// Topology the broker, nodes and shipping links live on.
    pub topology: Topology,
    /// Base seed; nodes and links derive deterministic sub-seeds.
    pub seed: u64,
    /// Per-node durable-store template (`dsms_host` and `seed` are
    /// overridden per node so URIs stay stable across failover).
    pub durable_template: DurableConfig,
    /// Injected-fault schedule, consulted against the fabric's virtual
    /// clock on every broker hop and shipping send.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Retry/backoff for broker→node hops and shipping sends under faults.
    pub retry: RetryPolicy,
    /// Ship buffered ingest records after this many unshipped journal
    /// appends (control-plane records always ship immediately).
    pub ingest_ship_every: u64,
}

impl ReplicatedConfig {
    /// A replicated fabric of `nodes` nodes under `root`, loopback links,
    /// K = 1.
    #[must_use]
    pub fn new(nodes: usize, root: impl Into<PathBuf>) -> Self {
        ReplicatedConfig {
            nodes: nodes.max(1),
            replication: 1,
            root: root.into(),
            topology: Topology::local(),
            seed: 42,
            durable_template: DurableConfig::local(),
            fault_plan: None,
            retry: RetryPolicy::default(),
            ingest_ship_every: 256,
        }
    }

    /// Override the replication factor K.
    #[must_use]
    pub fn with_replication(mut self, k: usize) -> Self {
        self.replication = k;
        self
    }

    /// Override the topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Override the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-node durable-store template.
    #[must_use]
    pub fn with_durable_template(mut self, template: DurableConfig) -> Self {
        self.durable_template = template;
        self
    }

    /// Install an injected-fault schedule.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the ingest shipping batch threshold.
    #[must_use]
    pub fn with_ingest_ship_every(mut self, records: u64) -> Self {
        self.ingest_ship_every = records.max(1);
        self
    }

    /// The effective replication factor (K clamped to the peer count).
    #[must_use]
    pub fn effective_replication(&self) -> usize {
        self.replication.min(self.nodes.saturating_sub(1))
    }
}

/// Where a logical node currently lives.
struct Slot {
    server: Arc<DurableServer>,
    host: usize,
}

/// The shipping state of one logical node: its peer mirrors and the count
/// of ingest appends not yet shipped.
struct NodeShipper {
    mirrors: Vec<ReplicaMirror>,
    unshipped_ingest: u64,
}

/// A fabric of [`DurableServer`] nodes with WAL shipping and owner
/// failover. See the module docs for the failure model.
pub struct ReplicatedFabric {
    config: ReplicatedConfig,
    clock: ManualClock,
    /// Logical node `i` → its current server and physical host.
    slots: Vec<RwLock<Slot>>,
    /// Logical node `i` → its replication state.
    shippers: Vec<Mutex<NodeShipper>>,
    /// Physical host `p` → alive?
    hosts_alive: Vec<AtomicBool>,
    /// Granted handle → owning *logical* node (stable across failover).
    /// Sharded like the plain fabric's broker tables, so concurrent
    /// subscribe/release lookups for different handles never serialise.
    handles: ShardedMap<StreamHandle, usize>,
    /// Samples broker↔node and shipping delays.
    rng: Mutex<StdRng>,
    next_link_seed: AtomicU64,
    /// `Fault::Crash` windows already applied (edge-triggered kills).
    crashes_applied: Mutex<HashSet<usize>>,
    failovers_completed: AtomicU64,
    handles_reminted: AtomicU64,
    batches_acked: AtomicU64,
    batches_retried: AtomicU64,
    broker_retries: AtomicU64,
    /// Broker-level registry: request routing (virtual durations) and
    /// replica shipping (wall-clock I/O). Per-node stages live in each
    /// slot server's registry; [`Backend::telemetry`] aggregates.
    telemetry: Arc<Telemetry>,
}

impl ReplicatedFabric {
    /// Create a fresh replicated fabric: one durable store per node under
    /// `config.root`, mirrors attached to each node's K ring successors.
    ///
    /// # Errors
    /// Fails when `root` already holds stores, or on I/O errors.
    pub fn create(config: ReplicatedConfig) -> Result<Self, ExacmlError> {
        let nodes = config.nodes;
        let k = config.effective_replication();
        let mut slots = Vec::with_capacity(nodes);
        let mut shippers = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let store = config.root.join(format!("node{i}")).join("store");
            let server = DurableServer::create(store, node_config(&config, i))?;
            slots.push(RwLock::new(Slot { server: Arc::new(server), host: i }));
            let mirrors = ring_peers(i, i, nodes, k)
                .map(|p| ReplicaMirror::new(p, replica_dir(&config.root, p, i)))
                .collect();
            shippers.push(Mutex::new(NodeShipper { mirrors, unshipped_ingest: 0 }));
        }
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9));
        let fabric = ReplicatedFabric {
            clock: ManualClock::new(),
            slots,
            shippers,
            hosts_alive: (0..nodes).map(|_| AtomicBool::new(true)).collect(),
            handles: ShardedMap::new(),
            rng: Mutex::new(rng),
            next_link_seed: AtomicU64::new(config.seed.wrapping_add(0xf00d)),
            crashes_applied: Mutex::new(HashSet::new()),
            failovers_completed: AtomicU64::new(0),
            handles_reminted: AtomicU64::new(0),
            batches_acked: AtomicU64::new(0),
            batches_retried: AtomicU64::new(0),
            broker_retries: AtomicU64::new(0),
            telemetry: Arc::new(Telemetry::new()),
            config,
        };
        // Attach every mirror now: a node that dies before its first
        // control-plane operation must still leave a recoverable replica.
        for i in 0..nodes {
            fabric.ship_node(i, true);
        }
        Ok(fabric)
    }

    // --- observability ------------------------------------------------------

    /// The fabric's configuration.
    #[must_use]
    pub fn config(&self) -> &ReplicatedConfig {
        &self.config
    }

    /// The fabric's virtual clock (shared with subscriptions).
    #[must_use]
    pub fn clock(&self) -> &ManualClock {
        &self.clock
    }

    /// Advance the virtual clock.
    pub fn advance(&self, by: Duration) {
        self.clock.advance(by);
    }

    /// Number of logical nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// The physical host a logical node currently lives on.
    #[must_use]
    pub fn host_of(&self, logical: usize) -> usize {
        self.slots[logical].read().host
    }

    /// The logical node owning a stream (rendezvous hashing over *logical*
    /// nodes, so ownership survives any number of host changes).
    #[must_use]
    pub fn owner_of(&self, stream: &str) -> NodeId {
        NodeId::Server(rendezvous_owner(stream, self.config.nodes) as u16)
    }

    /// The durable server currently backing a logical node (triggers
    /// failover when its host is dead).
    ///
    /// # Errors
    /// [`ExacmlError::NodeUnavailable`] when the node's host is dead and no
    /// live replica exists, or a fault window outlasts the retry budget.
    pub fn node_server(&self, logical: usize) -> Result<Arc<DurableServer>, ExacmlError> {
        self.server_of(logical)
    }

    /// Live grants across the fabric, in grant order per node.
    #[must_use]
    pub fn live_grants(&self) -> Vec<crate::record::GrantRecord> {
        (0..self.config.nodes).flat_map(|i| self.slots[i].read().server.live_grants()).collect()
    }

    /// Fault-tolerance counters, including the current replication lag.
    #[must_use]
    pub fn robustness(&self) -> RobustnessStats {
        RobustnessStats {
            failovers_completed: self.failovers_completed.load(Ordering::Relaxed),
            handles_reminted: self.handles_reminted.load(Ordering::Relaxed),
            replication_batches_acked: self.batches_acked.load(Ordering::Relaxed),
            replication_batches_retried: self.batches_retried.load(Ordering::Relaxed),
            replication_lag_records: self.replication_lag(),
            broker_retries: self.broker_retries.load(Ordering::Relaxed),
        }
    }

    /// Journal records appended on primaries but not yet acknowledged by
    /// every mirror, summed across the fabric.
    #[must_use]
    pub fn replication_lag(&self) -> u64 {
        let mut lag = 0u64;
        for i in 0..self.config.nodes {
            let slot = self.slots[i].read();
            let seq = slot.server.journal_seq();
            for mirror in &self.shippers[i].lock().mirrors {
                lag += seq.saturating_sub(mirror.acked_seq());
            }
        }
        lag
    }

    /// Logical nodes currently hosted on a dead physical host (they will
    /// fail over on their next touch) or behind an active fault window.
    #[must_use]
    pub fn degraded_nodes(&self) -> Vec<NodeId> {
        let now = self.clock.now_nanos();
        (0..self.config.nodes)
            .filter(|&i| {
                let host = self.slots[i].read().host;
                !self.host_is_alive(host)
                    || self.config.fault_plan.as_ref().is_some_and(|plan| {
                        plan.link_down(NodeId::DataServer, NodeId::Server(host as u16), now)
                    })
            })
            .map(|i| NodeId::Server(i as u16))
            .collect()
    }

    // --- liveness -----------------------------------------------------------

    /// Whether a physical host is alive.
    #[must_use]
    pub fn host_is_alive(&self, host: usize) -> bool {
        self.hosts_alive.get(host).is_some_and(|alive| alive.load(Ordering::Relaxed))
    }

    /// Kill a physical host: its disk becomes unreachable, every logical
    /// node it hosts fails over to a surviving replica on its next touch,
    /// and mirrors it held stop acknowledging ships (lag grows).
    pub fn kill_node(&self, host: usize) {
        if let Some(alive) = self.hosts_alive.get(host) {
            alive.store(false, Ordering::Relaxed);
        }
    }

    /// Bring a physical host back, *empty*: whatever its disk held when it
    /// died is stale (failover moved its nodes elsewhere, journals moved
    /// on), so every mirror it hosts is re-attached from scratch on the
    /// next ship. The host immediately starts accepting mirrors again.
    pub fn restart_node(&self, host: usize) {
        let Some(alive) = self.hosts_alive.get(host) else { return };
        alive.store(true, Ordering::Relaxed);
        for shipper in &self.shippers {
            for mirror in shipper.lock().mirrors.iter_mut() {
                if mirror.host() == host {
                    mirror.detach();
                }
            }
        }
    }

    /// Apply `Fault::Crash` windows whose start the virtual clock has
    /// passed: each kills its host once (edge-triggered, like pulling the
    /// power at that instant).
    fn apply_crash_schedule(&self) {
        let Some(plan) = &self.config.fault_plan else { return };
        let now = self.clock.now_nanos();
        let mut applied = self.crashes_applied.lock();
        for (index, node, from, _) in plan.crash_windows() {
            if from <= now && !applied.contains(&index) {
                if let NodeId::Server(host) = node {
                    self.kill_node(host as usize);
                }
                applied.insert(index);
            }
        }
    }

    /// Probe the broker→host hop, retrying active fault windows with
    /// exponential backoff in virtual time (mirrors
    /// `Fabric::ensure_reachable`).
    fn ensure_host_reachable(&self, host: usize, logical: usize) -> Result<(), ExacmlError> {
        if !self.host_is_alive(host) {
            return Err(ExacmlError::NodeUnavailable {
                node: NodeId::Server(logical as u16).to_string(),
                detail: format!("host {host} is dead"),
            });
        }
        let Some(plan) = &self.config.fault_plan else { return Ok(()) };
        let target = NodeId::Server(host as u16);
        let retry = self.config.retry;
        let mut attempt: u32 = 0;
        loop {
            if !plan.link_down(NodeId::DataServer, target, self.clock.now_nanos()) {
                if attempt > 0 {
                    self.broker_retries.fetch_add(u64::from(attempt), Ordering::Relaxed);
                }
                return Ok(());
            }
            attempt += 1;
            if attempt >= retry.max_attempts.max(1) {
                self.broker_retries.fetch_add(u64::from(attempt - 1), Ordering::Relaxed);
                return Err(ExacmlError::NodeUnavailable {
                    node: NodeId::Server(logical as u16).to_string(),
                    detail: format!(
                        "broker hop to host {host} still faulted after {attempt} attempt(s)"
                    ),
                });
            }
            self.clock.advance(retry.backoff * 2u32.pow(attempt - 1));
        }
    }

    /// The server backing a logical node, failing over first when its host
    /// is dead.
    fn server_of(&self, logical: usize) -> Result<Arc<DurableServer>, ExacmlError> {
        self.apply_crash_schedule();
        let (server, host) = {
            let slot = self.slots[logical].read();
            (Arc::clone(&slot.server), slot.host)
        };
        if self.host_is_alive(host) {
            self.ensure_host_reachable(host, logical)?;
            return Ok(server);
        }
        self.fail_over(logical)
    }

    // --- failover -----------------------------------------------------------

    /// Move a logical node whose host died onto the first surviving peer
    /// holding its replica: replay the shipped journal through the ordinary
    /// recovery workflow, re-minting every live handle at its recorded URI,
    /// then re-attach fresh mirrors from the adopter.
    fn fail_over(&self, logical: usize) -> Result<Arc<DurableServer>, ExacmlError> {
        let mut slot = self.slots[logical].write();
        // Another thread may have completed the failover while we waited.
        if self.host_is_alive(slot.host) {
            return Ok(Arc::clone(&slot.server));
        }
        let mut shipper = self.shippers[logical].lock();
        let adopter = shipper
            .mirrors
            .iter()
            .find(|mirror| self.host_is_alive(mirror.host()))
            .map(|mirror| (mirror.host(), mirror.dir().to_path_buf()))
            .ok_or_else(|| ExacmlError::NodeUnavailable {
                node: NodeId::Server(logical as u16).to_string(),
                detail: format!(
                    "host {} is dead and no live replica remains (K = {})",
                    slot.host,
                    self.config.effective_replication()
                ),
            })?;
        let (adopter_host, replica) = adopter;
        let recovered = DurableServer::recover_with(replica, node_config(&self.config, logical))?;
        self.failovers_completed.fetch_add(1, Ordering::Relaxed);
        self.handles_reminted.fetch_add(recovered.live_grants().len() as u64, Ordering::Relaxed);
        slot.server = Arc::new(recovered);
        slot.host = adopter_host;
        // The adopter's former mirror directory is now the primary store;
        // re-home the replica set on the adopter's ring successors.
        shipper.mirrors = ring_peers(logical, adopter_host, self.config.nodes, {
            self.config.effective_replication()
        })
        .map(|p| ReplicaMirror::new(p, replica_dir(&self.config.root, p, logical)))
        .collect();
        shipper.unshipped_ingest = 0;
        let server = Arc::clone(&slot.server);
        drop(slot);
        drop(shipper);
        self.ship_node(logical, true);
        Ok(server)
    }

    // --- replication --------------------------------------------------------

    /// Ship a logical node's journal to its mirrors. `sync` ships charge
    /// the link's round trip on the virtual clock (the broker waits for the
    /// ack); batched ingest ships do not (they model a background pipe).
    /// A mirror behind a dead host or an exhausted fault window is skipped
    /// — the batch stays pending and the lag metric grows.
    fn ship_node(&self, logical: usize, sync: bool) {
        let slot = self.slots[logical].read();
        if !self.host_is_alive(slot.host) {
            return;
        }
        if slot.server.flush_journal().is_err() {
            // A sticky journal failure: the primary cannot even flush; its
            // mirrors keep whatever they acknowledged last.
            return;
        }
        let from = NodeId::Server(slot.host as u16);
        let mut shipper = self.shippers[logical].lock();
        shipper.unshipped_ingest = 0;
        for mirror in shipper.mirrors.iter_mut() {
            if !self.host_is_alive(mirror.host()) {
                self.batches_retried.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let to = NodeId::Server(mirror.host() as u16);
            if !self.await_link(from, to) {
                self.batches_retried.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Shipping copies journal bytes — real I/O, timed on the wall
            // clock like WAL appends (the *round trip* charged below for
            // sync ships stays on the virtual clock).
            let started = self.telemetry.is_enabled().then(Instant::now);
            let shipped = mirror.ship_from(&slot.server);
            if let Some(started) = started {
                self.telemetry.record(Stage::ReplicaShip, started.elapsed());
            }
            match shipped {
                Ok(outcome) => {
                    if outcome.shipped_anything() {
                        self.telemetry.incr(Metric::ReplicaBatchesShipped);
                        self.batches_acked.fetch_add(1, Ordering::Relaxed);
                        if sync {
                            let delay =
                                self.sample_ship_round_trip(from, to, outcome.wal_bytes as usize);
                            self.clock.advance(delay);
                        }
                    }
                }
                Err(_) => {
                    self.batches_retried.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Ship every node's outstanding journal bytes now (tests and benches
    /// call this to bound ingest lag before measuring or killing).
    pub fn settle_replication(&self) {
        for i in 0..self.config.nodes {
            self.ship_node(i, false);
        }
    }

    /// Wait out fault windows on a shipping link, retrying with backoff in
    /// virtual time. `true` when the link came up within the budget.
    fn await_link(&self, from: NodeId, to: NodeId) -> bool {
        let Some(plan) = &self.config.fault_plan else { return true };
        let retry = self.config.retry;
        let mut attempt: u32 = 0;
        loop {
            if !plan.link_down(from, to, self.clock.now_nanos()) {
                return true;
            }
            attempt += 1;
            if attempt >= retry.max_attempts.max(1) {
                return false;
            }
            self.clock.advance(retry.backoff * 2u32.pow(attempt - 1));
        }
    }

    /// Sample the shipping round trip (batch out, ack back), scaled by any
    /// active latency spike.
    fn sample_ship_round_trip(&self, from: NodeId, to: NodeId, bytes: usize) -> Duration {
        let mut rng = self.rng.lock();
        let sampled = self.config.topology.round_trip(from, to, bytes, 64, &mut *rng);
        match &self.config.fault_plan {
            Some(plan) => {
                let factor = plan.latency_factor(from, to, self.clock.now_nanos());
                sampled.mul_f64(factor.max(0.0))
            }
            None => sampled,
        }
    }

    /// Sample the broker→node→broker round trip for a routed request.
    fn broker_round_trip(&self, host: usize, request_bytes: usize) -> Duration {
        let node = NodeId::Server(host as u16);
        let mut rng = self.rng.lock();
        let sampled = self.config.topology.round_trip(
            NodeId::DataServer,
            node,
            request_bytes,
            128,
            &mut *rng,
        );
        match &self.config.fault_plan {
            Some(plan) => {
                let factor = plan.latency_factor(NodeId::DataServer, node, self.clock.now_nanos());
                sampled.mul_f64(factor.max(0.0))
            }
            None => sampled,
        }
    }

    // --- the brokered operations -------------------------------------------

    fn owner_index(&self, stream: &str) -> usize {
        rendezvous_owner(stream, self.config.nodes)
    }

    /// Register an input stream on its owning logical node (journaled and
    /// shipped before the call returns).
    ///
    /// # Errors
    /// As the node's own registration, plus
    /// [`ExacmlError::NodeUnavailable`].
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        let owner = self.owner_index(name);
        let server = self.server_of(owner)?;
        DurableServer::register_stream(&server, name, schema)?;
        self.ship_node(owner, true);
        Ok(NodeId::Server(owner as u16))
    }

    /// Push one source tuple to the stream's owner node. The ingest record
    /// ships to the mirrors in batches (see
    /// [`ReplicatedConfig::ingest_ship_every`]).
    ///
    /// # Errors
    /// As the node's own push, plus [`ExacmlError::NodeUnavailable`].
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        let owner = self.owner_index(stream);
        let server = self.server_of(owner)?;
        let emitted = DurableServer::push(&server, stream, tuple)?;
        self.note_ingest(owner, 1);
        Ok(emitted)
    }

    /// Push a batch of source tuples to the stream's owner node.
    ///
    /// # Errors
    /// As the node's own push, plus [`ExacmlError::NodeUnavailable`].
    pub fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        let owner = self.owner_index(stream);
        let server = self.server_of(owner)?;
        let emitted = DurableServer::push_batch(&server, stream, tuples)?;
        self.note_ingest(owner, 1);
        Ok(emitted)
    }

    /// Route a multi-stream ingest call: group the batches by their
    /// rendezvous-hashed logical owner and land each group on its node in
    /// **one** call — one slot lookup (with at most one lazy failover
    /// probe), one journal session, and one shipper-ledger update per
    /// `(node, call)` group instead of one per stream. WAL shipping
    /// therefore amortises over the whole group, the batched counterpart of
    /// the plain fabric's one-frame-per-node routing.
    ///
    /// # Errors
    /// As [`ReplicatedFabric::push_batch`]; batches applied before a
    /// failing one stay applied (and journaled) exactly as separate calls
    /// would have left them.
    pub fn push_batches(&self, batches: Vec<StreamBatch>) -> Result<usize, ExacmlError> {
        let mut per_node: HashMap<usize, Vec<StreamBatch>> = HashMap::new();
        for batch in batches {
            if batch.tuples.is_empty() {
                continue;
            }
            per_node.entry(self.owner_index(&batch.stream)).or_default().push(batch);
        }
        let mut owners: Vec<usize> = per_node.keys().copied().collect();
        owners.sort_unstable();
        let mut emitted = 0;
        for &owner in &owners {
            let group = per_node.remove(&owner).expect("grouped above");
            let server = self.server_of(owner)?;
            for batch in group {
                emitted += DurableServer::push_batch(&server, &batch.stream, batch.tuples)?;
            }
            self.note_ingest(owner, 1);
        }
        Ok(emitted)
    }

    /// Count an ingest append and ship the batch once the threshold is
    /// reached.
    fn note_ingest(&self, logical: usize, appends: u64) {
        let due = {
            let mut shipper = self.shippers[logical].lock();
            shipper.unshipped_ingest += appends;
            shipper.unshipped_ingest >= self.config.ingest_ship_every
        };
        if due {
            self.ship_node(logical, false);
        }
    }

    /// Route an access request to the owner node, journal + ship the grant
    /// synchronously (an acknowledged grant is on K+1 disks), and charge
    /// the broker hop.
    ///
    /// # Errors
    /// Propagates the owner's workflow errors, plus
    /// [`ExacmlError::NodeUnavailable`].
    pub fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        let stream = request
            .resource_id()
            .ok_or_else(|| ExacmlError::IncompleteRequest("missing resource-id".into()))?;
        let owner = self.owner_index(stream);
        let server = self.server_of(owner)?;
        let host = self.slots[owner].read().host;
        let request_bytes = exacml_xacml::xml::write_request(request).len()
            + user_query.map_or(0, |q| q.to_xml().len());
        let broker_network = self.broker_round_trip(host, request_bytes);
        self.telemetry.record(Stage::BrokerRoute, broker_network);
        self.telemetry.incr(Metric::BrokerFrames);
        let response = DurableServer::handle_request(&server, request, user_query)?;
        self.handles.insert(response.response.handle.clone(), owner);
        self.ship_node(owner, true);
        Ok(BackendResponse {
            node: NodeId::Server(owner as u16),
            response: response.response,
            broker_network,
        })
    }

    /// Release a subject's access on a stream at its owner node (journaled
    /// and shipped). `false` when nothing was held or the owner is
    /// unreachable with no replica.
    pub fn release_access(&self, subject: &str, stream: &str) -> bool {
        let owner = self.owner_index(stream);
        let Ok(server) = self.server_of(owner) else { return false };
        let released = DurableServer::release_access(&server, subject, stream);
        if released {
            self.ship_node(owner, true);
            self.handles.retain(|handle, &index| index != owner || server.handle_is_live(handle));
        }
        released
    }

    /// Whether a granted handle still points at a live deployment —
    /// *including* after a failover re-minted it on another host.
    #[must_use]
    pub fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        let Some(owner) = self.handles.get(handle) else { return false };
        self.server_of(owner).is_ok_and(|server| server.handle_is_live(handle))
    }

    /// Subscribe to a granted handle; deliveries travel the node→broker
    /// link. After a failover, re-subscribing with the same handle attaches
    /// to the adopter.
    ///
    /// # Errors
    /// [`ExacmlError::UnknownHandle`] for handles not granted here or
    /// withdrawn; [`ExacmlError::NodeUnavailable`] when the owner is gone
    /// with no replica.
    pub fn subscribe(&self, handle: &StreamHandle) -> Result<FabricSubscription, ExacmlError> {
        let owner = self
            .handles
            .get(handle)
            .ok_or_else(|| ExacmlError::UnknownHandle(handle.uri().to_string()))?;
        let server = self.server_of(owner)?;
        let rx = match server.inner().subscribe(handle) {
            Ok(rx) => rx,
            Err(error) => {
                if matches!(error, ExacmlError::Dsms(exacml_dsms::DsmsError::UnknownHandle(_))) {
                    self.handles.remove(handle);
                    return Err(ExacmlError::UnknownHandle(handle.uri().to_string()));
                }
                return Err(error);
            }
        };
        let node = NodeId::Server(owner as u16);
        let link_spec = self.config.topology.link(node, NodeId::DataServer);
        let seed = self.next_link_seed.fetch_add(1, Ordering::Relaxed);
        Ok(FabricSubscription::attach(node, rx, SimLink::new(link_spec, seed), self.clock.clone()))
    }

    // --- policy plane (fabric-wide propagation) -----------------------------

    /// The servers of every logical node, failing over dead-hosted ones
    /// first, so a fan-out either reaches all nodes or fails typed before
    /// mutating any of them.
    fn all_servers(&self) -> Result<Vec<Arc<DurableServer>>, ExacmlError> {
        (0..self.config.nodes).map(|i| self.server_of(i)).collect()
    }

    /// Load a policy on **every** node (journaled and shipped per node).
    ///
    /// # Errors
    /// As [`exacml_plus::Fabric::load_policy`].
    pub fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        let servers = self.all_servers()?;
        let mut slowest = Duration::ZERO;
        for (i, server) in servers.iter().enumerate() {
            slowest = slowest.max(DurableServer::load_policy(server, policy.clone())?);
            self.ship_node(i, true);
        }
        Ok(slowest)
    }

    /// Load a policy from its XML document on every node.
    ///
    /// # Errors
    /// As [`ReplicatedFabric::load_policy`].
    pub fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        self.load_policy(exacml_xacml::xml::parse_policy(xml)?)
    }

    /// Remove a policy on **every** node, withdrawing its graphs wherever
    /// they live. Returns the fabric-wide withdrawn count.
    ///
    /// # Errors
    /// As [`exacml_plus::Fabric::remove_policy`].
    pub fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        let servers = self.all_servers()?;
        let mut withdrawn = 0;
        for (i, server) in servers.iter().enumerate() {
            withdrawn += DurableServer::remove_policy(server, policy_id)?;
            self.ship_node(i, true);
        }
        if withdrawn > 0 {
            self.prune_dead_handles();
        }
        Ok(withdrawn)
    }

    /// Replace a policy on **every** node. Returns the fabric-wide
    /// withdrawn count.
    ///
    /// # Errors
    /// As [`exacml_plus::Fabric::update_policy`].
    pub fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        let servers = self.all_servers()?;
        let mut withdrawn = 0;
        for (i, server) in servers.iter().enumerate() {
            withdrawn += DurableServer::update_policy(server, policy.clone())?;
            self.ship_node(i, true);
        }
        if withdrawn > 0 {
            self.prune_dead_handles();
        }
        Ok(withdrawn)
    }

    /// Number of loaded policies per node (propagation keeps the stores
    /// identical).
    #[must_use]
    pub fn policy_count(&self) -> usize {
        self.slots[0].read().server.policy_count()
    }

    fn prune_dead_handles(&self) {
        self.handles.retain(|handle, &owner| {
            let slot = self.slots[owner].read();
            self.host_is_alive(slot.host) && slot.server.handle_is_live(handle)
        });
    }

    // --- audit plane --------------------------------------------------------

    fn tagged_audit_events(
        &self,
        fetch: impl Fn(&DurableServer) -> Vec<exacml_plus::AuditEvent>,
    ) -> Vec<TaggedAuditEvent> {
        let mut events: Vec<TaggedAuditEvent> = (0..self.config.nodes)
            .flat_map(|i| {
                let slot = self.slots[i].read();
                let node = NodeId::Server(i as u16);
                fetch(&slot.server)
                    .into_iter()
                    .map(move |event| TaggedAuditEvent { node, event })
                    .collect::<Vec<_>>()
            })
            .collect();
        events.sort_by_key(|t| (t.event.timestamp_ms, t.node, t.event.sequence));
        events
    }

    /// The fabric-wide audit trail, each event tagged with its *logical*
    /// node — failover preserves the tags because the journal preserves the
    /// events.
    #[must_use]
    pub fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        self.tagged_audit_events(|server| server.inner().audit_events())
    }

    /// Fabric-wide audit events involving one subject.
    #[must_use]
    pub fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        self.tagged_audit_events(|server| server.inner().audit_events_for_subject(subject))
    }

    /// Live deployments across all nodes.
    #[must_use]
    pub fn live_deployments(&self) -> usize {
        (0..self.config.nodes).map(|i| self.slots[i].read().server.inner().live_deployments()).sum()
    }

    /// Live shared plans across all nodes.
    #[must_use]
    pub fn live_plans(&self) -> usize {
        (0..self.config.nodes).map(|i| self.slots[i].read().server.inner().plan_count()).sum()
    }
}

/// The durable-store configuration of logical node `i`: the template with
/// the node's stable host name (so handle URIs survive failover verbatim)
/// and a node-specific seed.
fn node_config(config: &ReplicatedConfig, logical: usize) -> DurableConfig {
    DurableConfig {
        dsms_host: format!("node{logical}"),
        seed: config.seed.wrapping_add(1 + logical as u64),
        ..config.durable_template.clone()
    }
}

/// The replica directory of logical node `logical` on physical host `host`.
fn replica_dir(root: &std::path::Path, host: usize, logical: usize) -> PathBuf {
    root.join(format!("node{host}")).join(format!("replica-of-{logical}"))
}

/// The K ring successors of `start` (skipping `exclude`) among `nodes`
/// hosts — the peer set a logical node's journal ships to.
fn ring_peers(exclude: usize, start: usize, nodes: usize, k: usize) -> impl Iterator<Item = usize> {
    (1..nodes.max(1)).map(move |step| (start + step) % nodes).filter(move |&p| p != exclude).take(k)
}

// --- the unified backend API -------------------------------------------------

impl StreamBackend for ReplicatedFabric {
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        ReplicatedFabric::register_stream(self, name, schema)
    }

    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        ReplicatedFabric::push(self, stream, tuple)
    }

    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        ReplicatedFabric::push_batch(self, stream, tuples)
    }

    fn push_batches(&self, batches: Vec<StreamBatch>) -> Result<usize, ExacmlError> {
        ReplicatedFabric::push_batches(self, batches)
    }

    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError> {
        ReplicatedFabric::subscribe(self, handle).map(Subscription::Fabric)
    }

    fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        ReplicatedFabric::handle_is_live(self, handle)
    }
}

impl AccessControl for ReplicatedFabric {
    fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        ReplicatedFabric::handle_request(self, request, user_query)
    }

    fn release_access(&self, subject: &str, stream: &str) -> bool {
        ReplicatedFabric::release_access(self, subject, stream)
    }
}

impl PolicyAdmin for ReplicatedFabric {
    fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        ReplicatedFabric::load_policy(self, policy)
    }

    fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        ReplicatedFabric::load_policy_xml(self, xml)
    }

    fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        ReplicatedFabric::remove_policy(self, policy_id)
    }

    fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        ReplicatedFabric::update_policy(self, policy)
    }

    fn policy_count(&self) -> usize {
        ReplicatedFabric::policy_count(self)
    }
}

impl Backend for ReplicatedFabric {
    fn backend_kind(&self) -> String {
        "fabric-replicated".to_string()
    }

    fn live_deployments(&self) -> usize {
        ReplicatedFabric::live_deployments(self)
    }

    fn live_plans(&self) -> usize {
        ReplicatedFabric::live_plans(self)
    }

    fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        ReplicatedFabric::audit_events(self)
    }

    fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        ReplicatedFabric::audit_events_for_subject(self, subject)
    }

    fn health(&self) -> BackendHealth {
        let journal_failure =
            (0..self.config.nodes).find_map(|i| self.slots[i].read().server.journal_failure());
        BackendHealth {
            degraded_nodes: self.degraded_nodes(),
            journal_failure,
            replication_lag_records: self.replication_lag(),
            robustness: self.robustness(),
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        let mut parts = vec![self.telemetry.snapshot_tagged("broker")];
        parts.extend((0..self.config.nodes).map(|i| {
            let slot = self.slots[i].read();
            // Tag by *logical* node: the slot keeps its tag across failover,
            // so pre- and post-failover snapshots stay diffable.
            slot.server.inner().telemetry_registry().snapshot_tagged(&format!("node-{i}"))
        }));
        TelemetrySnapshot::aggregate("fabric-replicated", parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_plus::StreamPolicyBuilder;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exacml-repfab-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn weather_policy(id: &str) -> Policy {
        StreamPolicyBuilder::new(id, "weather").subject("LTA").filter("rainrate > 5").build()
    }

    #[test]
    fn grants_survive_killing_their_host() {
        let root = temp_root("failover");
        let fabric = ReplicatedFabric::create(ReplicatedConfig::new(3, &root)).unwrap();
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        fabric.load_policy(weather_policy("p")).unwrap();
        let granted = fabric.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let uri = granted.response.handle.uri().to_string();
        let NodeId::Server(owner) = granted.node else { panic!("expected a server node") };
        let owner = owner as usize;

        // Kill the owner's host: the handle survives, at the same URI, on a
        // surviving peer.
        fabric.kill_node(owner);
        assert!(fabric.handle_is_live(&StreamHandle::from_uri(uri.clone())));
        assert_ne!(fabric.host_of(owner), owner, "the logical node moved hosts");
        let stats = fabric.robustness();
        assert_eq!(stats.failovers_completed, 1);
        assert_eq!(stats.handles_reminted, 1);

        // The audit trail kept the logical node's tags, and the grant is
        // still in force: a second request for the held stream is refused.
        let tags: Vec<NodeId> = fabric
            .audit_events()
            .iter()
            .filter(|t| t.event.kind == exacml_plus::AuditEventKind::Granted)
            .map(|t| t.node)
            .collect();
        assert_eq!(tags, vec![NodeId::Server(owner as u16)]);
        let query = UserQuery::for_stream("weather").with_filter("rainrate > 70");
        assert!(matches!(
            fabric.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)),
            Err(ExacmlError::MultipleAccess { .. })
        ));
        // Released grants stay released across the fabric.
        assert!(fabric.release_access("LTA", "weather"));
        assert!(!fabric.handle_is_live(&StreamHandle::from_uri(uri)));
    }

    #[test]
    fn no_replica_means_a_typed_error_not_a_panic() {
        let root = temp_root("no-replica");
        let fabric =
            ReplicatedFabric::create(ReplicatedConfig::new(2, &root).with_replication(0)).unwrap();
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let owner = rendezvous_owner("weather", 2);
        fabric.kill_node(owner);
        let err = fabric.register_stream("gps", Schema::gps_example()).err();
        let err = match err {
            Some(e) if matches!(e, ExacmlError::NodeUnavailable { .. }) => e,
            // "gps" may be owned by the surviving node; the dead one must
            // still fail typed.
            _ => fabric
                .node_server(owner)
                .err()
                .expect("dead host without replicas must be unavailable"),
        };
        assert!(err.to_string().contains("unavailable"));
    }

    #[test]
    fn replication_lag_is_bounded_by_the_ship_threshold() {
        let root = temp_root("lag");
        let config = ReplicatedConfig::new(2, &root).with_ingest_ship_every(4);
        let fabric = ReplicatedFabric::create(config).unwrap();
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let schema = Schema::weather_example().shared();
        for i in 0..10i64 {
            let tuple = Tuple::builder_shared(&schema)
                .set("samplingtime", exacml_dsms::Value::Timestamp(i * 30_000))
                .set("rainrate", 10.0)
                .finish_with_defaults();
            fabric.push("weather", tuple).unwrap();
        }
        // Lag never exceeds the threshold per mirror, and settling clears it.
        assert!(fabric.replication_lag() < 4 * 2);
        fabric.settle_replication();
        assert_eq!(fabric.replication_lag(), 0);
        assert!(fabric.robustness().replication_batches_acked > 0);
    }

    #[test]
    fn killed_then_restarted_host_reattaches_as_a_mirror() {
        let root = temp_root("restart");
        let fabric =
            ReplicatedFabric::create(ReplicatedConfig::new(3, &root).with_seed(7)).unwrap();
        fabric.register_stream("weather", Schema::weather_example()).unwrap();
        let owner = rendezvous_owner("weather", 3);
        fabric.kill_node(owner);
        fabric.load_policy(weather_policy("p")).unwrap(); // triggers failover of the owner
        assert_eq!(fabric.robustness().failovers_completed, 1);

        fabric.restart_node(owner);
        fabric.load_policy(weather_policy("p2")).unwrap();
        fabric.settle_replication();
        // The restarted host acknowledged fresh ships: lag is zero again
        // and no host is degraded.
        assert_eq!(fabric.replication_lag(), 0);
        assert!(fabric.degraded_nodes().is_empty());
        assert_eq!(fabric.policy_count(), 2);
    }
}
