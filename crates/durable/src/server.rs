//! [`DurableServer`]: a [`DataServer`] whose control-plane state survives a
//! crash.
//!
//! The wrapper journals every state-mutating operation — policy load /
//! remove / update, stream registration, access grants and releases, the
//! audit trail, and (optionally) tuple ingest — into a write-ahead log
//! ([`crate::wal`]) and periodically folds the journal into a compacted
//! snapshot ([`crate::snapshot`]). [`DurableServer::recover`] rebuilds the
//! full server — PDP store revision, live handles (with the *same* URIs),
//! single-access-guard state, routing-relevant stream registrations, and
//! the audit trail with its original timestamps — by loading the snapshot
//! and replaying the WAL tail through the ordinary Section 3.2/3.3
//! workflow.
//!
//! # Consistency contract
//!
//! * A **control-plane** operation (policies, registrations, grants,
//!   releases, audit) is durable once its call returns: the record is
//!   framed, checksummed and flushed to the OS before the caller sees `Ok`
//!   (fsynced too when [`DurableConfig::sync_writes`] is set).
//! * **Data-plane** (ingest) records are group-committed: they enter the
//!   writer's 256 KiB buffer in order and drain when it fills, on the next
//!   control-plane record, on snapshot, and on drop. A crash loses at most
//!   that buffered window of *data* — never an acknowledged control-plane
//!   record, which is always flushed past the buffer.
//! * A crash *during* an operation loses at most that unacknowledged
//!   operation: recovery drops the torn tail and replays the longest valid
//!   prefix (see `docs/RECOVERY.md` for the walkthrough).
//! * Replay re-executes journaled operations through the real workflow, so
//!   recovery is, by construction, equivalent to an in-memory server that
//!   executed the same sequence — the property pinned by the equivalence
//!   proptest in `tests/durability.rs`.
//! * If the journal itself fails (disk full, permission lost), the failure
//!   is sticky: the failing operation returns
//!   [`ExacmlError::Durability`] and every later mutating operation is
//!   refused, so the store on disk never silently falls behind the state
//!   in memory.
//!
//! Subscriptions are deliberately *not* journaled: a subscriber channel
//! cannot outlive its process, so consumers re-subscribe with their
//! (recovered) handle after a restart. In-flight window contents are
//! restored only while their ingest records are still in the WAL tail —
//! compaction seals them, which the recovery document spells out.

use crate::record::{decode_row, encode_ingest_into, GrantRecord, Record};
use crate::snapshot::{read_snapshot, write_snapshot, Snapshot, StreamEntry};
use crate::wal::{read_wal, truncate_to, unframe, FailMode, WalFailpoint, WalWriter};
use exacml_dsms::{DsmsError, Schema, StreamHandle, Tuple};
use exacml_plus::{
    AccessControl, AuditEvent, Backend, BackendHealth, BackendResponse, DataServer, ExacmlError,
    MergeOptions, PolicyAdmin, RobustnessStats, ServerConfig, StreamBackend, Subscription,
    TaggedAuditEvent, UserQuery,
};
use exacml_simnet::{NodeId, Topology};
use exacml_telemetry::{Metric, Stage, TelemetrySnapshot};
use exacml_xacml::xml::{parse_policy, write_policy};
use exacml_xacml::{Policy, Request};
use parking_lot::Mutex;
use serde::Content;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The deployment topologies a durable store can persist by name.
///
/// The simulated-network [`Topology`] is an arbitrary link table; the
/// durable layer persists the *named* presets the builders construct, so a
/// recovered server charges the same simulated hops as the original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyPreset {
    /// Everything co-located in one process (loopback links).
    Local,
    /// The paper's coordinator/broker/server testbed.
    PaperTestbed,
    /// The "migrate to a commercial cloud" what-if (client crosses a WAN).
    PublicCloud,
}

impl TopologyPreset {
    /// The persisted name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TopologyPreset::Local => "local",
            TopologyPreset::PaperTestbed => "paper_testbed",
            TopologyPreset::PublicCloud => "public_cloud",
        }
    }

    /// Parse a persisted name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TopologyPreset> {
        match name {
            "local" => Some(TopologyPreset::Local),
            "paper_testbed" => Some(TopologyPreset::PaperTestbed),
            "public_cloud" => Some(TopologyPreset::PublicCloud),
            _ => None,
        }
    }

    /// Materialize the preset.
    #[must_use]
    pub fn topology(self) -> Topology {
        match self {
            TopologyPreset::Local => Topology::local(),
            TopologyPreset::PaperTestbed => Topology::paper_testbed(),
            TopologyPreset::PublicCloud => Topology::public_cloud(),
        }
    }
}

/// Configuration of a durable server: the wrapped server's behaviour plus
/// the journaling knobs. Persisted to `meta.json` when the store is
/// created, so [`DurableServer::recover`] needs only the path.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The simulated deployment topology (persisted by preset name).
    pub topology: TopologyPreset,
    /// Deploy even when merging raised partial-result warnings.
    pub deploy_on_partial_result: bool,
    /// Seed for the simulated-network sampling.
    pub seed: u64,
    /// Host name minted into stream-handle URIs. Recovery re-mints handles
    /// under the same host, which is what lets them survive verbatim.
    pub dsms_host: String,
    /// `MergeOptions::map_union` of the wrapped server.
    pub map_union: bool,
    /// `MergeOptions::simplify_filters` of the wrapped server.
    pub simplify_filters: bool,
    /// `ServerConfig::share_plans` of the wrapped server: overlapping
    /// grants ride one compiled subgraph. Persisted because recovery must
    /// rebuild the same plan topology the journal was written under.
    pub share_plans: bool,
    /// Journal tuple batches too, so window state and engine ingest survive
    /// up to the last acknowledged push (control-plane state is journaled
    /// regardless). Costs one WAL append per push/push_batch.
    pub journal_ingest: bool,
    /// fsync every record instead of only flushing to the OS. Survives
    /// power loss, not just process crashes; much slower.
    pub sync_writes: bool,
    /// Fold the journal into a snapshot automatically every this many
    /// records (0 disables automatic compaction; [`DurableServer::snapshot`]
    /// always works). Keeps replay bounded.
    pub snapshot_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            topology: TopologyPreset::PaperTestbed,
            deploy_on_partial_result: false,
            seed: 42,
            dsms_host: "dsms".to_string(),
            map_union: false,
            simplify_filters: true,
            share_plans: true,
            journal_ingest: true,
            sync_writes: false,
            snapshot_every: 50_000,
        }
    }
}

impl DurableConfig {
    /// A configuration with loopback links (tests, quickstarts).
    #[must_use]
    pub fn local() -> Self {
        DurableConfig { topology: TopologyPreset::Local, ..DurableConfig::default() }
    }

    /// The wrapped server's configuration.
    #[must_use]
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            merge: MergeOptions {
                map_union: self.map_union,
                simplify_filters: self.simplify_filters,
            },
            deploy_on_partial_result: self.deploy_on_partial_result,
            topology: self.topology.topology(),
            seed: self.seed,
            dsms_host: self.dsms_host.clone(),
            share_plans: self.share_plans,
        }
    }
}

/// What [`DurableServer::recover`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false = genesis or WAL-only).
    pub snapshot_loaded: bool,
    /// Live grants restored from the snapshot.
    pub snapshot_grants: usize,
    /// WAL-tail records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Why the WAL tail was cut short, when it was (the torn bytes were
    /// truncated away so healthy appends can follow).
    pub torn_tail: Option<String>,
}

/// Journal-side state, guarded by one mutex so records land in the WAL in
/// the order their operations were applied.
struct Journal {
    wal: WalWriter,
    next_seq: u64,
    records_since_snapshot: u64,
    /// The first audit sequence number not yet journaled.
    next_audit_seq: u64,
    /// Live grants in grant order — the snapshot's replay set. Keyed by a
    /// monotone per-grant counter, *not* by deployment id: under plan
    /// sharing several grants ride one deployment.
    grants: BTreeMap<u64, GrantRecord>,
    /// The next key for `grants` (monotone so replay order is grant order).
    next_grant_key: u64,
    /// One past the largest deployment id ever minted.
    next_deployment_id: u64,
    /// One past the largest handle serial ever journaled, including grants
    /// since released. Recovery adopts live grants' URIs verbatim, so fresh
    /// mints must start above every serial that was ever handed out.
    next_handle_serial: u64,
    /// Reusable encode buffer for ingest records (the hot path allocates
    /// nothing once warm).
    scratch: String,
    /// A journaling failure is sticky: once an append fails, every further
    /// mutating operation is refused so the disk never silently lags memory.
    failed: Option<String>,
}

/// A [`DataServer`] wrapped in WAL + snapshot persistence. See the module
/// docs for the consistency contract.
pub struct DurableServer {
    inner: DataServer,
    config: DurableConfig,
    path: PathBuf,
    journal: Mutex<Journal>,
    recovery: RecoveryReport,
}

const META_FILE: &str = "meta.json";
const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.json";

fn durability(context: &str, error: impl std::fmt::Display) -> ExacmlError {
    ExacmlError::Durability(format!("{context}: {error}"))
}

fn write_meta(path: &Path, config: &DurableConfig) -> Result<(), ExacmlError> {
    let content = Content::Map(vec![
        ("version".to_string(), Content::U64(1)),
        ("topology".to_string(), Content::Str(config.topology.name().to_string())),
        ("deploy_on_partial_result".to_string(), Content::Bool(config.deploy_on_partial_result)),
        ("seed".to_string(), Content::U64(config.seed)),
        ("dsms_host".to_string(), Content::Str(config.dsms_host.clone())),
        ("map_union".to_string(), Content::Bool(config.map_union)),
        ("simplify_filters".to_string(), Content::Bool(config.simplify_filters)),
        ("share_plans".to_string(), Content::Bool(config.share_plans)),
        ("journal_ingest".to_string(), Content::Bool(config.journal_ingest)),
        ("sync_writes".to_string(), Content::Bool(config.sync_writes)),
        ("snapshot_every".to_string(), Content::U64(config.snapshot_every)),
    ]);
    let payload =
        serde_json::content_to_string(&content).map_err(|e| durability("encode meta", e))?;
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, crate::wal::frame(&payload)).map_err(|e| durability("write meta", e))?;
    // fsync before the rename (like the snapshot writer): a power loss must
    // not leave a durable rename pointing at un-persisted data blocks —
    // a torn meta.json would brick every later `recover(path)`.
    let file = std::fs::File::open(&tmp).map_err(|e| durability("reopen meta", e))?;
    file.sync_all().map_err(|e| durability("sync meta", e))?;
    std::fs::rename(&tmp, path).map_err(|e| durability("commit meta", e))
}

fn read_meta(path: &Path) -> Result<DurableConfig, ExacmlError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| durability(&format!("read {}", path.display()), e))?;
    let payload = unframe(text.trim_end_matches('\n'))
        .ok_or_else(|| durability("read meta", "frame or checksum mismatch"))?;
    let value: Value = serde_json::from_str(payload).map_err(|e| durability("parse meta", e))?;
    let bool_of = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_bool)
            .ok_or_else(|| durability("parse meta", format!("missing boolean '{key}'")))
    };
    let topology_name = value
        .get("topology")
        .and_then(Value::as_str)
        .ok_or_else(|| durability("parse meta", "missing 'topology'"))?;
    Ok(DurableConfig {
        topology: TopologyPreset::from_name(topology_name).ok_or_else(|| {
            durability("parse meta", format!("unknown topology preset '{topology_name}'"))
        })?,
        deploy_on_partial_result: bool_of("deploy_on_partial_result")?,
        seed: value.get("seed").and_then(Value::as_f64).unwrap_or(42.0) as u64,
        dsms_host: value.get("dsms_host").and_then(Value::as_str).unwrap_or("dsms").to_string(),
        map_union: bool_of("map_union")?,
        simplify_filters: bool_of("simplify_filters")?,
        // Default-tolerant, and deliberately *off* for stores written
        // before plan sharing: their journals minted one deployment per
        // grant, and replay must reproduce those deployment ids exactly.
        share_plans: value.get("share_plans").and_then(Value::as_bool).unwrap_or(false),
        journal_ingest: bool_of("journal_ingest")?,
        sync_writes: bool_of("sync_writes")?,
        snapshot_every: value.get("snapshot_every").and_then(Value::as_f64).unwrap_or(0.0) as u64,
    })
}

impl DurableServer {
    /// Create a fresh store at `path` (the directory is created if needed)
    /// and the server over it.
    ///
    /// # Errors
    /// Fails when `path` already holds a store, or on I/O errors.
    pub fn create(path: impl Into<PathBuf>, config: DurableConfig) -> Result<Self, ExacmlError> {
        let path = path.into();
        std::fs::create_dir_all(&path).map_err(|e| durability("create store directory", e))?;
        for existing in [META_FILE, WAL_FILE, SNAPSHOT_FILE] {
            if path.join(existing).exists() {
                return Err(ExacmlError::Durability(format!(
                    "{} already holds a store ({existing} exists); use recover",
                    path.display()
                )));
            }
        }
        write_meta(&path.join(META_FILE), &config)?;
        let wal = WalWriter::open(path.join(WAL_FILE), config.sync_writes)
            .map_err(|e| durability("open WAL", e))?;
        let inner = DataServer::new(config.server_config());
        Ok(DurableServer {
            inner,
            config,
            path,
            journal: Mutex::new(Journal {
                wal,
                next_seq: 0,
                records_since_snapshot: 0,
                next_audit_seq: 0,
                grants: BTreeMap::new(),
                next_grant_key: 0,
                next_deployment_id: 0,
                next_handle_serial: 0,
                scratch: String::new(),
                failed: None,
            }),
            recovery: RecoveryReport::default(),
        })
    }

    /// Rebuild the server from the store at `path`: load the snapshot,
    /// truncate any torn WAL tail, replay the remaining records through the
    /// ordinary workflow, and restore the journaled audit trail verbatim.
    ///
    /// Recovery writes nothing (beyond truncating torn bytes), so it is
    /// idempotent: recovering the same store twice yields the same state.
    ///
    /// # Errors
    /// Fails when the store is missing or inconsistent (a snapshot that
    /// does not parse, a replayed operation that diverges from its record).
    pub fn recover(path: impl Into<PathBuf>) -> Result<Self, ExacmlError> {
        let path = path.into();
        let config = read_meta(&path.join(META_FILE))?;
        Self::recover_with(path, config)
    }

    /// [`DurableServer::recover`] with an explicit configuration (for
    /// stores whose `meta.json` was lost, or to override journaling knobs).
    ///
    /// # Errors
    /// As [`DurableServer::recover`].
    pub fn recover_with(
        path: impl Into<PathBuf>,
        config: DurableConfig,
    ) -> Result<Self, ExacmlError> {
        let path = path.into();
        let mut report = RecoveryReport::default();

        let snapshot =
            read_snapshot(&path.join(SNAPSHOT_FILE)).map_err(|e| durability("read snapshot", e))?;
        let wal_path = path.join(WAL_FILE);
        let contents = read_wal(&wal_path).map_err(|e| durability("read WAL", e))?;
        if let Some(tail) = &contents.tail_error {
            report.torn_tail = Some(tail.clone());
            truncate_to(&wal_path, contents.valid_len)
                .map_err(|e| durability("truncate torn WAL tail", e))?;
        }

        let inner = DataServer::new(config.server_config());
        let mut grants: BTreeMap<u64, GrantRecord> = BTreeMap::new();
        let mut next_grant_key = 0u64;
        let mut audit: Vec<AuditEvent> = Vec::new();
        let mut next_deployment_id = 0u64;
        let mut next_handle_serial = 0u64;
        let mut horizon = 0u64;

        if let Some(snapshot) = &snapshot {
            report.snapshot_loaded = true;
            report.snapshot_grants = snapshot.grants.len();
            for entry in &snapshot.streams {
                inner.register_stream(&entry.name, entry.schema.clone())?;
            }
            for xml in &snapshot.policies {
                inner.load_policy(parse_policy(xml)?)?;
            }
            inner.policy_store().resume_revision_at(snapshot.store_revision);
            audit.clone_from(&snapshot.audit);
            next_deployment_id = snapshot.next_deployment_id;
            next_handle_serial = snapshot.next_handle_serial;
            horizon = snapshot.wal_horizon;
        }

        // Decode the whole WAL tail before replaying anything: replayed
        // grants adopt their journaled handle URIs verbatim, so the serial
        // counter must first clear *every* journaled serial — a deploy
        // during replay must never mint a primary handle that collides with
        // a URI a later grant record is about to adopt.
        let mut next_seq = horizon;
        let mut tail: Vec<Record> = Vec::new();
        for record in &contents.records {
            if record.seq < horizon {
                continue; // Already folded into the snapshot.
            }
            next_seq = record.seq + 1;
            let decoded = crate::record::decode(&record.value)
                .map_err(|e| durability(&format!("decode WAL record {}", record.seq), e))?;
            tail.push(decoded);
        }
        let journaled_serials = snapshot
            .iter()
            .flat_map(|s| s.grants.iter())
            .chain(tail.iter().filter_map(|r| match r {
                Record::Grant(grant) => Some(grant),
                _ => None,
            }))
            .filter_map(|g| StreamHandle::from_uri(g.handle.clone()).serial());
        for serial in journaled_serials {
            next_handle_serial = next_handle_serial.max(serial + 1);
        }
        inner.engine().resume_handle_serial_at(next_handle_serial);

        if let Some(snapshot) = &snapshot {
            // Released grants are pruned from the snapshot, so a plan's
            // surviving sharer can sit *after* grants on younger deployments
            // (deployer released, sharer kept). Replay in deployment order —
            // stable, so grant order within a deployment is preserved — and
            // each plan's first live grant re-mints its deployment id while
            // the counter is still below it. The journal itself keeps the
            // original grant order.
            let mut by_deployment: Vec<&GrantRecord> = snapshot.grants.iter().collect();
            by_deployment.sort_by_key(|g| g.deployment);
            for grant in by_deployment {
                Self::replay_grant(&inner, grant)?;
            }
            for grant in &snapshot.grants {
                grants.insert(next_grant_key, grant.clone());
                next_grant_key += 1;
            }
        }

        for decoded in tail {
            match decoded {
                Record::RegisterStream { name, schema } => {
                    inner.register_stream(&name, schema)?;
                }
                Record::LoadPolicy { xml } => {
                    inner.load_policy(parse_policy(&xml)?)?;
                }
                Record::RemovePolicy { id } => {
                    inner.remove_policy(&id)?;
                    grants.retain(|_, g| {
                        inner.handle_is_live(&StreamHandle::from_uri(g.handle.clone()))
                    });
                }
                Record::UpdatePolicy { xml } => {
                    inner.update_policy(parse_policy(&xml)?)?;
                    grants.retain(|_, g| {
                        inner.handle_is_live(&StreamHandle::from_uri(g.handle.clone()))
                    });
                }
                Record::Grant(grant) => {
                    Self::replay_grant(&inner, &grant)?;
                    next_deployment_id = next_deployment_id.max(grant.deployment + 1);
                    grants.insert(next_grant_key, grant);
                    next_grant_key += 1;
                }
                Record::Release { subject, stream } => {
                    inner.release_access(&subject, &stream);
                    grants.retain(|_, g| {
                        !(g.subject.eq_ignore_ascii_case(&subject)
                            && g.stream.eq_ignore_ascii_case(&stream))
                    });
                }
                Record::Audit(event) => audit.push(event),
                Record::Ingest { stream, rows } => {
                    let schema = inner
                        .engine()
                        .stream_schema(&stream)
                        .map_err(|e| durability("ingest replay", e))?;
                    let tuples = rows
                        .iter()
                        .map(|cells| {
                            decode_row(&schema, cells)
                                .and_then(|row| Tuple::new(schema.clone(), row))
                        })
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| durability("ingest replay", e))?;
                    inner.push_batch(&stream, tuples)?;
                }
            }
            report.wal_records_replayed += 1;
        }

        // The replay regenerated audit events with fresh timestamps; the
        // journaled trail is authoritative.
        let next_audit_seq = audit.iter().map(|e| e.sequence + 1).max().unwrap_or(0);
        inner.restore_audit(audit);
        inner.engine().resume_ids_at(next_deployment_id);
        inner.engine().resume_handle_serial_at(next_handle_serial);

        let wal = WalWriter::open(&wal_path, config.sync_writes)
            .map_err(|e| durability("open WAL", e))?;
        Ok(DurableServer {
            inner,
            path,
            journal: Mutex::new(Journal {
                wal,
                next_seq,
                records_since_snapshot: report.wal_records_replayed as u64,
                next_audit_seq,
                grants,
                next_grant_key,
                next_deployment_id,
                next_handle_serial,
                scratch: String::new(),
                failed: None,
            }),
            recovery: report,
            config,
        })
    }

    /// Open the store at `path`: recover it when it exists, create it with
    /// `config` otherwise.
    ///
    /// # Errors
    /// As [`DurableServer::create`] / [`DurableServer::recover`].
    pub fn open(path: impl Into<PathBuf>, config: DurableConfig) -> Result<Self, ExacmlError> {
        let path = path.into();
        if path.join(META_FILE).exists() {
            DurableServer::recover(path)
        } else {
            DurableServer::create(path, config)
        }
    }

    /// Re-execute one journaled grant through the real workflow, adopting
    /// the journaled handle URI verbatim ([`DataServer::restore_grant`]).
    /// Serial arithmetic cannot reproduce the URI: released grants are
    /// pruned from the journal, so the serials they consumed are invisible
    /// to replay. The engine's deployment-id counter *is* resumed at the
    /// recorded id first — replay visits deploying grants in minting order
    /// (the WAL tail is chronological and snapshot grants are sorted by
    /// deployment id), so the workflow re-mints the same ids, and a shared
    /// grant's recorded id is the deployment its plan already rides — a
    /// sharer simply cache-hits the live plan. Divergence on
    /// either the URI or the deployment id means the journal and the
    /// workflow disagree and the store cannot be trusted.
    fn replay_grant(inner: &DataServer, grant: &GrantRecord) -> Result<(), ExacmlError> {
        inner.engine().resume_ids_at(grant.deployment);
        let query = grant.query_xml.as_deref().map(UserQuery::from_xml).transpose()?;
        let handle = StreamHandle::from_uri(grant.handle.clone());
        let response = inner
            .restore_grant(
                &Request::subscribe(&grant.subject, &grant.stream),
                query.as_ref(),
                &handle,
            )
            .map_err(|e| {
                durability(&format!("replay grant {} on '{}'", grant.subject, grant.stream), e)
            })?;
        if response.reused
            || response.handle.uri() != grant.handle
            || response.deployment.0 != grant.deployment
        {
            return Err(ExacmlError::Durability(format!(
                "journal replay diverged: grant for '{}' on '{}' re-minted {} on deployment {} \
                 (reused: {}), journal says {} on deployment {}",
                grant.subject,
                grant.stream,
                response.handle,
                response.deployment.0,
                response.reused,
                grant.handle,
                grant.deployment
            )));
        }
        Ok(())
    }

    // --- observability ------------------------------------------------------

    /// The wrapped in-memory server.
    #[must_use]
    pub fn inner(&self) -> &DataServer {
        &self.inner
    }

    /// The store's directory.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configuration the store was created (or recovered) with.
    #[must_use]
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// What the construction found on disk (all-default for a fresh store).
    #[must_use]
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of loaded policies.
    #[must_use]
    pub fn policy_count(&self) -> usize {
        self.inner.policy_count()
    }

    /// The live grants in grant order — exactly what the next snapshot will
    /// carry and the next recovery will replay. Under plan sharing several
    /// entries may carry the same deployment id.
    #[must_use]
    pub fn live_grants(&self) -> Vec<GrantRecord> {
        self.journal.lock().grants.values().cloned().collect()
    }

    /// Journal records appended since the last snapshot (the WAL tail a
    /// crash right now would replay).
    #[must_use]
    pub fn wal_tail_len(&self) -> u64 {
        self.journal.lock().records_since_snapshot
    }

    /// The journal's sequence number for the *next* record — a monotone
    /// measure of how much state this store has journaled (replication lag
    /// is a difference of these).
    #[must_use]
    pub fn journal_seq(&self) -> u64 {
        self.journal.lock().next_seq
    }

    /// The sticky journal failure, when one happened: the disk fault that
    /// made the store refuse further mutations. `None` while healthy.
    #[must_use]
    pub fn journal_failure(&self) -> Option<String> {
        self.journal.lock().failed.clone()
    }

    /// The WAL file of this store.
    #[must_use]
    pub fn wal_path(&self) -> PathBuf {
        self.path.join(WAL_FILE)
    }

    /// The snapshot file of this store.
    #[must_use]
    pub fn snapshot_path(&self) -> PathBuf {
        self.path.join(SNAPSHOT_FILE)
    }

    /// The meta file of this store.
    #[must_use]
    pub fn meta_path(&self) -> PathBuf {
        self.path.join(META_FILE)
    }

    /// Drain the group-commit buffer to the OS, making every acknowledged
    /// ingest record visible in the WAL file (replication shippers call
    /// this before reading the file).
    ///
    /// # Errors
    /// Propagates (sticky) journaling failures.
    pub fn flush_journal(&self) -> Result<(), ExacmlError> {
        let mut journal = self.journal.lock();
        Self::check_health(&journal)?;
        self.commit(&mut journal)
    }

    /// A shared handle to the WAL writer's error-injecting shim (see
    /// [`WalFailpoint`]); arming it makes subsequent journal writes fail in
    /// the chosen [`FailMode`], which the journal then treats exactly like
    /// a real disk fault — sticky refusal of further mutations.
    #[must_use]
    pub fn wal_failpoint(&self) -> std::sync::Arc<WalFailpoint> {
        self.journal.lock().wal.failpoint()
    }

    /// Arm the WAL failpoint with a failure mode (convenience for
    /// [`DurableServer::wal_failpoint`]`.arm(mode)`).
    pub fn install_wal_failpoint(&self, mode: FailMode) {
        self.wal_failpoint().arm(mode);
    }

    // --- journaling ---------------------------------------------------------

    fn check_health(journal: &Journal) -> Result<(), ExacmlError> {
        match &journal.failed {
            Some(failure) => Err(ExacmlError::Durability(format!(
                "journal failed earlier ({failure}); refusing further mutations"
            ))),
            None => Ok(()),
        }
    }

    fn append(&self, journal: &mut Journal, record: &Record) -> Result<(), ExacmlError> {
        let payload = record
            .encode(journal.next_seq)
            .map_err(|e| durability(&format!("encode {} record", record.op()), e))?;
        self.append_payload(journal, &payload)
    }

    /// Buffered append plus sequencing bookkeeping (sticky on failure).
    /// Records become durable at the next [`DurableServer::commit`]
    /// (control-plane operations) or group-commit drain (ingest).
    fn append_payload(&self, journal: &mut Journal, payload: &str) -> Result<(), ExacmlError> {
        // WAL appends are real file I/O, so the wall clock (not the virtual
        // clock) is the honest measure here.
        let telemetry = self.inner.telemetry_registry();
        let started = telemetry.is_enabled().then(Instant::now);
        let appended = journal.wal.append_buffered(payload);
        if let Some(started) = started {
            telemetry.record(Stage::WalAppend, started.elapsed());
            telemetry.incr(Metric::WalRecords);
        }
        if let Err(e) = appended {
            let failure = e.to_string();
            journal.failed = Some(failure.clone());
            return Err(durability("append to WAL", failure));
        }
        journal.next_seq += 1;
        journal.records_since_snapshot += 1;
        Ok(())
    }

    /// Drain everything this operation appended to the OS in one flush —
    /// the op record and its audit events land together, so a process
    /// crash cannot persist half an operation's records (e.g. a live grant
    /// with no `Granted` audit entry). Only sound when the group started
    /// with an empty writer buffer — see [`DurableServer::begin_control`].
    fn commit(&self, journal: &mut Journal) -> Result<(), ExacmlError> {
        let telemetry = self.inner.telemetry_registry();
        let started = telemetry.is_enabled().then(Instant::now);
        let flushed = journal.wal.flush();
        if let Some(started) = started {
            telemetry.record(Stage::WalFlush, started.elapsed());
            telemetry.incr(Metric::WalFlushes);
        }
        if let Err(e) = flushed {
            let failure = e.to_string();
            journal.failed = Some(failure.clone());
            return Err(durability("flush WAL", failure));
        }
        Ok(())
    }

    /// Start a control-plane record group: check the journal is healthy and
    /// drain any group-committed ingest backlog first. Without this, a
    /// nearly-full writer buffer could auto-drain *between* the group's
    /// records (persisting, say, a grant without its audit event); with it,
    /// the whole group fits the empty 256 KiB buffer and reaches the OS in
    /// the single flush [`DurableServer::commit`] performs.
    fn begin_control(&self, journal: &mut Journal) -> Result<(), ExacmlError> {
        Self::check_health(journal)?;
        self.commit(journal)
    }

    /// Journal every audit event the wrapped server recorded since the last
    /// pull (including for denied requests — denials are part of the
    /// accountable trail even though they mutate nothing else).
    fn journal_audit(&self, journal: &mut Journal) -> Result<(), ExacmlError> {
        for event in self.inner.audit_events_since(journal.next_audit_seq) {
            journal.next_audit_seq = event.sequence + 1;
            self.append(journal, &Record::Audit(event))?;
        }
        Ok(())
    }

    fn maybe_compact(&self, journal: &mut Journal) -> Result<(), ExacmlError> {
        if self.config.snapshot_every > 0
            && journal.records_since_snapshot >= self.config.snapshot_every
        {
            self.snapshot_locked(journal)?;
        }
        Ok(())
    }

    /// Fold the journal into a fresh snapshot and reset the WAL. Replay
    /// cost after a crash is then bounded by the live state plus whatever
    /// lands in the WAL afterwards.
    ///
    /// # Errors
    /// Propagates I/O errors (which are sticky, like append failures).
    pub fn snapshot(&self) -> Result<(), ExacmlError> {
        let mut journal = self.journal.lock();
        Self::check_health(&journal)?;
        self.snapshot_locked(&mut journal)
    }

    fn snapshot_locked(&self, journal: &mut Journal) -> Result<(), ExacmlError> {
        let catalog = self.inner.engine().catalog();
        let streams = catalog
            .stream_names()
            .into_iter()
            .map(|name| {
                catalog
                    .schema_of(&name)
                    .map(|schema| StreamEntry { name, schema: (*schema).clone() })
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| durability("snapshot streams", e))?;
        let snapshot = Snapshot {
            version: 1,
            wal_horizon: journal.next_seq,
            store_revision: self.inner.policy_store().revision(),
            next_deployment_id: journal.next_deployment_id,
            next_handle_serial: journal.next_handle_serial,
            streams,
            policies: self
                .inner
                .policy_store()
                .snapshot()
                .iter()
                .map(|p| write_policy(p))
                .collect(),
            grants: journal.grants.values().cloned().collect(),
            audit: self.inner.audit_events(),
        };
        if let Err(e) = write_snapshot(&self.path.join(SNAPSHOT_FILE), &snapshot) {
            journal.failed = Some(e.clone());
            return Err(durability("write snapshot", e));
        }
        if let Err(e) = journal.wal.reset() {
            let failure = e.to_string();
            journal.failed = Some(failure.clone());
            return Err(durability("reset WAL after snapshot", failure));
        }
        journal.records_since_snapshot = 0;
        Ok(())
    }

    // --- the journaled operations ------------------------------------------

    /// Register an input stream (journaled).
    ///
    /// # Errors
    /// As [`DataServer::register_stream`], plus journaling failures.
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<(), ExacmlError> {
        let mut journal = self.journal.lock();
        self.begin_control(&mut journal)?;
        self.inner.register_stream(name, schema.clone())?;
        self.append(&mut journal, &Record::RegisterStream { name: name.to_string(), schema })?;
        self.commit(&mut journal)?;
        self.maybe_compact(&mut journal)
    }

    /// Load a policy (journaled as its XACML document).
    ///
    /// # Errors
    /// As [`DataServer::load_policy`], plus journaling failures.
    pub fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        let mut journal = self.journal.lock();
        self.begin_control(&mut journal)?;
        let xml = write_policy(&policy);
        let result = self.inner.load_policy(policy);
        if result.is_ok() {
            self.append(&mut journal, &Record::LoadPolicy { xml })?;
        }
        self.journal_audit(&mut journal)?;
        self.commit(&mut journal)?;
        self.maybe_compact(&mut journal)?;
        result
    }

    /// Load a policy from its XML document (journaled).
    ///
    /// # Errors
    /// As [`DataServer::load_policy_xml`], plus journaling failures.
    pub fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        self.load_policy(parse_policy(xml)?)
    }

    /// Remove a policy, withdrawing its graphs (journaled).
    ///
    /// # Errors
    /// As [`DataServer::remove_policy`], plus journaling failures.
    pub fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        let mut journal = self.journal.lock();
        self.begin_control(&mut journal)?;
        let result = self.inner.remove_policy(policy_id);
        if result.is_ok() {
            self.append(&mut journal, &Record::RemovePolicy { id: policy_id.to_string() })?;
            self.prune_dead_grants(&mut journal);
        }
        self.journal_audit(&mut journal)?;
        self.commit(&mut journal)?;
        self.maybe_compact(&mut journal)?;
        result
    }

    /// Replace a policy, withdrawing the old version's graphs (journaled).
    ///
    /// # Errors
    /// As [`DataServer::update_policy`], plus journaling failures.
    pub fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        let mut journal = self.journal.lock();
        self.begin_control(&mut journal)?;
        let xml = write_policy(&policy);
        let result = self.inner.update_policy(policy);
        if result.is_ok() {
            self.append(&mut journal, &Record::UpdatePolicy { xml })?;
            self.prune_dead_grants(&mut journal);
        }
        self.journal_audit(&mut journal)?;
        self.commit(&mut journal)?;
        self.maybe_compact(&mut journal)?;
        result
    }

    /// Drop tracked grants whose deployments a policy change just withdrew.
    fn prune_dead_grants(&self, journal: &mut Journal) {
        journal
            .grants
            .retain(|_, g| self.inner.handle_is_live(&StreamHandle::from_uri(g.handle.clone())));
    }

    /// Handle one access request (grants and every audit outcome are
    /// journaled; a reused grant journals only its audit event — it minted
    /// nothing new).
    ///
    /// # Errors
    /// As [`DataServer::handle_request`], plus journaling failures.
    pub fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        let mut journal = self.journal.lock();
        self.begin_control(&mut journal)?;
        let result = self.inner.handle_request(request, user_query);
        if let Ok(response) = &result {
            if !response.reused {
                let grant = GrantRecord {
                    subject: request.subject_id().unwrap_or_default().to_string(),
                    stream: request.resource_id().unwrap_or_default().to_string(),
                    query_xml: user_query.map(UserQuery::to_xml),
                    deployment: response.deployment.0,
                    handle: response.handle.uri().to_string(),
                };
                self.append(&mut journal, &Record::Grant(grant.clone()))?;
                journal.next_deployment_id = journal.next_deployment_id.max(grant.deployment + 1);
                if let Some(serial) = response.handle.serial() {
                    journal.next_handle_serial = journal.next_handle_serial.max(serial + 1);
                }
                let key = journal.next_grant_key;
                journal.next_grant_key += 1;
                journal.grants.insert(key, grant);
            }
        }
        self.journal_audit(&mut journal)?;
        self.commit(&mut journal)?;
        self.maybe_compact(&mut journal)?;
        result.map(|response| BackendResponse {
            node: NodeId::DataServer,
            response,
            broker_network: Duration::ZERO,
        })
    }

    /// Release a subject's access on a stream (journaled when something is
    /// actually withdrawn). The release record is appended *before* the
    /// in-memory release is applied: if journaling fails, nothing is
    /// released and `false` is returned — a revoked access must never come
    /// back to life on recovery because its record was silently lost. Once
    /// the journal has failed, releases are refused like every other
    /// mutation.
    pub fn release_access(&self, subject: &str, stream: &str) -> bool {
        let mut journal = self.journal.lock();
        if self.begin_control(&mut journal).is_err() {
            return false;
        }
        // The grant map mirrors the guard's live state; a release that
        // cannot withdraw anything is a no-op on every backend and needs no
        // journal record.
        let holds = journal.grants.values().any(|g| {
            g.subject.eq_ignore_ascii_case(subject) && g.stream.eq_ignore_ascii_case(stream)
        });
        if !holds {
            return self.inner.release_access(subject, stream);
        }
        let record = Record::Release { subject: subject.to_string(), stream: stream.to_string() };
        if self.append(&mut journal, &record).is_err() {
            return false;
        }
        let released = self.inner.release_access(subject, stream);
        journal.grants.retain(|_, g| {
            !(g.subject.eq_ignore_ascii_case(subject) && g.stream.eq_ignore_ascii_case(stream))
        });
        let _ = self.journal_audit(&mut journal);
        let _ = self.commit(&mut journal);
        let _ = self.maybe_compact(&mut journal);
        released
    }

    fn push_journaled(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        let mut journal = self.journal.lock();
        Self::check_health(&journal)?;
        // Encode into the journal's reusable buffer *before* pushing (so a
        // rejected batch journals nothing), append after the push succeeds.
        // No flush: ingest records are group-committed (see module docs).
        let mut scratch = std::mem::take(&mut journal.scratch);
        let encoded = encode_ingest_into(&mut scratch, journal.next_seq, stream, &tuples);
        let outcome = match encoded {
            Err(e) => Err(durability("encode ingest record", e)),
            Ok(()) => self
                .inner
                .push_batch(stream, tuples)
                .and_then(|emitted| self.append_payload(&mut journal, &scratch).map(|()| emitted)),
        };
        journal.scratch = scratch;
        let emitted = outcome?;
        self.maybe_compact(&mut journal)?;
        Ok(emitted)
    }

    /// Push one source tuple (journaled as a one-row ingest record when
    /// [`DurableConfig::journal_ingest`] is set).
    ///
    /// # Errors
    /// As [`DataServer::push`], plus journaling failures.
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        if !self.config.journal_ingest {
            return self.inner.push(stream, tuple);
        }
        self.push_journaled(stream, vec![tuple])
    }

    /// Push a batch of source tuples — one WAL record for the whole batch,
    /// so journaling cost amortizes exactly like the engine's shard locking.
    ///
    /// # Errors
    /// As [`DataServer::push_batch`], plus journaling failures.
    pub fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        if !self.config.journal_ingest || tuples.is_empty() {
            return self.inner.push_batch(stream, tuples);
        }
        self.push_journaled(stream, tuples)
    }
}

// --- the unified backend API -----------------------------------------------

impl StreamBackend for DurableServer {
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        DurableServer::register_stream(self, name, schema)?;
        Ok(NodeId::DataServer)
    }

    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        DurableServer::push(self, stream, tuple)
    }

    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        DurableServer::push_batch(self, stream, tuples)
    }

    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError> {
        match self.inner.subscribe(handle) {
            Ok(rx) => Ok(Subscription::Local(rx)),
            Err(ExacmlError::Dsms(DsmsError::UnknownHandle(_))) => {
                Err(ExacmlError::UnknownHandle(handle.uri().to_string()))
            }
            Err(other) => Err(other),
        }
    }

    fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        self.inner.handle_is_live(handle)
    }
}

impl AccessControl for DurableServer {
    fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        DurableServer::handle_request(self, request, user_query)
    }

    fn release_access(&self, subject: &str, stream: &str) -> bool {
        DurableServer::release_access(self, subject, stream)
    }
}

impl PolicyAdmin for DurableServer {
    fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        DurableServer::load_policy(self, policy)
    }

    fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        DurableServer::load_policy_xml(self, xml)
    }

    fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        DurableServer::remove_policy(self, policy_id)
    }

    fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        DurableServer::update_policy(self, policy)
    }

    fn policy_count(&self) -> usize {
        self.inner.policy_count()
    }
}

impl Backend for DurableServer {
    fn backend_kind(&self) -> String {
        "durable-server".to_string()
    }

    fn live_deployments(&self) -> usize {
        self.inner.live_deployments()
    }

    fn live_plans(&self) -> usize {
        self.inner.plan_count()
    }

    fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        self.inner
            .audit_events()
            .into_iter()
            .map(|event| TaggedAuditEvent { node: NodeId::DataServer, event })
            .collect()
    }

    fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        self.inner
            .audit_events_for_subject(subject)
            .into_iter()
            .map(|event| TaggedAuditEvent { node: NodeId::DataServer, event })
            .collect()
    }

    fn health(&self) -> BackendHealth {
        BackendHealth {
            degraded_nodes: Vec::new(),
            journal_failure: self.journal_failure(),
            replication_lag_records: 0,
            robustness: RobustnessStats::default(),
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry_registry().snapshot_tagged("durable-server")
    }
}
