//! # exacml-durable — persistence for the eXACML+ enforcement point
//!
//! The paper's enforcement model only stays accountable if the enforcement
//! point outlives any single process: policies, grants and the audit trail
//! must survive a server restart, or every decision made before a crash
//! becomes unverifiable. This crate adds that layer over plain `std::fs`,
//! with no external storage engine:
//!
//! * [`wal`] — a write-ahead log of checksummed, line-framed JSON records;
//!   torn and truncated tails are detected and cut, never replayed;
//! * [`record`] — the record vocabulary: one record per state-mutating
//!   operation (policy load/remove/update, stream registration, grants,
//!   releases, audit events, and optionally tuple ingest);
//! * [`snapshot`] — compaction: the journal folds into a snapshot of the
//!   *live* state, so recovery cost is bounded by what still matters plus
//!   the WAL tail, not by the server's lifetime;
//! * [`server`] — [`DurableServer`], a [`DataServer`](exacml_plus::DataServer)
//!   wrapper that journals on the way in and rebuilds itself via
//!   [`DurableServer::recover`], re-minting the *same* handle URIs by
//!   replaying grants at their recorded deployment ids;
//! * [`replication`] — WAL shipping: file-level mirroring of one store onto
//!   peer hosts, incremental past an acknowledged offset;
//! * [`fabric`] — [`ReplicatedFabric`], a brokering fabric of durable nodes
//!   with replication and owner failover: killing a host loses no
//!   acknowledged grant, the surviving peer replays the shipped journal and
//!   re-mints the dead node's handles at their recorded URIs.
//!
//! The [`wal`] layer also carries an error-injecting shim
//! ([`WalFailpoint`]): armed with a [`FailMode`] (disk full, sticky I/O
//! error, torn write) it makes journal writes fail the way real disks do,
//! which is what the fault-injection tests drive.
//!
//! `DurableServer` implements the full unified backend trait stack
//! ([`Backend`](exacml_plus::Backend) and its three planes), so it is a
//! drop-in third deployment shape next to `DataServer` and `Fabric`:
//! `exacml::BackendBuilder::durable(path)` builds one, the conformance
//! suite in `tests/backend_conformance.rs` runs the shared semantics
//! against it, and `examples/durable_restart.rs` demonstrates the
//! kill/recover cycle. The record format and crash-consistency guarantees
//! are documented in `docs/RECOVERY.md`; where the layer sits in the stack
//! is `docs/ARCHITECTURE.md`.

pub mod fabric;
pub mod record;
pub mod replication;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use fabric::{ReplicatedConfig, ReplicatedFabric};
pub use record::{GrantRecord, Record};
pub use replication::{ReplicaMirror, ShipOutcome};
pub use server::{DurableConfig, DurableServer, RecoveryReport, TopologyPreset};
pub use snapshot::Snapshot;
pub use wal::{FailMode, WalFailpoint};

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_dsms::{Schema, Tuple, Value};
    use exacml_plus::{AuditEventKind, StreamPolicyBuilder};
    use exacml_xacml::Request;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exacml-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
        Tuple::builder_shared(schema)
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .finish_with_defaults()
    }

    fn populated(path: &PathBuf) -> DurableServer {
        let server = DurableServer::create(path, DurableConfig::local()).unwrap();
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        server
    }

    #[test]
    fn crash_and_recover_preserves_control_plane_state() {
        let path = temp_store("basic");
        let handle = {
            let server = populated(&path);
            let granted = &server.live_grants()[0];
            assert_eq!(granted.subject, "LTA");
            granted.handle.clone()
            // Dropping the server without any shutdown protocol = a crash.
        };

        let recovered = DurableServer::recover(&path).unwrap();
        assert_eq!(recovered.policy_count(), 1);
        assert_eq!(recovered.inner().live_deployments(), 1);
        assert!(recovered
            .inner()
            .handle_is_live(&exacml_dsms::StreamHandle::from_uri(handle.clone())));
        assert_eq!(recovered.live_grants()[0].handle, handle);
        // The audit trail survived with its original events.
        let kinds: Vec<AuditEventKind> =
            recovered.inner().audit_events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&AuditEventKind::PolicyLoaded));
        assert!(kinds.contains(&AuditEventKind::Granted));
        // The single-access guard state survived too: a different query on
        // the held stream is still blocked.
        let query = exacml_plus::UserQuery::for_stream("weather").with_filter("rainrate > 70");
        assert!(matches!(
            recovered.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)),
            Err(exacml_plus::ExacmlError::MultipleAccess { .. })
        ));
    }

    #[test]
    fn recovered_store_keeps_journaling_and_recovers_again() {
        let path = temp_store("chain");
        drop(populated(&path));

        let recovered = DurableServer::recover(&path).unwrap();
        let schema = Schema::weather_example().shared();
        recovered
            .push_batch("weather", (0..8).map(|i| weather_tuple(&schema, i, 10.0)).collect())
            .unwrap();
        assert!(recovered.release_access("LTA", "weather"));
        drop(recovered);

        let again = DurableServer::recover(&path).unwrap();
        assert!(again.live_grants().is_empty());
        assert_eq!(again.inner().live_deployments(), 0);
        // Ingest replay restored the engine's view of the stream.
        assert_eq!(again.inner().engine_stats().tuples_ingested, 8);
        let released = again
            .inner()
            .audit_events()
            .iter()
            .filter(|e| e.kind == AuditEventKind::AccessReleased)
            .count();
        assert_eq!(released, 1);
    }

    #[test]
    fn snapshot_compacts_and_recovery_uses_it() {
        let path = temp_store("compact");
        let server = populated(&path);
        assert!(server.wal_tail_len() > 0);
        server.snapshot().unwrap();
        assert_eq!(server.wal_tail_len(), 0);
        // Post-snapshot activity lands in the (fresh) WAL tail.
        server.register_stream("gps", Schema::gps_example()).unwrap();
        drop(server);

        let recovered = DurableServer::recover(&path).unwrap();
        let report = recovered.recovery_report();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_grants, 1);
        assert_eq!(report.wal_records_replayed, 1);
        assert!(recovered.inner().engine().catalog().contains("gps"));
        assert_eq!(recovered.policy_count(), 1);
    }

    #[test]
    fn create_refuses_an_existing_store_and_open_recovers_it() {
        let path = temp_store("open");
        drop(populated(&path));
        assert!(matches!(
            DurableServer::create(&path, DurableConfig::local()),
            Err(exacml_plus::ExacmlError::Durability(_))
        ));
        let reopened = DurableServer::open(&path, DurableConfig::local()).unwrap();
        assert_eq!(reopened.policy_count(), 1);
        // The persisted meta.json (not the passed config) decides behaviour.
        assert_eq!(reopened.config().topology, TopologyPreset::Local);
    }

    #[test]
    fn released_deployment_ids_are_never_reissued_after_recovery() {
        let path = temp_store("ids");
        let first_handle = {
            let server = populated(&path);
            let handle = server.live_grants()[0].handle.clone();
            assert!(server.release_access("LTA", "weather"));
            handle
        };
        let recovered = DurableServer::recover(&path).unwrap();
        let granted =
            recovered.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        // The new grant must mint a *fresh* handle: a consumer still holding
        // the released URI must not silently observe someone else's stream.
        assert_ne!(granted.handle().uri(), first_handle);
    }
}
