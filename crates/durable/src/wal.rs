//! The write-ahead log: checksummed, line-framed records over `std::fs`.
//!
//! # Record framing
//!
//! The log is a plain text file. Every record occupies exactly one line:
//!
//! ```text
//! <checksum> <payload>\n
//! ```
//!
//! where `<checksum>` is the 64-bit FNV-1a hash of the payload bytes,
//! rendered as 16 lower-case hex digits, and `<payload>` is one compact JSON
//! object carrying a monotonically increasing `"seq"` field (see
//! [`crate::record`] for the payload vocabulary). The trailing newline is
//! the commit marker: a record without it was torn mid-write.
//!
//! # Torn writes and truncated tails
//!
//! [`read_wal`] accepts the longest valid prefix of the file and reports
//! everything after it as a lost tail:
//!
//! * a final line with no `\n` is an interrupted append — dropped;
//! * a line whose checksum does not match its payload is a torn or
//!   corrupted write — that record *and everything after it* is dropped
//!   (later records may depend on the lost one, so replaying them would
//!   fabricate a state that never existed);
//! * a payload that fails to parse as JSON or carries no `seq` is treated
//!   the same way.
//!
//! Recovery then truncates the file back to the valid prefix
//! ([`truncate_to`]) before appending again, so one torn write can never
//! shadow later, healthy appends. `docs/RECOVERY.md` walks through the
//! whole procedure.

use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a folded over 8-byte little-endian words (the final partial
/// word is zero-padded and the byte length is mixed in, so padding cannot
/// collide). Word-at-a-time keeps the hash off the ingest hot path — ~8×
/// the throughput of the byte-wise original. Not cryptographic — it guards
/// against torn writes and bit rot, not adversaries (the store directory is
/// trusted exactly like the server's memory).
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
        hash = hash.wrapping_mul(PRIME);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        hash ^= u64::from_le_bytes(word);
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^ bytes.len() as u64
}

/// Frame one payload as a WAL line (checksum, space, payload, newline).
#[must_use]
pub fn frame(payload: &str) -> String {
    format!("{:016x} {payload}\n", checksum(payload.as_bytes()))
}

/// Parse one framed line (without its newline) back into its payload.
/// Returns `None` when the frame is malformed or the checksum mismatches.
#[must_use]
pub fn unframe(line: &str) -> Option<&str> {
    let (hex, payload) = line.split_at_checked(16)?;
    let payload = payload.strip_prefix(' ')?;
    let stated = u64::from_str_radix(hex, 16).ok()?;
    (stated == checksum(payload.as_bytes())).then_some(payload)
}

/// One successfully read WAL record: its sequence number and parsed payload.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The record's journal sequence number.
    pub seq: u64,
    /// The parsed JSON payload (decoded further by [`crate::record`]).
    pub value: Value,
}

/// What [`read_wal`] found.
#[derive(Debug, Clone, Default)]
pub struct WalContents {
    /// The valid records, in file order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix of the file.
    pub valid_len: u64,
    /// Why reading stopped before the end of the file, if it did. The bytes
    /// past `valid_len` are a torn or corrupted tail.
    pub tail_error: Option<String>,
}

/// Read every valid record from a WAL file. A missing file reads as empty.
///
/// # Errors
/// Fails only on I/O errors; torn or corrupted tails are reported in
/// [`WalContents::tail_error`], not as errors.
pub fn read_wal(path: &Path) -> std::io::Result<WalContents> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalContents::default()),
        Err(e) => return Err(e),
    };
    let mut contents = WalContents::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(newline) = bytes[offset..].iter().position(|b| *b == b'\n') else {
            contents.tail_error = Some("final record has no commit newline".to_string());
            break;
        };
        let line = &bytes[offset..offset + newline];
        let Some(payload) = std::str::from_utf8(line).ok().and_then(unframe) else {
            contents.tail_error = Some(format!("checksum or frame mismatch at byte {offset}"));
            break;
        };
        let parsed = match serde_json::from_str(payload) {
            Ok(value) => value,
            Err(e) => {
                contents.tail_error = Some(format!("unparseable payload at byte {offset}: {e}"));
                break;
            }
        };
        let Some(seq) = parsed.get("seq").and_then(Value::as_f64) else {
            contents.tail_error = Some(format!("record at byte {offset} carries no seq"));
            break;
        };
        contents.records.push(WalRecord { seq: seq as u64, value: parsed });
        offset += newline + 1;
        contents.valid_len = offset as u64;
    }
    Ok(contents)
}

/// Truncate a WAL file back to its valid prefix (dropping a torn tail so
/// later appends cannot be shadowed by garbage in the middle of the file).
///
/// # Errors
/// Propagates I/O errors.
pub fn truncate_to(path: &Path, len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// An injected filesystem failure mode for [`WalFailpoint`].
///
/// These model the disk faults the recovery procedure must survive — the
/// real versions need a failing device or an out-of-space volume, the shim
/// produces them on demand on a healthy filesystem.
#[derive(Debug, Clone)]
pub enum FailMode {
    /// The disk has `remaining` bytes left: appends succeed until a record
    /// no longer fits, which is written **torn** (its first bytes reach the
    /// file, the commit newline does not) and converts the failpoint to
    /// [`FailMode::Sticky`] — a full disk does not un-fill itself.
    DiskFull {
        /// Bytes of framed WAL data still accepted before the device fills.
        remaining: usize,
    },
    /// Every write fails with `message`, nothing reaches the file — a dead
    /// or ejected device.
    Sticky {
        /// The error message surfaced on every subsequent write.
        message: String,
    },
    /// The next append is torn after `keep` bytes of the framed record
    /// (simulating a crash mid-`write(2)`), then the failpoint converts to
    /// [`FailMode::Sticky`].
    TornWrite {
        /// Bytes of the framed record that reach the file before the tear.
        keep: usize,
    },
}

/// The decision [`WalFailpoint::intercept`] takes for one framed record.
enum Intercept {
    /// No fault active — write normally.
    Pass,
    /// Write only the first `keep` bytes (torn), then fail with `error`.
    WriteTorn { keep: usize, error: String },
    /// Write nothing, fail with `error`.
    Fail { error: String },
}

/// An error-injecting shim between [`WalWriter`] and the filesystem.
///
/// Disarmed (the default) it costs one relaxed atomic load per append, so
/// the shim stays compiled into the production ingest path. Arming it makes
/// the writer *actually* produce the on-disk states the fault models — a
/// torn record's prefix really reaches the file, so recovery code is
/// exercised against genuine torn tails rather than hand-crafted ones.
#[derive(Debug, Default)]
pub struct WalFailpoint {
    armed: AtomicBool,
    mode: Mutex<Option<FailMode>>,
}

impl WalFailpoint {
    /// Arm the failpoint with a failure mode. Replaces any previous mode.
    pub fn arm(&self, mode: FailMode) {
        *self.mode.lock().expect("failpoint mode lock") = Some(mode);
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm the failpoint; subsequent writes behave normally.
    pub fn disarm(&self) {
        *self.mode.lock().expect("failpoint mode lock") = None;
        self.armed.store(false, Ordering::Release);
    }

    /// Whether a failure mode is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// The sticky error message, when the armed mode fails *every* write
    /// (not just the next append) — flushes must fail too.
    fn sticky_error(&self) -> Option<String> {
        if !self.is_armed() {
            return None;
        }
        match &*self.mode.lock().expect("failpoint mode lock") {
            Some(FailMode::Sticky { message }) => Some(message.clone()),
            _ => None,
        }
    }

    /// Decide what happens to one framed record of `line_len` bytes,
    /// advancing the mode's internal state (budget consumption, conversion
    /// to sticky).
    fn intercept(&self, line_len: usize) -> Intercept {
        let mut guard = self.mode.lock().expect("failpoint mode lock");
        match guard.take() {
            None => Intercept::Pass,
            Some(FailMode::DiskFull { remaining }) => {
                if line_len <= remaining {
                    *guard = Some(FailMode::DiskFull { remaining: remaining - line_len });
                    return Intercept::Pass;
                }
                let message = "no space left on device (injected)".to_string();
                *guard = Some(FailMode::Sticky { message: message.clone() });
                Intercept::WriteTorn { keep: remaining, error: message }
            }
            Some(FailMode::Sticky { message }) => {
                *guard = Some(FailMode::Sticky { message: message.clone() });
                Intercept::Fail { error: message }
            }
            Some(FailMode::TornWrite { keep }) => {
                let message = "write torn mid-append (injected)".to_string();
                *guard = Some(FailMode::Sticky { message: message.clone() });
                Intercept::WriteTorn { keep: keep.min(line_len), error: message }
            }
        }
    }
}

/// An append-only writer over one WAL file.
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Flush + fsync after every record (crash-proof but slow) instead of
    /// only flushing to the OS (torn-tail-proof; loses at most what the OS
    /// had not written back on a *power* failure, nothing on a process
    /// crash).
    sync_writes: bool,
    /// The error-injecting shim. Disarmed in production: one relaxed load
    /// per append.
    failpoint: Arc<WalFailpoint>,
}

impl WalWriter {
    /// Open (creating if necessary) a WAL file for appending.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn open(path: impl Into<PathBuf>, sync_writes: bool) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter {
            path,
            file: BufWriter::with_capacity(256 * 1024, file),
            sync_writes,
            failpoint: Arc::new(WalFailpoint::default()),
        })
    }

    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A shared handle to the writer's error-injecting shim; arm it to make
    /// subsequent writes fail in the chosen [`FailMode`].
    #[must_use]
    pub fn failpoint(&self) -> Arc<WalFailpoint> {
        Arc::clone(&self.failpoint)
    }

    /// Append one framed payload. The record is flushed to the OS before the
    /// call returns (and fsynced when the writer was opened with
    /// `sync_writes`), so an acknowledged append survives a process crash.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        self.append_buffered(payload)?;
        self.flush()
    }

    /// Append one framed payload into the writer's buffer *without* forcing
    /// it to the OS — the group-commit path for data-plane (ingest)
    /// records: the buffer drains when it fills (256 KiB), on the next
    /// synchronous append, on [`WalWriter::flush`], and on drop. A crash in
    /// between loses at most the buffered data records, never an
    /// already-flushed control-plane record.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append_buffered(&mut self, payload: &str) -> std::io::Result<()> {
        if self.failpoint.armed.load(Ordering::Relaxed) {
            return self.append_through_failpoint(payload);
        }
        // Equivalent to writing `frame(payload)` but without materializing
        // the concatenated line (this is the ingest hot path).
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let sum = checksum(payload.as_bytes());
        let mut head = [0u8; 17];
        for (i, byte) in head[..16].iter_mut().enumerate() {
            *byte = HEX[((sum >> (60 - 4 * i)) & 0xf) as usize];
        }
        head[16] = b' ';
        self.file.write_all(&head)?;
        self.file.write_all(payload.as_bytes())?;
        self.file.write_all(b"\n")
    }

    /// The armed-failpoint append path: consult the shim, and when it orders
    /// a torn write make the record's prefix *actually* reach the file so a
    /// later recovery sees a genuine torn tail.
    fn append_through_failpoint(&mut self, payload: &str) -> std::io::Result<()> {
        let line = frame(payload);
        match self.failpoint.intercept(line.len()) {
            Intercept::Pass => {
                self.file.write_all(line.as_bytes())?;
                Ok(())
            }
            Intercept::WriteTorn { keep, error } => {
                // Drain healthy buffered records first so the torn bytes
                // land after them, exactly as a real device would order it.
                self.file.flush()?;
                let mut raw: &File = self.file.get_ref();
                raw.write_all(&line.as_bytes()[..keep])?;
                raw.sync_data()?;
                Err(std::io::Error::other(error))
            }
            Intercept::Fail { error } => Err(std::io::Error::other(error)),
        }
    }

    /// Drain the buffer to the OS (and to disk when `sync_writes`).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Some(message) = self.failpoint.sticky_error() {
            return Err(std::io::Error::other(message));
        }
        self.file.flush()?;
        if self.sync_writes {
            self.file.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Reset the log to empty (after its contents were folded into a
    /// snapshot).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().set_len(0)?;
        self.file.get_ref().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exacml-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn frame_and_unframe_round_trip() {
        let payload = r#"{"seq":7,"op":"release"}"#;
        let line = frame(payload);
        assert!(line.ends_with('\n'));
        assert_eq!(unframe(line.trim_end_matches('\n')), Some(payload));
        // A flipped payload byte breaks the checksum.
        let tampered = line.replace("release", "rElease");
        assert_eq!(unframe(tampered.trim_end_matches('\n')), None);
        // Malformed frames are rejected, not panicked on.
        assert_eq!(unframe(""), None);
        assert_eq!(unframe("zzzz"), None);
        assert_eq!(unframe("0123456789abcdef{no-space}"), None);
    }

    #[test]
    fn append_read_and_missing_file() {
        let path = temp_wal("rt");
        assert!(read_wal(&path).unwrap().records.is_empty());
        let mut writer = WalWriter::open(&path, false).unwrap();
        for seq in 0..5u64 {
            writer.append(&format!(r#"{{"seq":{seq},"op":"noop"}}"#)).unwrap();
        }
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 5);
        assert!(contents.tail_error.is_none());
        assert_eq!(contents.valid_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(contents.records[3].seq, 3);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncatable() {
        let path = temp_wal("torn");
        let mut writer = WalWriter::open(&path, true).unwrap();
        writer.append(r#"{"seq":0,"op":"a"}"#).unwrap();
        writer.append(r#"{"seq":1,"op":"b"}"#).unwrap();
        drop(writer);
        // Simulate a crash mid-append: half a framed record, no newline.
        let full = std::fs::read(&path).unwrap();
        let torn = frame(r#"{"seq":2,"op":"c"}"#);
        let mut bytes = full.clone();
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(contents.tail_error.unwrap().contains("no commit newline"));
        assert_eq!(contents.valid_len, full.len() as u64);

        truncate_to(&path, contents.valid_len).unwrap();
        let clean = read_wal(&path).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert!(clean.tail_error.is_none());
    }

    #[test]
    fn corruption_mid_file_drops_everything_after_it() {
        let path = temp_wal("mid");
        let mut writer = WalWriter::open(&path, false).unwrap();
        for seq in 0..4u64 {
            writer.append(&format!(r#"{{"seq":{seq},"op":"x"}}"#)).unwrap();
        }
        drop(writer);
        // Flip one byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_start = bytes.iter().position(|b| *b == b'\n').unwrap() + 1;
        bytes[second_start + 20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "records after the corruption must not replay");
        assert!(contents.tail_error.unwrap().contains("checksum"));
    }

    #[test]
    fn disk_full_failpoint_tears_the_overflowing_record_then_sticks() {
        let path = temp_wal("full");
        let mut writer = WalWriter::open(&path, false).unwrap();
        writer.append(r#"{"seq":0,"op":"a"}"#).unwrap();
        let one_record = std::fs::metadata(&path).unwrap().len() as usize;

        // Budget for one-and-a-half more records: the second append fits,
        // the third is torn mid-write.
        writer.failpoint().arm(FailMode::DiskFull { remaining: one_record + one_record / 2 });
        writer.append(r#"{"seq":1,"op":"b"}"#).unwrap();
        let err = writer.append(r#"{"seq":2,"op":"c"}"#).unwrap_err();
        assert!(err.to_string().contains("no space left"), "unexpected error: {err}");
        // The device stays full: later appends and flushes keep failing.
        assert!(writer.append(r#"{"seq":3,"op":"d"}"#).is_err());
        assert!(writer.flush().is_err());
        drop(writer);

        // The torn prefix really reached the file; the readable prefix (two
        // committed records) survives intact.
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert!(on_disk > 2 * one_record as u64, "the torn prefix must reach the file");
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert_eq!(contents.records[1].seq, 1);
        assert!(contents.tail_error.is_some());
    }

    #[test]
    fn torn_write_failpoint_then_recovery_truncates_cleanly() {
        let path = temp_wal("fp-torn");
        let mut writer = WalWriter::open(&path, true).unwrap();
        writer.append(r#"{"seq":0,"op":"a"}"#).unwrap();
        writer.failpoint().arm(FailMode::TornWrite { keep: 7 });
        assert!(writer.append(r#"{"seq":1,"op":"b"}"#).is_err());
        drop(writer);

        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.tail_error.is_some());
        truncate_to(&path, contents.valid_len).unwrap();

        // After "replacing the device" (a fresh writer, failpoint disarmed)
        // the log accepts appends again.
        let mut writer = WalWriter::open(&path, true).unwrap();
        writer.append(r#"{"seq":1,"op":"b"}"#).unwrap();
        let clean = read_wal(&path).unwrap();
        assert_eq!(clean.records.len(), 2);
        assert!(clean.tail_error.is_none());
    }

    #[test]
    fn sticky_failpoint_writes_nothing_and_disarm_restores_service() {
        let path = temp_wal("fp-sticky");
        let mut writer = WalWriter::open(&path, false).unwrap();
        writer.append(r#"{"seq":0,"op":"a"}"#).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        let failpoint = writer.failpoint();
        failpoint.arm(FailMode::Sticky { message: "io error (injected)".into() });
        assert!(writer.append(r#"{"seq":1,"op":"b"}"#).is_err());
        assert!(writer.flush().is_err());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before, "sticky writes nothing");
        failpoint.disarm();
        assert!(!failpoint.is_armed());
        writer.append(r#"{"seq":1,"op":"b"}"#).unwrap();
        assert_eq!(read_wal(&path).unwrap().records.len(), 2);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal("reset");
        let mut writer = WalWriter::open(&path, false).unwrap();
        writer.append(r#"{"seq":0,"op":"x"}"#).unwrap();
        writer.reset().unwrap();
        assert!(read_wal(&path).unwrap().records.is_empty());
        writer.append(r#"{"seq":1,"op":"y"}"#).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].seq, 1);
    }
}
