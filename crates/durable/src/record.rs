//! The WAL record vocabulary: every state-mutating operation of a data
//! server, as a JSON payload that replays deterministically.
//!
//! One record is one compact JSON object with a `"seq"` (journal sequence
//! number) and an `"op"` discriminator; the remaining fields depend on the
//! operation. Policies and user queries are journaled in their *wire*
//! forms — the XACML policy document and the Figure 4(a) user-query XML —
//! so the journal depends only on formats the system already round-trips,
//! not on Rust struct layouts. Stream schemas and audit events use the
//! workspace's `serde` encoding; ingest rows are positional JSON scalars
//! typed by the stream schema at replay time ([`decode_row`]).
//! `docs/RECOVERY.md` documents every shape with examples.
//!
//! Decoding is defensive: a record that does not match the vocabulary is
//! reported as an error string (recovery treats it like a corrupt tail)
//! rather than panicking.

use exacml_dsms::{DataType, Field, Schema, Tuple, Value as DsmsValue};
use exacml_plus::{AuditEvent, AuditEventKind};
use serde::{Content, Serialize};
use serde_json::Value;

/// A live access grant, as journaled and as carried in snapshots.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GrantRecord {
    /// The requesting subject.
    pub subject: String,
    /// The stream access was granted on.
    pub stream: String,
    /// The customised user query, in its Figure 4(a) XML form (absent when
    /// the request carried none).
    pub query_xml: Option<String>,
    /// The engine deployment id the grant minted. Replay resumes the
    /// engine's id counter here so the same deployment id — and therefore
    /// the same handle URI — is minted again.
    pub deployment: u64,
    /// The handle URI the consumer holds; replay verifies it re-minted
    /// identically.
    pub handle: String,
}

/// One journaled state-mutating operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An input stream was registered.
    RegisterStream {
        /// The stream name.
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// A policy was loaded (journaled as its XACML document).
    LoadPolicy {
        /// The policy's XML wire form.
        xml: String,
    },
    /// A policy was removed (its query graphs withdrawn).
    RemovePolicy {
        /// The removed policy id.
        id: String,
    },
    /// A policy was replaced (the old version's graphs withdrawn).
    UpdatePolicy {
        /// The new version's XML wire form.
        xml: String,
    },
    /// An access request was granted and a query graph deployed.
    Grant(GrantRecord),
    /// A live access was explicitly released.
    Release {
        /// The releasing subject.
        subject: String,
        /// The stream released.
        stream: String,
    },
    /// An audit event, journaled verbatim so the trail survives restarts
    /// with its original timestamps and sequence numbers (replaying the
    /// operations would regenerate it with fresh ones).
    Audit(AuditEvent),
    /// A batch of source tuples pushed into a stream (journaled only when
    /// ingest journaling is enabled — see `DurableConfig::journal_ingest`).
    ///
    /// Rows are journaled *positionally and untagged*: each cell is a plain
    /// JSON scalar, typed during replay by the stream's schema (see
    /// [`decode_row`]). This keeps the ingest hot path allocation-light; the
    /// trade-off is that replayed cells are schema-canonical — an integer
    /// literal sitting in a floating-point field comes back as a double.
    Ingest {
        /// The stream the batch was pushed into.
        stream: String,
        /// The raw JSON cells, decoded against the schema at replay time.
        rows: Vec<Vec<Value>>,
    },
}

impl Record {
    /// The record's `"op"` discriminator.
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            Record::RegisterStream { .. } => "register_stream",
            Record::LoadPolicy { .. } => "load_policy",
            Record::RemovePolicy { .. } => "remove_policy",
            Record::UpdatePolicy { .. } => "update_policy",
            Record::Grant(_) => "grant",
            Record::Release { .. } => "release",
            Record::Audit(_) => "audit",
            Record::Ingest { .. } => "ingest",
        }
    }

    fn content(&self, seq: u64) -> Content {
        let mut entries = vec![
            ("seq".to_string(), Content::U64(seq)),
            ("op".to_string(), Content::Str(self.op().to_string())),
        ];
        let mut push = |key: &str, content: Content| entries.push((key.to_string(), content));
        match self {
            Record::RegisterStream { name, schema } => {
                push("name", name.to_content());
                push("schema", schema.to_content());
            }
            Record::LoadPolicy { xml } | Record::UpdatePolicy { xml } => {
                push("xml", xml.to_content());
            }
            Record::RemovePolicy { id } => push("id", id.to_content()),
            Record::Grant(grant) => push("grant", grant.to_content()),
            Record::Release { subject, stream } => {
                push("subject", subject.to_content());
                push("stream", stream.to_content());
            }
            Record::Audit(event) => push("event", event.to_content()),
            Record::Ingest { stream, rows } => {
                push("stream", stream.to_content());
                push(
                    "rows",
                    Content::Seq(
                        rows.iter()
                            .map(|row| Content::Seq(row.iter().map(raw_cell_content).collect()))
                            .collect(),
                    ),
                );
            }
        }
        Content::Map(entries)
    }

    /// Encode the record as its JSON payload (framing — checksum and
    /// newline — is the WAL's job).
    ///
    /// # Errors
    /// Fails only when a journaled float is NaN or infinite, which JSON
    /// cannot represent.
    pub fn encode(&self, seq: u64) -> Result<String, serde_json::Error> {
        serde_json::content_to_string(&self.content(seq))
    }
}

/// A raw ingest cell (as parsed back from the journal) rendered as
/// [`Content`] for the generic record encoder.
fn raw_cell_content(cell: &Value) -> Content {
    match cell {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        // Rows never carry containers; encode defensively as null.
        Value::Array(_) | Value::Object(_) => Content::Null,
    }
}

fn push_u64(out: &mut String, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("ASCII digits"));
}

fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
    }
    push_u64(out, v.unsigned_abs());
}

fn push_f64(out: &mut String, f: f64) -> Result<(), serde_json::Error> {
    if !f.is_finite() {
        // Delegate to the shared serializer for its canonical error.
        serde_json::content_to_string(&Content::F64(f))?;
    }
    if f == f.trunc() && f.abs() < 1e15 {
        // The common case (timestamps, counters, sensor defaults) without
        // the float formatting machinery; matches serde_json's `{f:.1}`.
        push_i64(out, f as i64);
        out.push_str(".0");
    } else {
        use std::fmt::Write;
        let _ = write!(out, "{f}");
    }
    Ok(())
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encode an ingest record straight from the tuple batch into `out`
/// (cleared first), bypassing the `Content` tree entirely — this runs once
/// per acknowledged push, concurrent with stream processing, so it is the
/// one encoder that matters for ingest throughput.
///
/// # Errors
/// Fails only when a tuple carries a NaN or infinite float.
pub fn encode_ingest_into(
    out: &mut String,
    seq: u64,
    stream: &str,
    tuples: &[Tuple],
) -> Result<(), serde_json::Error> {
    out.clear();
    let width = tuples.first().map_or(0, |t| t.values().len());
    out.reserve(48 + stream.len() + tuples.len() * (2 + 8 * width));
    out.push_str("{\"seq\":");
    push_u64(out, seq);
    out.push_str(",\"op\":\"ingest\",\"stream\":");
    push_json_string(out, stream);
    out.push_str(",\"rows\":[");
    for (i, tuple) in tuples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, value) in tuple.values().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match value {
                DsmsValue::Null => out.push_str("null"),
                DsmsValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                DsmsValue::Int(v) | DsmsValue::Timestamp(v) => push_i64(out, *v),
                DsmsValue::Double(f) => push_f64(out, *f)?,
                DsmsValue::Text(s) => push_json_string(out, s),
            }
        }
        out.push(']');
    }
    out.push_str("]}");
    Ok(())
}

/// [`encode_ingest_into`] into a fresh string (tests, small paths).
///
/// # Errors
/// As [`encode_ingest_into`].
pub fn encode_ingest(
    seq: u64,
    stream: &str,
    tuples: &[Tuple],
) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    encode_ingest_into(&mut out, seq, stream, tuples)?;
    Ok(out)
}

/// Decode one positional row against the stream's schema: numbers become
/// the field's declared type (`Int`, `Double` or `Timestamp`), `null` is
/// [`DsmsValue::Null`], booleans and strings map to their only homes.
/// Integer cells are exact up to ±2^53 (JSON numbers travel as `f64`),
/// far beyond any epoch-milliseconds timestamp or sensor counter.
///
/// # Errors
/// Reports arity mismatches and cells incompatible with their field type.
pub fn decode_row(schema: &Schema, cells: &[Value]) -> Result<Vec<DsmsValue>, String> {
    if cells.len() != schema.len() {
        return Err(format!(
            "row arity {} does not match schema arity {}",
            cells.len(),
            schema.len()
        ));
    }
    schema
        .fields()
        .iter()
        .zip(cells)
        .map(|(field, cell)| match (cell, field.data_type) {
            (Value::Null, _) => Ok(DsmsValue::Null),
            (Value::Number(n), DataType::Int) => Ok(DsmsValue::Int(*n as i64)),
            (Value::Number(n), DataType::Timestamp) => Ok(DsmsValue::Timestamp(*n as i64)),
            (Value::Number(n), DataType::Double) => Ok(DsmsValue::Double(*n)),
            (Value::Bool(b), DataType::Bool) => Ok(DsmsValue::Bool(*b)),
            (Value::String(s), DataType::Text) => Ok(DsmsValue::Text(s.clone())),
            (other, ty) => {
                Err(format!("cell {other:?} is incompatible with field '{}': {ty}", field.name))
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Member lookup that reports *which* field was missing.
fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    value.get(key).ok_or_else(|| format!("record is missing '{key}'"))
}

fn str_field(value: &Value, key: &str) -> Result<String, String> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("'{key}' is not a string"))
}

/// Integers travel as JSON numbers (f64 in the vendored parser); they are
/// exact up to 2^53, far beyond any sequence or id this store mints.
fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key)?.as_f64().map(|f| f as u64).ok_or_else(|| format!("'{key}' is not a number"))
}

fn opt_str_field(value: &Value, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' is neither null nor a string")),
    }
}

fn decode_data_type(name: &str) -> Result<DataType, String> {
    match name {
        "Int" => Ok(DataType::Int),
        "Double" => Ok(DataType::Double),
        "Bool" => Ok(DataType::Bool),
        "Text" => Ok(DataType::Text),
        "Timestamp" => Ok(DataType::Timestamp),
        other => Err(format!("unknown data type '{other}'")),
    }
}

/// Decode a schema from its serde encoding
/// (`{"fields":[{"name":…,"data_type":…},…]}`).
pub fn decode_schema(value: &Value) -> Result<Schema, String> {
    let fields =
        field(value, "fields")?.as_array().ok_or_else(|| "'fields' is not an array".to_string())?;
    let mut decoded = Vec::with_capacity(fields.len());
    for f in fields {
        let name = str_field(f, "name")?;
        let data_type = decode_data_type(&str_field(f, "data_type")?)?;
        decoded.push(Field::new(name, data_type));
    }
    Ok(Schema::new(decoded))
}

/// The journal's name for an audit-event kind — the serde derive's
/// unit-variant encoding (the variant name). Exhaustive on purpose: adding
/// a kind fails compilation here, forcing the decode match below (and the
/// recovery path with it) to learn the new name *before* a live server can
/// journal events an older `recover()` would choke on.
fn audit_kind_name(kind: AuditEventKind) -> &'static str {
    match kind {
        AuditEventKind::Granted => "Granted",
        AuditEventKind::Reused => "Reused",
        AuditEventKind::Denied => "Denied",
        AuditEventKind::Conflict => "Conflict",
        AuditEventKind::MultipleAccessBlocked => "MultipleAccessBlocked",
        AuditEventKind::PolicyLoaded => "PolicyLoaded",
        AuditEventKind::PolicyRemoved => "PolicyRemoved",
        AuditEventKind::PolicyUpdated => "PolicyUpdated",
        AuditEventKind::AccessReleased => "AccessReleased",
    }
}

fn decode_audit_kind(name: &str) -> Result<AuditEventKind, String> {
    AuditEventKind::ALL
        .into_iter()
        .find(|kind| audit_kind_name(*kind) == name)
        .ok_or_else(|| format!("unknown audit event kind '{name}'"))
}

/// Decode an audit event from its serde encoding.
pub fn decode_audit_event(value: &Value) -> Result<AuditEvent, String> {
    Ok(AuditEvent {
        sequence: u64_field(value, "sequence")?,
        timestamp_ms: u64_field(value, "timestamp_ms")?,
        kind: decode_audit_kind(&str_field(value, "kind")?)?,
        subject: opt_str_field(value, "subject")?,
        stream: opt_str_field(value, "stream")?,
        policy_id: opt_str_field(value, "policy_id")?,
        detail: str_field(value, "detail")?,
    })
}

/// Decode a grant from its serde encoding.
pub fn decode_grant(value: &Value) -> Result<GrantRecord, String> {
    Ok(GrantRecord {
        subject: str_field(value, "subject")?,
        stream: str_field(value, "stream")?,
        query_xml: opt_str_field(value, "query_xml")?,
        deployment: u64_field(value, "deployment")?,
        handle: str_field(value, "handle")?,
    })
}

/// Decode one parsed WAL payload back into its [`Record`].
///
/// # Errors
/// Returns a description of the first mismatch against the vocabulary.
pub fn decode(value: &Value) -> Result<Record, String> {
    let op = str_field(value, "op")?;
    match op.as_str() {
        "register_stream" => Ok(Record::RegisterStream {
            name: str_field(value, "name")?,
            schema: decode_schema(field(value, "schema")?)?,
        }),
        "load_policy" => Ok(Record::LoadPolicy { xml: str_field(value, "xml")? }),
        "remove_policy" => Ok(Record::RemovePolicy { id: str_field(value, "id")? }),
        "update_policy" => Ok(Record::UpdatePolicy { xml: str_field(value, "xml")? }),
        "grant" => Ok(Record::Grant(decode_grant(field(value, "grant")?)?)),
        "release" => Ok(Record::Release {
            subject: str_field(value, "subject")?,
            stream: str_field(value, "stream")?,
        }),
        "audit" => Ok(Record::Audit(decode_audit_event(field(value, "event")?)?)),
        "ingest" => {
            let stream = str_field(value, "stream")?;
            let rows = field(value, "rows")?
                .as_array()
                .ok_or_else(|| "'rows' is not an array".to_string())?;
            let mut decoded = Vec::with_capacity(rows.len());
            for row in rows {
                let cells =
                    row.as_array().ok_or_else(|| "ingest row is not an array".to_string())?;
                decoded.push(cells.to_vec());
            }
            Ok(Record::Ingest { stream, rows: decoded })
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: &Record) -> Record {
        let encoded = record.encode(9).unwrap();
        let value = serde_json::from_str(&encoded).unwrap();
        assert_eq!(value.get("seq").and_then(Value::as_f64), Some(9.0));
        decode(&value).unwrap()
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = [
            Record::RegisterStream { name: "weather".into(), schema: Schema::weather_example() },
            Record::LoadPolicy { xml: "<Policy PolicyId=\"p\"/>".into() },
            Record::RemovePolicy { id: "p".into() },
            Record::UpdatePolicy { xml: "<Policy PolicyId=\"p\"/>".into() },
            Record::Grant(GrantRecord {
                subject: "LTA".into(),
                stream: "weather".into(),
                query_xml: Some("<UserQuery/>".into()),
                deployment: 4,
                handle: "exacml://dsms/streams/4".into(),
            }),
            Record::Grant(GrantRecord {
                subject: "LTA".into(),
                stream: "weather".into(),
                query_xml: None,
                deployment: 5,
                handle: "exacml://dsms/streams/5".into(),
            }),
            Record::Release { subject: "LTA".into(), stream: "weather".into() },
            Record::Audit(AuditEvent {
                sequence: 17,
                timestamp_ms: 1_700_000_000_123,
                kind: AuditEventKind::MultipleAccessBlocked,
                subject: Some("LTA".into()),
                stream: Some("weather".into()),
                policy_id: None,
                detail: "blocked".into(),
            }),
            Record::Ingest {
                stream: "weather".into(),
                rows: vec![
                    vec![
                        Value::Number(30_000.0),
                        Value::Number(7.5),
                        Value::Bool(true),
                        Value::String("n\"e\na".into()),
                        Value::Null,
                    ],
                    vec![Value::Number(60_000.0)],
                ],
            },
        ];
        for record in &records {
            assert_eq!(&round_trip(record), record, "round trip of {}", record.op());
        }
    }

    #[test]
    fn ingest_fast_path_round_trips_schema_typed_rows() {
        let schema = Schema::weather_example().shared();
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| {
                Tuple::builder_shared(&schema)
                    .set("samplingtime", DsmsValue::Timestamp(i * 30_000))
                    .set("rainrate", 6.5)
                    .finish_with_defaults()
            })
            .collect();
        let fast = encode_ingest(3, "weather", &tuples).unwrap();
        match decode(&serde_json::from_str(&fast).unwrap()).unwrap() {
            Record::Ingest { stream, rows } => {
                assert_eq!(stream, "weather");
                assert_eq!(rows.len(), 3);
                let decoded = decode_row(&schema, &rows[1]).unwrap();
                assert_eq!(decoded[0], DsmsValue::Timestamp(30_000));
                assert_eq!(decoded[schema.index_of("rainrate").unwrap()], DsmsValue::Double(6.5));
                // The replayed row rebuilds a valid tuple for this schema.
                assert!(Tuple::new(schema.clone(), decoded).is_ok());
            }
            other => panic!("expected ingest, got {other:?}"),
        }
    }

    #[test]
    fn fast_encoder_handles_every_scalar_shape() {
        let schema = Schema::from_pairs([
            ("t", exacml_dsms::DataType::Timestamp),
            ("d", exacml_dsms::DataType::Double),
            ("i", exacml_dsms::DataType::Int),
            ("b", exacml_dsms::DataType::Bool),
            ("s", exacml_dsms::DataType::Text),
        ])
        .shared();
        let tuple = Tuple::new(
            schema.clone(),
            vec![
                DsmsValue::Timestamp(-7),
                DsmsValue::Double(0.125),
                // Integers are exact through the journal up to ±2^53 (JSON
                // numbers travel as f64 in the vendored parser).
                DsmsValue::Int(-(1 << 53) + 1),
                DsmsValue::Bool(false),
                DsmsValue::Text("tab\t\"q\" ☂".into()),
            ],
        )
        .unwrap();
        let encoded = encode_ingest(0, "s", std::slice::from_ref(&tuple)).unwrap();
        let parsed = serde_json::from_str(&encoded).unwrap();
        let Record::Ingest { rows, .. } = decode(&parsed).unwrap() else {
            panic!("expected ingest");
        };
        assert_eq!(decode_row(&schema, &rows[0]).unwrap(), tuple.values().to_vec());
        // NaN is unencodable, reported as an error not a corrupt record.
        let nan = Tuple::new(
            schema.clone(),
            vec![
                DsmsValue::Timestamp(0),
                DsmsValue::Double(f64::NAN),
                DsmsValue::Int(0),
                DsmsValue::Bool(false),
                DsmsValue::Text(String::new()),
            ],
        )
        .unwrap();
        assert!(encode_ingest(0, "s", std::slice::from_ref(&nan)).is_err());
    }

    #[test]
    fn every_audit_kind_survives_the_journal() {
        // The name table must agree with the serde derive's encoding for
        // every kind, or recovery would reject valid journals.
        for kind in AuditEventKind::ALL {
            assert_eq!(audit_kind_name(kind), format!("{kind:?}"), "name table drifted");
            let event = AuditEvent {
                sequence: 0,
                timestamp_ms: 1,
                kind,
                subject: None,
                stream: None,
                policy_id: None,
                detail: String::new(),
            };
            let encoded = Record::Audit(event.clone()).encode(0).unwrap();
            match decode(&serde_json::from_str(&encoded).unwrap()).unwrap() {
                Record::Audit(decoded) => assert_eq!(decoded, event),
                other => panic!("expected audit, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_payloads_are_reported_not_panicked() {
        for bad in [
            r#"{"seq":0}"#,
            r#"{"seq":0,"op":"warp"}"#,
            r#"{"seq":0,"op":"grant","grant":{"subject":"s"}}"#,
            r#"{"seq":0,"op":"register_stream","name":"s","schema":{"fields":[{"name":"a","data_type":"Quat"}]}}"#,
            r#"{"seq":0,"op":"ingest","stream":"s","rows":[7]}"#,
            r#"{"seq":0,"op":"audit","event":{"sequence":1,"timestamp_ms":2,"kind":"Nope","detail":""}}"#,
        ] {
            let value = serde_json::from_str(bad).unwrap();
            assert!(decode(&value).is_err(), "accepted {bad}");
        }
        // Schema-typed row decoding rejects arity and type mismatches.
        let schema = Schema::weather_example();
        assert!(decode_row(&schema, &[Value::Number(1.0)]).is_err());
        let mut row = vec![Value::Null; schema.len()];
        row[0] = Value::String("not a timestamp".into());
        assert!(decode_row(&schema, &row).is_err());
    }
}
