//! WAL shipping: file-level mirroring of one durable store onto peer hosts.
//!
//! Each logical node of the replicated fabric owns a [`crate::DurableServer`]
//! whose store directory is the authoritative journal. A [`ReplicaMirror`]
//! mirrors that store onto a peer host by shipping raw file bytes:
//!
//! * on **attach**, the mirror receives a full copy — `meta.json`, the
//!   snapshot when one exists, and the WAL from byte zero;
//! * afterwards each ship call appends only the WAL bytes past the mirror's
//!   acknowledged offset;
//! * a WAL that *shrank* since the last ship means the primary compacted
//!   (folded the journal into a snapshot and reset the log) — the mirror
//!   cannot express that incrementally, so it re-attaches: fresh snapshot,
//!   fresh meta, WAL restarted from the new byte zero.
//!
//! The bytes are opaque to the shipper; framing, checksums and torn-tail
//! handling are the WAL's own ([`crate::wal`]), which is exactly what makes
//! a mirror recoverable: `DurableServer::recover_with` on a replica
//! directory replays the longest valid prefix, and a ship interrupted
//! mid-record is indistinguishable from a torn write on the primary.
//!
//! The shipper is deliberately **mechanism only**: it moves bytes between
//! directories and tracks offsets. Scheduling (sync for control-plane,
//! batched for ingest), link delays, fault windows and retry budgets belong
//! to the replicated fabric broker in [`crate::fabric`].

use crate::server::DurableServer;
use std::io::Write;
use std::path::{Path, PathBuf};

/// What one ship call moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipOutcome {
    /// WAL bytes appended to (or re-copied into) the mirror.
    pub wal_bytes: u64,
    /// Whether the mirror was (re-)attached: meta + snapshot + full WAL.
    pub attached: bool,
}

impl ShipOutcome {
    /// Whether the call moved anything at all.
    #[must_use]
    pub fn shipped_anything(&self) -> bool {
        self.attached || self.wal_bytes > 0
    }
}

/// One peer host's mirror of a logical node's store.
#[derive(Debug)]
pub struct ReplicaMirror {
    /// The physical host holding this mirror.
    host: usize,
    /// The mirror directory on that host.
    dir: PathBuf,
    /// Whether the full-copy attach has happened.
    attached: bool,
    /// Bytes of the primary WAL already acknowledged by this mirror.
    wal_offset: u64,
    /// The primary's journal sequence number at the last acknowledged ship
    /// (lag = the primary's current sequence minus this).
    acked_seq: u64,
}

impl ReplicaMirror {
    /// A detached mirror on `host`, stored at `dir` (created on attach).
    #[must_use]
    pub fn new(host: usize, dir: PathBuf) -> Self {
        ReplicaMirror { host, dir, attached: false, wal_offset: 0, acked_seq: 0 }
    }

    /// The physical host holding this mirror.
    #[must_use]
    pub fn host(&self) -> usize {
        self.host
    }

    /// The mirror directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The primary journal sequence this mirror has acknowledged.
    #[must_use]
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// Force the next ship to re-attach (full copy) — used after the mirror
    /// host restarted and its disk state can no longer be trusted.
    pub fn detach(&mut self) {
        self.attached = false;
        self.wal_offset = 0;
        self.acked_seq = 0;
    }

    /// Mirror the primary's current on-disk state into this replica:
    /// a full copy on first contact (or after [`ReplicaMirror::detach`]),
    /// an incremental WAL append otherwise, a re-attach when the primary
    /// compacted. The caller must have flushed the primary's group-commit
    /// buffer first ([`DurableServer::flush_journal`]) — this function only
    /// reads files.
    ///
    /// # Errors
    /// Propagates I/O errors; the mirror's acknowledged offset only advances
    /// on success, so a failed ship is safely retried.
    pub fn ship_from(&mut self, primary: &DurableServer) -> std::io::Result<ShipOutcome> {
        let wal_path = primary.wal_path();
        let wal_len = file_len(&wal_path)?;
        if !self.attached || wal_len < self.wal_offset {
            let outcome = self.attach_from(primary, wal_len)?;
            self.acked_seq = primary.journal_seq();
            return Ok(outcome);
        }
        if wal_len == self.wal_offset {
            self.acked_seq = primary.journal_seq();
            return Ok(ShipOutcome::default());
        }
        let bytes = read_range(&wal_path, self.wal_offset, wal_len)?;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(self.dir.join("wal.log"))?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        self.wal_offset = wal_len;
        self.acked_seq = primary.journal_seq();
        Ok(ShipOutcome { wal_bytes: bytes.len() as u64, attached: false })
    }

    /// Full copy: meta, snapshot when present, WAL from byte zero. Clears
    /// any stale mirror state first (a leftover snapshot from before the
    /// primary's compaction horizon would otherwise shadow the fresh one).
    fn attach_from(
        &mut self,
        primary: &DurableServer,
        wal_len: u64,
    ) -> std::io::Result<ShipOutcome> {
        let _ = std::fs::remove_dir_all(&self.dir);
        std::fs::create_dir_all(&self.dir)?;
        std::fs::copy(primary.meta_path(), self.dir.join("meta.json"))?;
        let snapshot = primary.snapshot_path();
        if snapshot.exists() {
            std::fs::copy(&snapshot, self.dir.join("snapshot.json"))?;
        }
        let bytes = read_range(&primary.wal_path(), 0, wal_len)?;
        std::fs::write(self.dir.join("wal.log"), &bytes)?;
        self.attached = true;
        self.wal_offset = wal_len;
        Ok(ShipOutcome { wal_bytes: bytes.len() as u64, attached: true })
    }
}

/// Length of a file, with a missing file reading as empty (a fresh store
/// has no WAL until its first append).
fn file_len(path: &Path) -> std::io::Result<u64> {
    match std::fs::metadata(path) {
        Ok(meta) => Ok(meta.len()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

/// Read `[from, to)` of a file (empty when the file is missing and the
/// range is empty).
fn read_range(path: &Path, from: u64, to: u64) -> std::io::Result<Vec<u8>> {
    if from >= to {
        return Ok(Vec::new());
    }
    let bytes = std::fs::read(path)?;
    let from = from.min(bytes.len() as u64) as usize;
    let to = to.min(bytes.len() as u64) as usize;
    Ok(bytes[from..to].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DurableConfig, DurableServer};
    use exacml_dsms::Schema;
    use exacml_plus::StreamPolicyBuilder;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exacml-replication-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn attach_then_incremental_then_reattach_on_compaction() {
        let root = temp_root("ship");
        let primary = DurableServer::create(root.join("primary"), DurableConfig::local()).unwrap();
        primary.register_stream("weather", Schema::weather_example()).unwrap();
        let mut mirror = ReplicaMirror::new(1, root.join("mirror"));

        // First contact: full attach.
        primary.flush_journal().unwrap();
        let outcome = mirror.ship_from(&primary).unwrap();
        assert!(outcome.attached);
        assert!(outcome.wal_bytes > 0);
        assert_eq!(mirror.acked_seq(), primary.journal_seq());

        // New appends ship incrementally.
        primary
            .load_policy(
                StreamPolicyBuilder::new("p1", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        primary.flush_journal().unwrap();
        let outcome = mirror.ship_from(&primary).unwrap();
        assert!(!outcome.attached);
        assert!(outcome.wal_bytes > 0);
        // Nothing new: nothing ships.
        assert!(!mirror.ship_from(&primary).unwrap().shipped_anything());

        // A mirror recovers to the same state as the primary.
        let recovered =
            DurableServer::recover_with(root.join("mirror"), DurableConfig::local()).unwrap();
        assert_eq!(recovered.policy_count(), 1);

        // Compaction shrinks the WAL; the mirror re-attaches.
        primary.snapshot().unwrap();
        primary.flush_journal().unwrap();
        let outcome = mirror.ship_from(&primary).unwrap();
        assert!(outcome.attached);
        let recovered =
            DurableServer::recover_with(root.join("mirror"), DurableConfig::local()).unwrap();
        assert_eq!(recovered.policy_count(), 1);
        assert!(recovered.recovery_report().snapshot_loaded);
    }
}
