//! # exacml-telemetry — always-on observability for every backend shape
//!
//! The paper's evaluation (Section 4.2, Figures 6–7) is built on a timing
//! decomposition: PDP decision time, query-graph manipulation, DSMS
//! deployment, network time. This crate generalises that decomposition into
//! an always-on, low-overhead instrumentation layer every subsystem records
//! into and every backend surfaces through `Backend::telemetry()`:
//!
//! * a [`Telemetry`] registry of lock-free **sharded counters**
//!   ([`Metric`]) and fixed-bucket **log2 latency histograms** (one per
//!   [`Stage`]) — recording is a couple of relaxed atomic adds, never an
//!   allocation or a lock;
//! * **stage-scoped spans** ([`Telemetry::span`] for wall clocks,
//!   [`Telemetry::span_with`] for any [`SpanClock`] such as the simnet
//!   virtual clock, [`Telemetry::record`] for durations measured elsewhere)
//!   that record into the stage's histogram when dropped;
//! * a typed, diffable, serde-serializable [`TelemetrySnapshot`] plus a
//!   Prometheus-style text exporter
//!   ([`TelemetrySnapshot::to_prometheus`]).
//!
//! The crate is deliberately **registry-less** in the Prometheus sense:
//! there is no global default registry and no interior name lookup — each
//! component owns (or shares) an `Arc<Telemetry>`, stages and counters are
//! closed enums indexed by constant, and aggregation across components is a
//! pure function over snapshots ([`TelemetrySnapshot::aggregate`]).
//!
//! ## Clock discipline
//!
//! Wall-clock spans measure real compute (PDP evaluation, WAL flushes);
//! virtual-clock durations (broker hops, delivery latency on simulated
//! links) are recorded via [`Telemetry::record`] or [`Telemetry::span_with`]
//! so fabric timings stay byte-for-byte deterministic per seed. A histogram
//! never knows which clock fed it — the stage taxonomy documents which
//! stages are wall and which are virtual (see `docs/OBSERVABILITY.md`).

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Stage and metric taxonomies
// ---------------------------------------------------------------------------

/// The pipeline stages whose latency is tracked, one log2 histogram each.
///
/// The first four reproduce the paper's Figure 6/7 request decomposition;
/// the rest extend it to the ingest path, the write-ahead log, replication
/// shipping, broker routing and the shared-plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// XACML decision time at the PDP (wall clock).
    Pdp,
    /// Query-graph translation + merge (wall clock).
    QueryGraph,
    /// Deployment of the merged graph onto the stream engine (wall clock).
    DsmsDeploy,
    /// Simulated network time charged to the request workflow (virtual).
    Network,
    /// One ingest batch through the engine's shard hot path (wall clock).
    Ingest,
    /// One record group appended to the write-ahead log (wall clock).
    WalAppend,
    /// One WAL flush/commit to the OS (wall clock).
    WalFlush,
    /// One journal ship onto a replica mirror (wall clock).
    ReplicaShip,
    /// One broker→node frame or routed request hop (virtual).
    BrokerRoute,
    /// One shared-plan cache acquire on the grant workflow (wall clock).
    PlanCacheLookup,
    /// Per-tuple delivery latency from send to arrival (virtual).
    Delivery,
}

impl Stage {
    /// Every stage, in declaration order (also the histogram index order).
    pub const ALL: [Stage; 11] = [
        Stage::Pdp,
        Stage::QueryGraph,
        Stage::DsmsDeploy,
        Stage::Network,
        Stage::Ingest,
        Stage::WalAppend,
        Stage::WalFlush,
        Stage::ReplicaShip,
        Stage::BrokerRoute,
        Stage::PlanCacheLookup,
        Stage::Delivery,
    ];

    /// The stage's stable snake_case name (snapshot key, exporter label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Pdp => "pdp",
            Stage::QueryGraph => "query_graph",
            Stage::DsmsDeploy => "dsms_deploy",
            Stage::Network => "network",
            Stage::Ingest => "ingest",
            Stage::WalAppend => "wal_append",
            Stage::WalFlush => "wal_flush",
            Stage::ReplicaShip => "replica_ship",
            Stage::BrokerRoute => "broker_route",
            Stage::PlanCacheLookup => "plan_cache_lookup",
            Stage::Delivery => "delivery",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).expect("stage is in ALL")
    }
}

/// The monotone event counters, one sharded counter each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Source tuples accepted by the engine.
    TuplesIngested,
    /// Ingest calls (batches) through the engine.
    BatchesIngested,
    /// Derived tuples emitted to subscribers.
    TuplesDelivered,
    /// Access requests that entered the Section 3.2 workflow.
    Requests,
    /// Requests that ended in a granted (or reused) handle.
    RequestsGranted,
    /// Requests denied by the PDP or refused by the guard.
    RequestsDenied,
    /// Records appended to a write-ahead log.
    WalRecords,
    /// WAL flushes to the OS.
    WalFlushes,
    /// Journal batches acknowledged by replica mirrors.
    ReplicaBatchesShipped,
    /// Broker→node frames or routed requests.
    BrokerFrames,
    /// Grant workflow calls that reused a live shared plan.
    PlanCacheHits,
    /// Grant workflow calls that compiled a fresh plan.
    PlanCacheMisses,
}

impl Metric {
    /// Every metric, in declaration order (also the counter index order).
    pub const ALL: [Metric; 12] = [
        Metric::TuplesIngested,
        Metric::BatchesIngested,
        Metric::TuplesDelivered,
        Metric::Requests,
        Metric::RequestsGranted,
        Metric::RequestsDenied,
        Metric::WalRecords,
        Metric::WalFlushes,
        Metric::ReplicaBatchesShipped,
        Metric::BrokerFrames,
        Metric::PlanCacheHits,
        Metric::PlanCacheMisses,
    ];

    /// The metric's stable snake_case name (snapshot key, exporter label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::TuplesIngested => "tuples_ingested",
            Metric::BatchesIngested => "batches_ingested",
            Metric::TuplesDelivered => "tuples_delivered",
            Metric::Requests => "requests",
            Metric::RequestsGranted => "requests_granted",
            Metric::RequestsDenied => "requests_denied",
            Metric::WalRecords => "wal_records",
            Metric::WalFlushes => "wal_flushes",
            Metric::ReplicaBatchesShipped => "replica_batches_shipped",
            Metric::BrokerFrames => "broker_frames",
            Metric::PlanCacheHits => "plan_cache_hits",
            Metric::PlanCacheMisses => "plan_cache_misses",
        }
    }

    fn index(self) -> usize {
        Metric::ALL.iter().position(|m| *m == self).expect("metric is in ALL")
    }
}

// ---------------------------------------------------------------------------
// Sharded counters
// ---------------------------------------------------------------------------

/// Shards per counter. A power of two so the thread-slot fold is a mask.
const COUNTER_SHARDS: usize = 16;

/// One cache line per shard, so two producer threads bumping the same
/// counter never bounce the same line between cores.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A lock-free counter striped over `COUNTER_SHARDS` cache lines.
///
/// `add` touches exactly one relaxed atomic, chosen by a per-thread slot, so
/// concurrent producers on different threads never contend; `get` sums the
/// stripes (reads are rare — snapshots, not the hot path).
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

/// Monotone per-thread slot used to pick a counter stripe.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| *slot) & (COUNTER_SHARDS - 1)
}

impl ShardedCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        ShardedCounter::default()
    }

    /// Add `n` on the calling thread's stripe (one relaxed atomic add).
    pub fn add(&self, n: u64) {
        self.shards[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value (sum over stripes).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

// ---------------------------------------------------------------------------
// Log2 histograms
// ---------------------------------------------------------------------------

/// Fixed bucket count: bucket `i` counts durations in `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 additionally holds 0 ns). 64 buckets cover every
/// representable `u64` duration, so recording never saturates or allocates.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 latency histogram.
///
/// Recording is three relaxed atomics (bucket count, running total, running
/// max) — no allocation, no lock, no floating point. Percentiles are
/// derived from a [`StageSnapshot`] without touching the live histogram.
pub struct Log2Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

/// The log2 bucket a duration of `nanos` falls into.
#[must_use]
pub fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        nanos.ilog2() as usize
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Record one observation of `nanos`.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the buckets and totals.
    #[must_use]
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            count: self.count(),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Clocks and spans
// ---------------------------------------------------------------------------

/// A monotone nanosecond clock a span can read twice.
///
/// `exacml-simnet` implements this for its wall and virtual clocks, so the
/// same span type measures real compute and deterministic simulated time.
pub trait SpanClock {
    /// Nanoseconds since the clock's epoch.
    fn now_nanos(&self) -> u64;
}

/// A wall-clock stage span: records `start.elapsed()` into the stage's
/// histogram when dropped. Obtained from [`Telemetry::span`].
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    stage: Stage,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.telemetry.record(self.stage, self.started.elapsed());
    }
}

/// A clock-generic stage span over any [`SpanClock`] (typically the simnet
/// virtual clock): records the clock delta when dropped. Obtained from
/// [`Telemetry::span_with`].
pub struct ClockSpan<'a, C: SpanClock> {
    telemetry: &'a Telemetry,
    stage: Stage,
    clock: &'a C,
    started: u64,
}

impl<C: SpanClock> Drop for ClockSpan<'_, C> {
    fn drop(&mut self) {
        let elapsed = self.clock.now_nanos().saturating_sub(self.started);
        self.telemetry.record_nanos(self.stage, elapsed);
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// The per-component instrumentation registry: one sharded counter per
/// [`Metric`], one log2 histogram per [`Stage`], and an enable switch.
///
/// Components own (or share) one behind an `Arc`; a disabled registry turns
/// every recording call into a single relaxed load — the uninstrumented
/// side of the `telemetry_overhead` perf gate.
pub struct Telemetry {
    enabled: AtomicBool,
    counters: [ShardedCounter; Metric::ALL.len()],
    stages: [Log2Histogram; Stage::ALL.len()],
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled, zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            enabled: AtomicBool::new(true),
            counters: std::array::from_fn(|_| ShardedCounter::new()),
            stages: std::array::from_fn(|_| Log2Histogram::new()),
        }
    }

    /// A registry whose recording calls are all no-ops until
    /// [`Telemetry::set_enabled`] turns it on.
    #[must_use]
    pub fn disabled() -> Self {
        let telemetry = Telemetry::new();
        telemetry.enabled.store(false, Ordering::Relaxed);
        telemetry
    }

    /// Turn recording on or off (reads stay available either way).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to a metric's counter.
    pub fn add(&self, metric: Metric, n: u64) {
        if self.is_enabled() {
            self.counters[metric.index()].add(n);
        }
    }

    /// Add 1 to a metric's counter.
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// A metric's current value.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric.index()].get()
    }

    /// Record one observed duration into a stage's histogram.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.record_nanos(stage, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one observed duration, in nanoseconds.
    pub fn record_nanos(&self, stage: Stage, nanos: u64) {
        if self.is_enabled() {
            self.stages[stage.index()].record(nanos);
        }
    }

    /// Observations recorded for a stage so far.
    #[must_use]
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.stages[stage.index()].count()
    }

    /// Open a wall-clock span that records into `stage` on drop.
    #[must_use]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span { telemetry: self, stage, started: Instant::now() }
    }

    /// Open a span over an arbitrary [`SpanClock`] (e.g. the simnet virtual
    /// clock) that records the clock delta into `stage` on drop.
    pub fn span_with<'a, C: SpanClock>(&'a self, stage: Stage, clock: &'a C) -> ClockSpan<'a, C> {
        ClockSpan { telemetry: self, stage, clock, started: clock.now_nanos() }
    }

    /// A consistent-enough point-in-time copy of every counter and
    /// histogram (counters and buckets are read individually; recording
    /// continues concurrently).
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.snapshot_tagged("")
    }

    /// A snapshot tagged with the producing node's name (fabrics tag each
    /// node's sub-snapshot before aggregating).
    #[must_use]
    pub fn snapshot_tagged(&self, node: &str) -> TelemetrySnapshot {
        let mut counters = BTreeMap::new();
        for metric in Metric::ALL {
            let value = self.counter(metric);
            if value > 0 {
                counters.insert(metric.name().to_string(), value);
            }
        }
        let mut stages = BTreeMap::new();
        for stage in Stage::ALL {
            let snapshot = self.stages[stage.index()].snapshot();
            if snapshot.count > 0 {
                stages.insert(stage.name().to_string(), snapshot);
            }
        }
        TelemetrySnapshot { node: node.to_string(), counters, stages, nodes: Vec::new() }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of one stage's histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct StageSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed durations, nanoseconds.
    pub total_nanos: u64,
    /// Largest observed duration, nanoseconds.
    pub max_nanos: u64,
    /// Log2 bucket counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl StageSnapshot {
    /// Mean observed duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// The upper bound of the bucket holding the q-quantile observation
    /// (`q` is clamped to `[0, 1]`; 0 when the snapshot is empty). Log2
    /// buckets bound the answer within 2× of the true quantile — enough to
    /// locate a bottleneck without storing raw samples.
    #[must_use]
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        self.max_nanos
    }

    /// Median (p50) bucket upper bound, nanoseconds.
    #[must_use]
    pub fn p50_nanos(&self) -> u64 {
        self.percentile_nanos(0.50)
    }

    /// p90 bucket upper bound, nanoseconds.
    #[must_use]
    pub fn p90_nanos(&self) -> u64 {
        self.percentile_nanos(0.90)
    }

    /// p99 bucket upper bound, nanoseconds.
    #[must_use]
    pub fn p99_nanos(&self) -> u64 {
        self.percentile_nanos(0.99)
    }

    /// The highest non-empty bucket index, when any observation exists.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }

    /// Fold another snapshot of the same stage into this one: counts and
    /// buckets add, the max takes the larger side. Merging preserves the
    /// total count and the highest non-empty bucket of both sides (pinned
    /// by a property test).
    pub fn merge(&mut self, other: &StageSnapshot) {
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The bucketwise difference `self - earlier` (saturating), for rate
    /// computation between two snapshots of the same live histogram.
    #[must_use]
    pub fn diff(&self, earlier: &StageSnapshot) -> StageSnapshot {
        let mut buckets = self.buckets.clone();
        for (mine, theirs) in buckets.iter_mut().zip(&earlier.buckets) {
            *mine = mine.saturating_sub(*theirs);
        }
        StageSnapshot {
            count: self.count.saturating_sub(earlier.count),
            total_nanos: self.total_nanos.saturating_sub(earlier.total_nanos),
            // A max is not differentiable; keep the later window's max.
            max_nanos: self.max_nanos,
            buckets,
        }
    }
}

/// The inclusive upper bound of log2 bucket `i` in nanoseconds.
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A typed, diffable point-in-time view of one [`Telemetry`] registry — or,
/// aggregated, of a whole fabric (the top level is the fabric-wide merge and
/// `nodes` carries each node's tagged sub-snapshot).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// The producing node's tag (`""` for a single-component snapshot, the
    /// broker/fabric tag at an aggregate's top level).
    pub node: String,
    /// Non-zero counters by [`Metric::name`].
    pub counters: BTreeMap<String, u64>,
    /// Non-empty stage histograms by [`Stage::name`].
    pub stages: BTreeMap<String, StageSnapshot>,
    /// Per-node sub-snapshots of an aggregated fabric snapshot (empty for
    /// single-component snapshots).
    pub nodes: Vec<TelemetrySnapshot>,
}

impl TelemetrySnapshot {
    /// A counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters.get(metric.name()).copied().unwrap_or(0)
    }

    /// A stage's histogram snapshot, when any observation was recorded.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&StageSnapshot> {
        self.stages.get(stage.name())
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.stages.is_empty() && self.nodes.is_empty()
    }

    /// Fold another snapshot's counters and stages into this one (the
    /// other's `nodes` list is not traversed — aggregate before merging).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, stage) in &other.stages {
            self.stages.entry(name.clone()).or_default().merge(stage);
        }
    }

    /// Aggregate tagged per-node snapshots into one fabric-wide snapshot:
    /// the top level is the merge of every part, tagged `node`, and each
    /// part rides along unmodified in [`TelemetrySnapshot::nodes`].
    #[must_use]
    pub fn aggregate(node: &str, parts: Vec<TelemetrySnapshot>) -> TelemetrySnapshot {
        let mut top = TelemetrySnapshot { node: node.to_string(), ..TelemetrySnapshot::default() };
        for part in &parts {
            top.merge(part);
        }
        top.nodes = parts;
        top
    }

    /// The counter-and-stage-wise difference `self - earlier` (saturating),
    /// for converting two absolute snapshots into a window's activity.
    /// Node lists are diffed positionally by tag; nodes without an earlier
    /// counterpart pass through unchanged.
    #[must_use]
    pub fn diff(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut counters = BTreeMap::new();
        for (name, value) in &self.counters {
            let delta = value.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
            if delta > 0 {
                counters.insert(name.clone(), delta);
            }
        }
        let mut stages = BTreeMap::new();
        for (name, stage) in &self.stages {
            let delta = match earlier.stages.get(name) {
                Some(before) => stage.diff(before),
                None => stage.clone(),
            };
            if delta.count > 0 {
                stages.insert(name.clone(), delta);
            }
        }
        let nodes = self
            .nodes
            .iter()
            .map(|node| match earlier.nodes.iter().find(|e| e.node == node.node) {
                Some(before) => node.diff(before),
                None => node.clone(),
            })
            .collect();
        TelemetrySnapshot { node: self.node.clone(), counters, stages, nodes }
    }

    /// Render the snapshot in the Prometheus text exposition style:
    /// counters as `exacml_<metric>`, stage histograms as
    /// `exacml_stage_nanos{stage=..}` `_count` / `_sum` / `_max` series plus
    /// cumulative `_bucket{le=..}` lines. Node tags become a `node` label;
    /// an aggregate renders its top level followed by every node.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE exacml_events counter\n");
        out.push_str("# TYPE exacml_stage_nanos histogram\n");
        self.render_prometheus(&mut out);
        for node in &self.nodes {
            node.render_prometheus(&mut out);
        }
        out
    }

    fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write;
        let node_label =
            if self.node.is_empty() { String::new() } else { format!("node=\"{}\",", self.node) };
        for (name, value) in &self.counters {
            let _ = writeln!(out, "exacml_events{{{node_label}metric=\"{name}\"}} {value}");
        }
        for (name, stage) in &self.stages {
            let label = format!("{node_label}stage=\"{name}\"");
            let _ = writeln!(out, "exacml_stage_nanos_count{{{label}}} {}", stage.count);
            let _ = writeln!(out, "exacml_stage_nanos_sum{{{label}}} {}", stage.total_nanos);
            let _ = writeln!(out, "exacml_stage_nanos_max{{{label}}} {}", stage.max_nanos);
            let mut cumulative = 0u64;
            for (i, &bucket) in stage.buckets.iter().enumerate() {
                if bucket == 0 {
                    continue;
                }
                cumulative += bucket;
                let le = bucket_upper_bound(i);
                let _ =
                    writeln!(out, "exacml_stage_nanos_bucket{{{label},le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "exacml_stage_nanos_bucket{{{label},le=\"+Inf\"}} {cumulative}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_shard_and_sum() {
        let telemetry = Arc::new(Telemetry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let telemetry = Arc::clone(&telemetry);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        telemetry.add(Metric::TuplesIngested, 3);
                    }
                });
            }
        });
        assert_eq!(telemetry.counter(Metric::TuplesIngested), 8 * 1000 * 3);
    }

    #[test]
    fn log2_buckets_and_percentiles() {
        let histogram = Log2Histogram::new();
        for nanos in [0u64, 1, 2, 3, 700, 900, 1_000_000] {
            histogram.record(nanos);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 7);
        assert_eq!(snapshot.max_nanos, 1_000_000);
        // 0 and 1 share bucket 0; 2 and 3 land in bucket 1; 700/900 in
        // bucket 9 ([512, 1024)); 1e6 in bucket 19.
        assert_eq!(snapshot.buckets[0], 2);
        assert_eq!(snapshot.buckets[1], 2);
        assert_eq!(snapshot.buckets[9], 2);
        assert_eq!(snapshot.buckets[19], 1);
        assert_eq!(snapshot.max_bucket(), Some(19));
        assert!(snapshot.p50_nanos() <= 1023);
        assert!(snapshot.p99_nanos() >= 524_288);
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(snapshot.percentile_nanos(-3.0), snapshot.percentile_nanos(0.0));
        assert_eq!(snapshot.percentile_nanos(7.5), snapshot.percentile_nanos(1.0));
    }

    #[test]
    fn spans_record_on_drop() {
        let telemetry = Telemetry::new();
        {
            let _span = telemetry.span(Stage::Pdp);
        }
        assert_eq!(telemetry.stage_count(Stage::Pdp), 1);

        struct FixedClock(std::cell::Cell<u64>);
        impl SpanClock for FixedClock {
            fn now_nanos(&self) -> u64 {
                let now = self.0.get();
                self.0.set(now + 250);
                now
            }
        }
        let clock = FixedClock(std::cell::Cell::new(10));
        {
            let _span = telemetry.span_with(Stage::BrokerRoute, &clock);
        }
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.stage(Stage::BrokerRoute).unwrap().total_nanos, 250);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let telemetry = Telemetry::disabled();
        telemetry.incr(Metric::Requests);
        telemetry.record(Stage::Pdp, Duration::from_micros(5));
        assert!(telemetry.snapshot().is_empty());
        telemetry.set_enabled(true);
        telemetry.incr(Metric::Requests);
        assert_eq!(telemetry.counter(Metric::Requests), 1);
    }

    #[test]
    fn aggregate_merges_and_keeps_node_tags() {
        let a = Telemetry::new();
        a.add(Metric::TuplesIngested, 5);
        a.record_nanos(Stage::Ingest, 100);
        let b = Telemetry::new();
        b.add(Metric::TuplesIngested, 7);
        b.record_nanos(Stage::Ingest, 900);
        let merged = TelemetrySnapshot::aggregate(
            "fabric",
            vec![a.snapshot_tagged("node0"), b.snapshot_tagged("node1")],
        );
        assert_eq!(merged.counter(Metric::TuplesIngested), 12);
        assert_eq!(merged.stage(Stage::Ingest).unwrap().count, 2);
        assert_eq!(merged.stage(Stage::Ingest).unwrap().max_nanos, 900);
        assert_eq!(merged.nodes.len(), 2);
        assert_eq!(merged.nodes[0].node, "node0");
        assert_eq!(merged.nodes[1].counter(Metric::TuplesIngested), 7);
    }

    #[test]
    fn diff_isolates_a_window() {
        let telemetry = Telemetry::new();
        telemetry.add(Metric::Requests, 2);
        telemetry.record_nanos(Stage::Pdp, 64);
        let before = telemetry.snapshot();
        telemetry.add(Metric::Requests, 3);
        telemetry.record_nanos(Stage::Pdp, 64);
        let delta = telemetry.snapshot().diff(&before);
        assert_eq!(delta.counter(Metric::Requests), 3);
        assert_eq!(delta.stage(Stage::Pdp).unwrap().count, 1);
        let nothing = before.diff(&before);
        assert!(nothing.is_empty());
    }

    #[test]
    fn prometheus_export_renders_counters_and_histograms() {
        let telemetry = Telemetry::new();
        telemetry.add(Metric::Requests, 4);
        telemetry.record_nanos(Stage::Pdp, 700);
        let text = telemetry.snapshot_tagged("node3").to_prometheus();
        assert!(text.contains("exacml_events{node=\"node3\",metric=\"requests\"} 4"));
        assert!(text.contains("exacml_stage_nanos_count{node=\"node3\",stage=\"pdp\"} 1"));
        assert!(text.contains("le=\"1023\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }
}
