//! The cloud data server.
//!
//! The data server of Figure 3 hosts the policy store, the PDP, the PEP
//! logic (obligation translation, query-graph merging, NR/PR checking, the
//! single-access guard and the query-graph manager) and talks to the DSMS.
//! Its entry point, [`DataServer::handle_request`], implements the five-step
//! workflow of Section 3.2:
//!
//! 1. receive the access request plus the optional customised query;
//! 2. ask the PDP for a decision; on Permit, derive a query graph from the
//!    obligations;
//! 3. check that the requester holds no other live query on the stream;
//! 4. merge the obligation graph with the user-query graph, checking NR/PR;
//! 5. if no warning blocks deployment, convert the merged graph to StreamSQL,
//!    send it to the DSMS and return the output-stream handle (URI).

use crate::access_guard::{AccessGuard, GuardOutcome};
use crate::audit::{AuditEventKind, AuditLog};
use crate::error::ExacmlError;
use crate::graph_mgmt::{QueryGraphManager, TrackedGraph};
use crate::merge::{merge_graphs, MergeOptions};
use crate::metrics::RequestTiming;
use crate::obligations::graph_from_obligations;
use crate::shared_plan::{PlanCache, PlanId};
use crate::user_query::UserQuery;
use crate::warnings::{has_empty_result, has_partial_result, Warning};
use exacml_dsms::{
    streamsql, DeploymentId, QueryGraph, ResidualSpec, Schema, StreamEngine, StreamHandle, Tuple,
};
use exacml_simnet::{NodeId, Topology};
use exacml_telemetry::{Metric, Stage, Telemetry};
use exacml_xacml::{Decision, Pdp, Policy, PolicyStore, Request};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the data server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Options for merging policy and user-query graphs.
    pub merge: MergeOptions,
    /// Deploy anyway when only partial-result warnings were raised (the
    /// paper's workflow deploys only when *no* warning was detected, which is
    /// the default here; the warnings are returned to the caller either way).
    pub deploy_on_partial_result: bool,
    /// The deployment topology used to charge simulated network time.
    pub topology: Topology,
    /// Seed for the network-delay sampling (reproducible experiments).
    pub seed: u64,
    /// Host name used in the stream handles (URIs) this server's DSMS mints.
    /// Fabric nodes get distinct hosts so handles stay globally unique.
    pub dsms_host: String,
    /// Share compiled operator subgraphs across overlapping grants (default
    /// `true`): grants whose core graphs canonicalize identically ride one
    /// deployment, each paying only a per-grant residual at fan-out. Turning
    /// this off deploys one graph per grant — the unmerged baseline the
    /// `merge_scale` benchmark compares against.
    pub share_plans: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            merge: MergeOptions::default(),
            deploy_on_partial_result: false,
            topology: Topology::paper_testbed(),
            seed: 42,
            dsms_host: "dsms".to_string(),
            share_plans: true,
        }
    }
}

impl ServerConfig {
    /// A configuration with everything co-located in one process (loopback
    /// links), used by unit tests and the quickstart example.
    #[must_use]
    pub fn local() -> Self {
        ServerConfig { topology: Topology::local(), ..ServerConfig::default() }
    }
}

/// The answer returned for a granted access request.
#[derive(Debug, Clone)]
pub struct AccessResponse {
    /// The handle (URI) of the derived output stream.
    pub handle: StreamHandle,
    /// Schema of the derived output stream.
    pub output_schema: Arc<Schema>,
    /// The deployment backing the handle (shared with other grants of the
    /// same plan).
    pub deployment: DeploymentId,
    /// The shared plan the grant rides on: grants with equal plan ids share
    /// one compiled operator subgraph on the DSMS.
    pub plan: PlanId,
    /// The policy that authorised the access.
    pub policy_id: String,
    /// Non-blocking warnings raised while merging (partial results when the
    /// server is configured to deploy despite them).
    pub warnings: Vec<Warning>,
    /// The StreamSQL script that was sent to the DSMS.
    pub streamsql: String,
    /// Whether an existing identical access was reused instead of deploying
    /// a new graph.
    pub reused: bool,
    /// The timing decomposition of this request.
    pub timing: RequestTiming,
}

/// The data server.
pub struct DataServer {
    config: ServerConfig,
    store: Arc<PolicyStore>,
    pdp: Pdp,
    /// The back-end DSMS. The engine is internally synchronized (sharded by
    /// stream), so the server shares it without a wrapping lock — feeds to
    /// different streams run concurrently with each other and with the
    /// request workflow.
    engine: Arc<StreamEngine>,
    graphs: Mutex<QueryGraphManager>,
    plans: Mutex<PlanCache>,
    guard: Mutex<AccessGuard>,
    rng: Mutex<StdRng>,
    policy_load_times: Mutex<Vec<Duration>>,
    audit: Mutex<AuditLog>,
}

impl DataServer {
    /// Create a server with the given configuration.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let store = Arc::new(PolicyStore::new());
        let pdp = Pdp::new(Arc::clone(&store));
        let rng = StdRng::seed_from_u64(config.seed);
        let engine = Arc::new(StreamEngine::with_host(&config.dsms_host));
        DataServer {
            config,
            store,
            pdp,
            engine,
            graphs: Mutex::new(QueryGraphManager::new()),
            plans: Mutex::new(PlanCache::new()),
            guard: Mutex::new(AccessGuard::new()),
            rng: Mutex::new(rng),
            policy_load_times: Mutex::new(Vec::new()),
            audit: Mutex::new(AuditLog::default()),
        }
    }

    /// A server with the default (paper-testbed) configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        DataServer::new(ServerConfig::default())
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The deployment topology (shared with proxy and client wrappers).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// The policy store (for inspection in tests and tools).
    #[must_use]
    pub fn policy_store(&self) -> &Arc<PolicyStore> {
        &self.store
    }

    /// The server's PDP (read-only access for observability: cache size,
    /// direct evaluation in tests, fabric propagation checks).
    #[must_use]
    pub fn pdp(&self) -> &Pdp {
        &self.pdp
    }

    /// The back-end stream engine. Shared: the engine is internally
    /// synchronized, so data-owner feeds can push into it directly and
    /// concurrently with the request workflow.
    #[must_use]
    pub fn engine(&self) -> &Arc<StreamEngine> {
        &self.engine
    }

    /// The telemetry registry this server and its engine record into: the
    /// engine's ingest path and the request workflow's stage decomposition
    /// (PDP / query-graph / DSMS / network — the paper's Figure 6/7 series)
    /// land in the same counters and histograms. Durable and fabric
    /// wrappers record their own stages (WAL, shipping, routing) here too,
    /// so one snapshot covers the whole node.
    #[must_use]
    pub fn telemetry_registry(&self) -> &Arc<Telemetry> {
        self.engine.telemetry_handle()
    }

    /// A snapshot of the audit trail (accountability hook — the paper's
    /// stated next challenge beyond the trusted-cloud model).
    #[must_use]
    pub fn audit_events(&self) -> Vec<crate::audit::AuditEvent> {
        self.audit.lock().events()
    }

    /// Audit events involving one subject.
    #[must_use]
    pub fn audit_events_for_subject(&self, subject: &str) -> Vec<crate::audit::AuditEvent> {
        self.audit.lock().by_subject(subject)
    }

    /// Audit events with `sequence >= from` — the incremental view a
    /// journal uses to tail the log without cloning it wholesale.
    #[must_use]
    pub fn audit_events_since(&self, from: u64) -> Vec<crate::audit::AuditEvent> {
        self.audit.lock().events_since(from)
    }

    /// Recovery hook: replace the audit trail with journaled events,
    /// preserving their original sequence numbers and timestamps. A durable
    /// wrapper replays the journaled operations through the normal workflow
    /// (which re-records them with fresh timestamps) and then restores the
    /// authoritative pre-crash trail with this.
    pub fn restore_audit(&self, events: Vec<crate::audit::AuditEvent>) {
        self.audit.lock().restore(events);
    }

    // --- stream management -------------------------------------------------

    /// Register an input stream on the back-end DSMS.
    ///
    /// # Errors
    /// Fails when the stream name is taken or the schema invalid.
    pub fn register_stream(&self, name: &str, schema: Schema) -> Result<(), ExacmlError> {
        self.engine.register_stream(name, schema).map_err(ExacmlError::from)
    }

    /// Push one source tuple into a registered stream (the data owner's feed).
    ///
    /// # Errors
    /// Fails when the stream is unknown or the tuple malformed.
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        self.engine.push(stream, tuple).map_err(ExacmlError::from)
    }

    /// Push a batch of source tuples into a registered stream, amortizing
    /// the engine's shard lookup and locking over the whole batch.
    ///
    /// # Errors
    /// Fails when the stream is unknown or any tuple malformed.
    pub fn push_batch(
        &self,
        stream: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, ExacmlError> {
        self.engine.push_batch(stream, tuples).map_err(ExacmlError::from)
    }

    /// Subscribe to the derived tuples behind a granted handle.
    ///
    /// # Errors
    /// Fails when the handle is unknown or already withdrawn.
    pub fn subscribe(
        &self,
        handle: &StreamHandle,
    ) -> Result<crossbeam::channel::Receiver<Tuple>, ExacmlError> {
        self.engine.subscribe(handle).map_err(ExacmlError::from)
    }

    /// Whether a handle still points at a live deployment.
    #[must_use]
    pub fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        self.engine.catalog().handle_is_live(handle)
    }

    // --- policy management (Section 3.3) ------------------------------------

    /// Load a policy onto the server. Returns the time taken (the
    /// policy-loading measurement reported in Section 4.2).
    ///
    /// # Errors
    /// Fails when the policy is invalid or its id already loaded.
    pub fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        let started = Instant::now();
        // Charge the owner → server upload of the policy document.
        let document = exacml_xacml::xml::write_policy(&policy);
        let network = {
            let mut rng = self.rng.lock();
            self.config.topology.round_trip(
                NodeId::Client,
                NodeId::DataServer,
                document.len(),
                64,
                &mut *rng,
            )
        };
        let policy_id = policy.id.clone();
        self.store.add(policy)?;
        let elapsed = started.elapsed() + network;
        self.policy_load_times.lock().push(elapsed);
        self.audit.lock().record(
            AuditEventKind::PolicyLoaded,
            None,
            None,
            Some(&policy_id),
            format!("loaded in {elapsed:?}"),
        );
        Ok(elapsed)
    }

    /// Load a policy from its XML document.
    ///
    /// # Errors
    /// Fails when the document does not parse or the policy is invalid.
    pub fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        let policy = exacml_xacml::xml::parse_policy(xml)?;
        self.load_policy(policy)
    }

    /// Remove a policy; every grant it spawned is withdrawn from the DSMS
    /// immediately. Returns the number of withdrawn grants.
    ///
    /// # Errors
    /// Fails when the policy is unknown.
    pub fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        self.store.remove(policy_id)?;
        let withdrawn = self.withdraw_policy_graphs(policy_id);
        self.audit.lock().record(
            AuditEventKind::PolicyRemoved,
            None,
            None,
            Some(policy_id),
            format!("{withdrawn} query graph(s) withdrawn"),
        );
        Ok(withdrawn)
    }

    /// Replace a policy; as with removal, existing grants spawned by the old
    /// version are withdrawn (consumers must re-request access). Returns the
    /// number of withdrawn grants.
    ///
    /// # Errors
    /// Fails when the policy is unknown or the new version invalid.
    pub fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        let policy_id = policy.id.clone();
        self.store.update(policy)?;
        let withdrawn = self.withdraw_policy_graphs(&policy_id);
        self.audit.lock().record(
            AuditEventKind::PolicyUpdated,
            None,
            None,
            Some(&policy_id),
            format!("{withdrawn} query graph(s) withdrawn"),
        );
        Ok(withdrawn)
    }

    fn withdraw_policy_graphs(&self, policy_id: &str) -> usize {
        let evicted = self.graphs.lock().evict_policy(policy_id);
        {
            // Per-grant eviction, not per-deployment: under cross-policy
            // sharing a deployment may also serve grants of *other* policies,
            // which must survive this withdrawal untouched.
            let mut guard = self.guard.lock();
            for grant in &evicted {
                guard.release(&grant.subject, &grant.stream);
            }
        }
        for grant in &evicted {
            self.release_grant(&grant.handle, grant.plan);
        }
        evicted.len()
    }

    /// Retire one grant's handle and drop its plan reference, withdrawing
    /// the shared deployment when this was the last grant. Races with other
    /// release paths are benign: the engine calls are idempotent no-ops on
    /// already-gone handles/deployments.
    fn release_grant(&self, handle: &StreamHandle, plan: PlanId) {
        let _ = self.engine.retire_handle(handle);
        let withdraw = {
            let mut plans = self.plans.lock();
            match plans.release(plan) {
                Some((deployment, true)) => Some(deployment),
                _ => None,
            }
        };
        if let Some(deployment) = withdraw {
            let _ = self.engine.withdraw(deployment);
        }
    }

    /// Number of loaded policies.
    #[must_use]
    pub fn policy_count(&self) -> usize {
        self.store.len()
    }

    /// Mean and standard deviation of policy load times, in seconds.
    #[must_use]
    pub fn policy_load_stats(&self) -> (f64, f64) {
        let times = self.policy_load_times.lock();
        if times.is_empty() {
            return (0.0, 0.0);
        }
        let secs: Vec<f64> = times.iter().map(Duration::as_secs_f64).collect();
        let mean = secs.iter().sum::<f64>() / secs.len() as f64;
        let var = secs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / secs.len() as f64;
        (mean, var.sqrt())
    }

    // --- the Section 3.2 workflow -------------------------------------------

    /// Handle one access request, optionally refined by a customised query.
    /// This is the server-side cost only; the proxy and client wrappers add
    /// their own network hops on top.
    ///
    /// # Errors
    /// * [`ExacmlError::AccessDenied`] when the PDP does not permit,
    /// * [`ExacmlError::MultipleAccess`] when a different live query exists,
    /// * [`ExacmlError::ConflictDetected`] on blocking NR/PR warnings,
    /// * plus translation/merging/DSMS errors.
    pub fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<AccessResponse, ExacmlError> {
        let result = self.handle_request_inner(request, user_query, None);
        let telemetry = self.telemetry_registry();
        telemetry.incr(Metric::Requests);
        telemetry.incr(if result.is_ok() {
            Metric::RequestsGranted
        } else {
            Metric::RequestsDenied
        });
        let subject = request.subject_id();
        let stream = request.resource_id();
        let mut audit = self.audit.lock();
        match &result {
            Ok(response) => {
                let kind =
                    if response.reused { AuditEventKind::Reused } else { AuditEventKind::Granted };
                audit.record(
                    kind,
                    subject,
                    stream,
                    Some(&response.policy_id),
                    format!("handle {}", response.handle),
                );
            }
            Err(ExacmlError::ConflictDetected { warnings }) => {
                audit.record(
                    AuditEventKind::Conflict,
                    subject,
                    stream,
                    None,
                    format!("{} warning(s)", warnings.len()),
                );
            }
            Err(ExacmlError::MultipleAccess { .. }) => {
                audit.record(
                    AuditEventKind::MultipleAccessBlocked,
                    subject,
                    stream,
                    None,
                    "different live query already held".to_string(),
                );
            }
            Err(ExacmlError::AccessDenied { decision, .. }) => {
                audit.record(AuditEventKind::Denied, subject, stream, None, decision.clone());
            }
            Err(other) => {
                audit.record(AuditEventKind::Denied, subject, stream, None, other.to_string());
            }
        }
        result
    }

    /// Recovery hook: re-run a granted request through the normal workflow,
    /// pinning the per-grant handle to the exact URI the consumer held
    /// before the crash. A durable wrapper journals each grant's handle URI;
    /// replaying through minting arithmetic cannot reproduce pre-crash
    /// serials once released grants have been pruned from the journal, so
    /// the recorded URI is adopted verbatim instead. Unaudited — recovery
    /// restores the journaled audit trail afterwards via
    /// [`DataServer::restore_audit`].
    ///
    /// # Errors
    /// As [`DataServer::handle_request`], plus when the pinned URI is
    /// already live.
    pub fn restore_grant(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
        handle: &StreamHandle,
    ) -> Result<AccessResponse, ExacmlError> {
        self.handle_request_inner(request, user_query, Some(handle))
    }

    fn handle_request_inner(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
        restore: Option<&StreamHandle>,
    ) -> Result<AccessResponse, ExacmlError> {
        let started = Instant::now();
        let mut network = Duration::ZERO;

        let subject = request
            .subject_id()
            .ok_or_else(|| ExacmlError::IncompleteRequest("missing subject-id".into()))?
            .to_string();
        let stream = request
            .resource_id()
            .ok_or_else(|| ExacmlError::IncompleteRequest("missing resource-id".into()))?
            .to_string();

        // Step 2: PDP decision.
        let pdp_started = Instant::now();
        let decision = self.pdp.evaluate(request);
        let pdp_time = pdp_started.elapsed();
        self.telemetry_registry().record(Stage::Pdp, pdp_time);
        if decision.decision != Decision::Permit {
            return Err(ExacmlError::AccessDenied {
                decision: decision.decision.to_string(),
                detail: format!("no policy permits subject '{subject}' on stream '{stream}'"),
            });
        }
        let policy_id =
            decision.policy_id.clone().unwrap_or_else(|| "<unknown-policy>".to_string());

        // Step 3: single-access check.
        let fingerprint = user_query.map_or_else(
            || format!("stream={};<identity>", stream.to_ascii_lowercase()),
            UserQuery::fingerprint,
        );
        match self.guard.lock().check(&subject, &stream, &fingerprint)? {
            GuardOutcome::Allowed => {}
            GuardOutcome::Reuse { handle, deployment, plan } => {
                // Identical re-request: hand back the existing live handle.
                let output_schema = self.engine.output_schema(&handle)?;
                let total = started.elapsed();
                return Ok(AccessResponse {
                    handle,
                    output_schema,
                    deployment,
                    plan,
                    policy_id,
                    warnings: Vec::new(),
                    streamsql: String::new(),
                    reused: true,
                    timing: RequestTiming {
                        pdp: pdp_time,
                        query_graph: Duration::ZERO,
                        dsms: Duration::ZERO,
                        network,
                        total,
                    },
                });
            }
        }

        // Steps 2 (obligations → graph) and 4 (merge + NR/PR).
        let graph_started = Instant::now();
        let policy_graph = graph_from_obligations(&stream, &decision.obligations)?;
        let user_graph: QueryGraph = match user_query {
            Some(q) => {
                if !q.stream.eq_ignore_ascii_case(&stream) {
                    return Err(ExacmlError::StreamMismatch {
                        requested: stream,
                        query: q.stream.clone(),
                    });
                }
                q.to_graph()?
            }
            None => QueryGraph::identity(&stream),
        };
        let outcome = merge_graphs(&policy_graph, &user_graph, self.config.merge)?;
        if has_empty_result(&outcome.warnings)
            || (has_partial_result(&outcome.warnings) && !self.config.deploy_on_partial_result)
        {
            return Err(ExacmlError::ConflictDetected { warnings: outcome.warnings });
        }
        let input_schema = self.engine.stream_schema(&stream)?;
        let script = streamsql::generate(&outcome.graph, &input_schema);
        let query_graph_time = graph_started.elapsed();
        self.telemetry_registry().record(Stage::QueryGraph, query_graph_time);

        // Step 5: ship the StreamSQL to the DSMS and deploy — through the
        // plan cache, so overlapping grants share one compiled subgraph.
        network += {
            let mut rng = self.rng.lock();
            self.config.topology.round_trip(
                NodeId::DataServer,
                NodeId::Dsms,
                script.len(),
                96,
                &mut *rng,
            )
        };
        let dsms_started = Instant::now();
        let (plan, deployment, handle) =
            self.deploy_grant(&policy_graph, &user_graph, &outcome.graph, &input_schema, restore)?;
        let output_schema = self.engine.output_schema(&handle)?;
        let dsms_time = dsms_started.elapsed();
        self.telemetry_registry().record(Stage::DsmsDeploy, dsms_time);
        self.telemetry_registry().record(Stage::Network, network);

        self.graphs.lock().track(TrackedGraph {
            deployment,
            plan,
            handle: handle.clone(),
            policy_id: policy_id.clone(),
            subject: subject.clone(),
            stream: stream.clone(),
            graph: outcome.graph.clone(),
        });
        self.guard.lock().register(
            &subject,
            &stream,
            fingerprint,
            handle.clone(),
            deployment,
            plan,
        );

        let total = started.elapsed() + network;
        Ok(AccessResponse {
            handle,
            output_schema,
            deployment,
            plan,
            policy_id,
            warnings: outcome.warnings,
            streamsql: script,
            reused: false,
            timing: RequestTiming {
                pdp: pdp_time,
                query_graph: query_graph_time,
                dsms: dsms_time,
                network,
                total,
            },
        })
    }

    /// Deploy one grant through the plan cache: decide the core graph and
    /// per-grant residual, reuse a cached deployment of the same core when
    /// plan sharing is on (deploying otherwise), and attach the per-grant
    /// handle. Every grant — shared or not — gets its own attached handle,
    /// so release, liveness and recovery follow one scheme.
    fn deploy_grant(
        &self,
        policy_graph: &QueryGraph,
        user_graph: &QueryGraph,
        merged: &QueryGraph,
        input_schema: &Schema,
        restore: Option<&StreamHandle>,
    ) -> Result<(PlanId, DeploymentId, StreamHandle), ExacmlError> {
        let (core, residual) = if self.config.share_plans {
            plan_core(policy_graph, user_graph, merged, input_schema)
        } else {
            (merged.clone(), None)
        };
        // The cache lock is held across the deploy: concurrent identical
        // grants serialize here instead of racing into double deployments.
        let lookup_started = Instant::now();
        let mut plans = self.plans.lock();
        let (plan, deployment) = if self.config.share_plans {
            let key = core.canonical_signature();
            let hit = plans.acquire(&key);
            // The lookup span covers lock wait + canonicalisation + probe,
            // not the deploy a miss goes on to pay (that is DsmsDeploy).
            self.telemetry_registry().record(Stage::PlanCacheLookup, lookup_started.elapsed());
            match hit {
                Some(hit) => {
                    self.telemetry_registry().incr(Metric::PlanCacheHits);
                    hit
                }
                None => {
                    self.telemetry_registry().incr(Metric::PlanCacheMisses);
                    let deployment = self.engine.deploy(&core)?;
                    (plans.insert(key, deployment.id), deployment.id)
                }
            }
        } else {
            // Unshared mode: every grant gets a private plan under a key no
            // canonical signature can collide with.
            self.telemetry_registry().record(Stage::PlanCacheLookup, lookup_started.elapsed());
            self.telemetry_registry().incr(Metric::PlanCacheMisses);
            let deployment = self.engine.deploy(&core)?;
            (plans.insert(format!("#unshared/{}", deployment.id), deployment.id), deployment.id)
        };
        let attached = match restore {
            Some(uri) => self.engine.attach_handle_as(deployment, residual.as_ref(), uri.clone()),
            None => self.engine.attach_handle(deployment, residual.as_ref()),
        };
        match attached {
            Ok(handle) => Ok((plan, deployment, handle)),
            Err(err) => {
                // Roll the refcount back; withdraw the deployment if this
                // grant was the only (or first) rider.
                if let Some((id, true)) = plans.release(plan) {
                    let _ = self.engine.withdraw(id);
                }
                Err(err.into())
            }
        }
    }

    /// Release the access a subject holds on a stream: the per-grant handle
    /// is retired immediately; the backing deployment is withdrawn only when
    /// this was its last grant. Returns `true` when something was released.
    pub fn release_access(&self, subject: &str, stream: &str) -> bool {
        let Some(released) = self.guard.lock().release(subject, stream) else {
            return false;
        };
        self.graphs.lock().untrack(subject, stream);
        self.release_grant(&released.handle, released.plan);
        self.audit.lock().record(
            AuditEventKind::AccessReleased,
            Some(subject),
            Some(stream),
            None,
            format!("handle {} retired", released.handle),
        );
        true
    }

    /// Deploy a raw StreamSQL script directly on the DSMS, bypassing access
    /// control — the *direct-query* baseline of the evaluation (Section 4.2).
    /// Returns the handle and the timing (DSMS + network only).
    ///
    /// # Errors
    /// Fails when the script does not parse or references an unknown stream
    /// (the input stream must already be registered; its `CREATE INPUT
    /// STREAM` declaration is used only for validation).
    pub fn direct_deploy(
        &self,
        script: &str,
    ) -> Result<(StreamHandle, RequestTiming), ExacmlError> {
        let started = Instant::now();
        let parsed = streamsql::parse(script)?;
        let network = {
            let mut rng = self.rng.lock();
            self.config.topology.round_trip(
                NodeId::Client,
                NodeId::Dsms,
                script.len(),
                96,
                &mut *rng,
            )
        };
        let dsms_started = Instant::now();
        let deployment = {
            if !self.engine.catalog().contains(&parsed.stream) {
                // A concurrent direct_deploy may have registered the stream
                // between the check and the call; losing that race is fine —
                // the stream exists either way.
                match self.engine.register_stream(&parsed.stream, parsed.schema.clone()) {
                    Ok(()) | Err(exacml_dsms::DsmsError::StreamAlreadyExists(_)) => {}
                    Err(other) => return Err(other.into()),
                }
            }
            self.engine.deploy(&parsed.graph)?
        };
        let dsms_time = dsms_started.elapsed();
        let total = started.elapsed() + network;
        Ok((
            deployment.output_handle,
            RequestTiming {
                pdp: Duration::ZERO,
                query_graph: Duration::ZERO,
                dsms: dsms_time,
                network,
                total,
            },
        ))
    }

    /// Number of live deployments on the DSMS.
    #[must_use]
    pub fn live_deployments(&self) -> usize {
        self.engine.deployment_count()
    }

    /// Number of live shared plans — distinct compiled operator subgraphs
    /// currently deployed through the access-control workflow. With plan
    /// sharing on, this stays flat while grants multiply.
    #[must_use]
    pub fn plan_count(&self) -> usize {
        self.plans.lock().plan_count()
    }

    /// Total live grants across all plans.
    #[must_use]
    pub fn grant_count(&self) -> usize {
        self.plans.lock().grant_count()
    }

    /// Engine-level counters.
    #[must_use]
    pub fn engine_stats(&self) -> exacml_dsms::EngineStats {
        self.engine.stats()
    }
}

/// Decide what to deploy for a grant: the **core** graph that runs on the
/// engine, and the per-grant [`ResidualSpec`] applied at fan-out.
///
/// Two tiers:
///
/// * **Tier 2 (core + residual)** — when both the policy and the user graph
///   are window-free (no aggregation box on either side), the user's filter
///   only references attributes the policy exposes, and the merged
///   projection stays within the policy-visible schema, the deployed core
///   is the *policy* graph alone. The user's refinement becomes a residual:
///   its filter condition re-checked per delivered tuple, the merged
///   projection applied as a column mask. Every grant under the same policy
///   shape then shares one deployment regardless of how its filters differ.
/// * **Tier 1 (exact merge)** — otherwise the merged graph itself is the
///   core with no residual. Aggregating graphs always take this tier:
///   window state is shared only between grants whose merged graphs
///   canonicalize identically, never approximated by residuals.
///
/// Either way the delivered stream is exactly the merged graph's output —
/// tier 2's conditions are precisely what makes `core ∘ residual ≡ merged`.
fn plan_core(
    policy: &QueryGraph,
    user: &QueryGraph,
    merged: &QueryGraph,
    input_schema: &Schema,
) -> (QueryGraph, Option<ResidualSpec>) {
    let tier1 = || (merged.clone(), None);
    if policy.aggregate().is_some() || user.aggregate().is_some() {
        return tier1();
    }
    let Ok(policy_out) = policy.output_schema(input_schema) else {
        return tier1();
    };
    let predicate = match user.filter() {
        Some(f) => {
            if f.condition().attributes().iter().any(|a| !policy_out.contains(a)) {
                return tier1();
            }
            Some(f.condition().clone())
        }
        None => None,
    };
    let projection = match merged.map() {
        Some(m) => {
            if m.attributes().iter().any(|a| !policy_out.contains(a)) {
                return tier1();
            }
            let unchanged = m.attributes().len() == policy_out.len()
                && m.attributes().iter().zip(policy_out.field_names()).all(|(a, b)| a == b);
            if unchanged {
                None // the core already delivers exactly these columns
            } else {
                Some(m.attributes().to_vec())
            }
        }
        None => None,
    };
    (policy.clone(), Some(ResidualSpec { predicate, projection }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligations::StreamPolicyBuilder;
    use exacml_dsms::{AggFunc, AggSpec, Value, WindowSpec};

    fn example1_policy() -> Policy {
        StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
            .subject("LTA")
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate", "windspeed"])
            .window(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .build()
    }

    fn server_with_weather() -> DataServer {
        let server = DataServer::new(ServerConfig::local());
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(example1_policy()).unwrap();
        server
    }

    fn lta_query() -> UserQuery {
        UserQuery::for_stream("weather")
            .with_filter("rainrate > 50")
            .with_map(["samplingtime", "rainrate"])
            .with_aggregation(
                WindowSpec::tuples(10, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                ],
            )
    }

    #[test]
    fn grants_the_running_example_and_streams_data() {
        // Deploy with partial results allowed (the LTA refinement hides
        // attributes, which raises a PR warning by design).
        let server = DataServer::new(ServerConfig {
            deploy_on_partial_result: true,
            ..ServerConfig::local()
        });
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(example1_policy()).unwrap();

        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, Some(&lta_query())).unwrap();
        assert!(!response.reused);
        assert_eq!(response.policy_id, "nea-weather-for-lta");
        assert!(response.streamsql.contains("SIZE 10 ADVANCE 2 TUPLES"));
        assert_eq!(
            response.output_schema.field_names(),
            vec!["lastvalsamplingtime", "avgrainrate"]
        );
        assert!(response.timing.total >= response.timing.dsms);

        // Stream 30 heavy-rain tuples and observe aggregated output.
        let rx = server.subscribe(&response.handle).unwrap();
        let schema = Schema::weather_example();
        for i in 0..30 {
            let tuple = Tuple::builder(&schema)
                .set("samplingtime", Value::Timestamp(i64::from(i) * 30_000))
                .set("rainrate", 60.0 + f64::from(i))
                .set("windspeed", 10.0)
                .finish_with_defaults();
            server.push("weather", tuple).unwrap();
        }
        let outputs: Vec<Tuple> = rx.try_iter().collect();
        assert!(!outputs.is_empty());
        assert!(outputs[0].get_f64("avgrainrate").unwrap() > 60.0);
    }

    #[test]
    fn denies_unknown_subjects_and_streams() {
        let server = server_with_weather();
        let err = server.handle_request(&Request::subscribe("EMA", "weather"), None).unwrap_err();
        assert!(matches!(err, ExacmlError::AccessDenied { .. }));
        let err = server.handle_request(&Request::subscribe("LTA", "gps"), None).unwrap_err();
        assert!(matches!(err, ExacmlError::AccessDenied { .. }));
        let err = server.handle_request(&Request::new(), None).unwrap_err();
        assert!(matches!(err, ExacmlError::IncompleteRequest(_)));
    }

    #[test]
    fn plain_request_without_user_query_deploys_policy_graph() {
        let server = server_with_weather();
        let response = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(response.warnings.is_empty());
        assert!(response.streamsql.contains("WHERE rainrate > 5"));
        assert!(response.streamsql.contains("SIZE 5 ADVANCE 2 TUPLES"));
        assert_eq!(server.live_deployments(), 1);
    }

    #[test]
    fn identical_rerequest_reuses_the_existing_handle() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let first = server.handle_request(&request, None).unwrap();
        let second = server.handle_request(&request, None).unwrap();
        assert!(second.reused);
        assert_eq!(first.handle, second.handle);
        assert_eq!(server.live_deployments(), 1);
    }

    #[test]
    fn different_query_on_same_stream_is_blocked() {
        let server = DataServer::new(ServerConfig {
            deploy_on_partial_result: true,
            ..ServerConfig::local()
        });
        server.register_stream("weather", Schema::weather_example()).unwrap();
        server.load_policy(example1_policy()).unwrap();
        let request = Request::subscribe("LTA", "weather");
        server.handle_request(&request, None).unwrap();
        // The Example 2 attack: a second, different window on the same stream.
        let err = server.handle_request(&request, Some(&lta_query())).unwrap_err();
        assert!(matches!(err, ExacmlError::MultipleAccess { .. }));
        // Releasing the first access unblocks the second query.
        assert!(server.release_access("LTA", "weather"));
        assert!(server.handle_request(&request, Some(&lta_query())).is_ok());
    }

    #[test]
    fn conflicting_query_yields_nr_and_no_deployment() {
        let server = server_with_weather();
        let query = UserQuery::for_stream("weather")
            .with_filter("rainrate < 2") // contradicts the policy's rainrate > 5
            .with_map(["samplingtime", "rainrate", "windspeed"])
            .with_aggregation(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            );
        let err =
            server.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)).unwrap_err();
        match err {
            ExacmlError::ConflictDetected { warnings } => {
                assert!(has_empty_result(&warnings));
            }
            other => panic!("expected ConflictDetected, got {other}"),
        }
        assert_eq!(server.live_deployments(), 0);
    }

    #[test]
    fn finer_window_than_policy_is_rejected() {
        let server = server_with_weather();
        let query = UserQuery::for_stream("weather").with_aggregation(
            WindowSpec::tuples(3, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg)],
        );
        let err =
            server.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)).unwrap_err();
        assert!(matches!(err, ExacmlError::WindowTooFine { .. }));
    }

    #[test]
    fn removing_a_policy_withdraws_its_graphs() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, None).unwrap();
        assert!(server.handle_is_live(&response.handle));

        let withdrawn = server.remove_policy("nea-weather-for-lta").unwrap();
        assert_eq!(withdrawn, 1);
        assert!(!server.handle_is_live(&response.handle));
        assert_eq!(server.live_deployments(), 0);
        // The next request is denied: the policy is gone.
        assert!(matches!(
            server.handle_request(&request, None),
            Err(ExacmlError::AccessDenied { .. })
        ));
    }

    #[test]
    fn updating_a_policy_also_withdraws_existing_graphs() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, None).unwrap();
        let updated = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
            .subject("LTA")
            .filter("rainrate > 100")
            .build();
        let withdrawn = server.update_policy(updated).unwrap();
        assert_eq!(withdrawn, 1);
        assert!(!server.handle_is_live(&response.handle));
        // A fresh request succeeds under the new policy.
        let fresh = server.handle_request(&request, None).unwrap();
        assert!(fresh.streamsql.contains("rainrate > 100"));
    }

    #[test]
    fn policy_loading_is_tracked() {
        let server = DataServer::new(ServerConfig::local());
        for i in 0..20 {
            let policy = StreamPolicyBuilder::new(format!("p{i}"), "weather")
                .subject(format!("user{i}"))
                .filter("rainrate > 1")
                .build();
            let elapsed = server.load_policy(policy).unwrap();
            assert!(elapsed > Duration::ZERO);
        }
        assert_eq!(server.policy_count(), 20);
        let (mean, stddev) = server.policy_load_stats();
        assert!(mean > 0.0);
        assert!(stddev >= 0.0);
    }

    #[test]
    fn direct_deploy_baseline_bypasses_access_control() {
        let server = DataServer::new(ServerConfig::local());
        server.register_stream("weather", Schema::weather_example()).unwrap();
        let graph = exacml_dsms::QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 5")
            .unwrap()
            .build();
        let script = streamsql::generate(&graph, &Schema::weather_example());
        let (handle, timing) = server.direct_deploy(&script).unwrap();
        assert!(server.handle_is_live(&handle));
        assert_eq!(timing.pdp, Duration::ZERO);
        assert!(timing.total >= timing.dsms);
        // A malformed script is rejected.
        assert!(server.direct_deploy("garbage").is_err());
    }

    #[test]
    fn release_of_unknown_pairs_and_double_release_are_noops_with_stable_stats() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, None).unwrap();
        let stats_before = server.engine_stats();
        let audit_before = server.audit_events().len();

        // Unknown subject, unknown stream, unknown both: all no-ops.
        assert!(!server.release_access("EMA", "weather"));
        assert!(!server.release_access("LTA", "gps"));
        assert!(!server.release_access("nobody", "nothing"));
        assert_eq!(server.engine_stats(), stats_before);
        assert_eq!(server.audit_events().len(), audit_before);
        assert!(server.handle_is_live(&response.handle));
        assert_eq!(server.live_deployments(), 1);

        // A real release withdraws exactly one deployment...
        assert!(server.release_access("LTA", "weather"));
        let stats_released = server.engine_stats();
        assert_eq!(stats_released.deployments_withdrawn, stats_before.deployments_withdrawn + 1);
        assert!(!server.handle_is_live(&response.handle));

        // ...and the double release is a no-op with stable stats again.
        assert!(!server.release_access("LTA", "weather"));
        assert!(!server.release_access("lta", "WEATHER")); // case-insensitive key
        assert_eq!(server.engine_stats(), stats_released);
        assert_eq!(server.live_deployments(), 0);
    }

    #[test]
    fn release_after_policy_removal_is_a_noop() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, None).unwrap();
        // The policy removal already withdrew the graph and freed the guard
        // slot; a subsequent client release must be a clean no-op.
        server.remove_policy("nea-weather-for-lta").unwrap();
        let stats = server.engine_stats();
        assert!(!server.release_access("LTA", "weather"));
        assert_eq!(server.engine_stats(), stats);
        assert!(!server.handle_is_live(&response.handle));
    }

    #[test]
    fn handle_is_live_is_false_for_foreign_and_withdrawn_handles() {
        let server = server_with_weather();
        // Never-granted handles (wrong host, wrong id) are simply not live.
        assert!(!server.handle_is_live(&StreamHandle::from_uri("exacml://elsewhere/streams/0")));
        assert!(!server.handle_is_live(&StreamHandle::mint("other-host", 99)));

        let response = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(server.handle_is_live(&response.handle));
        server.release_access("LTA", "weather");
        assert!(!server.handle_is_live(&response.handle));
        // Liveness stays false on repeated queries (no resurrection).
        assert!(!server.handle_is_live(&response.handle));
    }

    fn open_weather_server(share_plans: bool) -> DataServer {
        let server = DataServer::new(ServerConfig {
            share_plans,
            deploy_on_partial_result: true,
            ..ServerConfig::local()
        });
        server.register_stream("weather", Schema::weather_example()).unwrap();
        // No subject constraint: any subject may subscribe, so N consumers
        // produce N overlapping grants of one policy shape.
        server
            .load_policy(
                StreamPolicyBuilder::new("open-weather", "weather").filter("rainrate > 5").build(),
            )
            .unwrap();
        server
    }

    fn rain_tuple(i: i64, rain: f64, wind: f64) -> Tuple {
        Tuple::builder(&Schema::weather_example())
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .set("windspeed", wind)
            .finish_with_defaults()
    }

    #[test]
    fn overlapping_grants_share_one_compiled_plan() {
        let server = open_weather_server(true);
        let responses: Vec<AccessResponse> = (0..8)
            .map(|i| {
                server
                    .handle_request(&Request::subscribe(&format!("user{i}"), "weather"), None)
                    .unwrap()
            })
            .collect();
        // One deployment, one plan, eight grants with distinct handles.
        assert_eq!(server.live_deployments(), 1);
        assert_eq!(server.plan_count(), 1);
        assert_eq!(server.grant_count(), 8);
        assert!(responses.iter().all(|r| r.plan == responses[0].plan));
        assert!(responses.iter().all(|r| r.deployment == responses[0].deployment));
        let distinct: std::collections::HashSet<&str> =
            responses.iter().map(|r| r.handle.uri()).collect();
        assert_eq!(distinct.len(), 8);

        // The shared plan fans out to every grant.
        let rxs: Vec<_> = responses.iter().map(|r| server.subscribe(&r.handle).unwrap()).collect();
        server.push("weather", rain_tuple(0, 10.0, 1.0)).unwrap();
        server.push("weather", rain_tuple(1, 1.0, 1.0)).unwrap(); // filtered out
        for rx in &rxs {
            assert_eq!(rx.try_iter().count(), 1);
        }
    }

    #[test]
    fn releasing_shared_grants_withdraws_the_deployment_only_at_zero() {
        let server = open_weather_server(true);
        let responses: Vec<AccessResponse> = (0..3)
            .map(|i| {
                server
                    .handle_request(&Request::subscribe(&format!("user{i}"), "weather"), None)
                    .unwrap()
            })
            .collect();
        assert!(server.release_access("user0", "weather"));
        assert!(server.release_access("user1", "weather"));
        // Released handles die immediately; the shared deployment survives
        // for the remaining grant.
        assert!(!server.handle_is_live(&responses[0].handle));
        assert!(!server.handle_is_live(&responses[1].handle));
        assert!(server.handle_is_live(&responses[2].handle));
        assert_eq!(server.live_deployments(), 1);
        assert_eq!(server.grant_count(), 1);
        // The last release drops the refcount to zero and withdraws.
        assert!(server.release_access("user2", "weather"));
        assert_eq!(server.live_deployments(), 0);
        assert_eq!(server.plan_count(), 0);
    }

    #[test]
    fn share_plans_off_deploys_one_graph_per_grant() {
        let server = open_weather_server(false);
        for i in 0..4 {
            server
                .handle_request(&Request::subscribe(&format!("user{i}"), "weather"), None)
                .unwrap();
        }
        // The unmerged baseline: grants and deployments grow in lockstep.
        assert_eq!(server.live_deployments(), 4);
        assert_eq!(server.plan_count(), 4);
        assert_eq!(server.grant_count(), 4);
    }

    #[test]
    fn tier2_residuals_share_the_policy_core_across_different_user_filters() {
        let server = open_weather_server(true);
        let heavy = UserQuery::for_stream("weather").with_filter("rainrate > 50");
        let windy = UserQuery::for_stream("weather").with_filter("windspeed > 3");
        let a =
            server.handle_request(&Request::subscribe("alice", "weather"), Some(&heavy)).unwrap();
        let b = server.handle_request(&Request::subscribe("bob", "weather"), Some(&windy)).unwrap();
        // Window-free grants with in-schema filters ride the policy core:
        // one deployment despite the differing refinements.
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(server.live_deployments(), 1);
        assert_eq!(server.plan_count(), 1);

        // Each grant still receives exactly its own merged output.
        let rx_a = server.subscribe(&a.handle).unwrap();
        let rx_b = server.subscribe(&b.handle).unwrap();
        server.push("weather", rain_tuple(0, 60.0, 1.0)).unwrap(); // heavy only
        server.push("weather", rain_tuple(1, 10.0, 5.0)).unwrap(); // windy only
        server.push("weather", rain_tuple(2, 3.0, 9.0)).unwrap(); // policy-filtered
        let got_a: Vec<Tuple> = rx_a.try_iter().collect();
        let got_b: Vec<Tuple> = rx_b.try_iter().collect();
        assert_eq!(got_a.len(), 1);
        assert!(got_a[0].get_f64("rainrate").unwrap() > 50.0);
        assert_eq!(got_b.len(), 1);
        assert!(got_b[0].get_f64("windspeed").unwrap() > 3.0);
    }

    #[test]
    fn cross_policy_sharers_survive_the_other_policys_withdrawal() {
        let server = DataServer::new(ServerConfig::local());
        server.register_stream("weather", Schema::weather_example()).unwrap();
        // Two policies with identical obligations for different subjects:
        // their cores canonicalize identically, so the grants share a plan.
        for (id, subject) in [("p-lta", "LTA"), ("p-ema", "EMA")] {
            server
                .load_policy(
                    StreamPolicyBuilder::new(id, "weather")
                        .subject(subject)
                        .filter("rainrate > 5")
                        .build(),
                )
                .unwrap();
        }
        let lta = server.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        let ema = server.handle_request(&Request::subscribe("EMA", "weather"), None).unwrap();
        assert_eq!(lta.deployment, ema.deployment);
        assert_eq!(server.plan_count(), 1);

        // Withdrawing p-lta evicts only LTA's grant; EMA keeps streaming on
        // the (still-referenced) shared deployment.
        assert_eq!(server.remove_policy("p-lta").unwrap(), 1);
        assert!(!server.handle_is_live(&lta.handle));
        assert!(server.handle_is_live(&ema.handle));
        assert_eq!(server.live_deployments(), 1);
        assert_eq!(server.grant_count(), 1);
        let rx = server.subscribe(&ema.handle).unwrap();
        server.push("weather", rain_tuple(0, 10.0, 1.0)).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        // EMA's release is the last reference: the deployment goes too.
        assert!(server.release_access("EMA", "weather"));
        assert_eq!(server.live_deployments(), 0);
    }

    #[test]
    fn telemetry_reproduces_the_request_decomposition() {
        let server = server_with_weather();
        let request = Request::subscribe("LTA", "weather");
        let response = server.handle_request(&request, None).unwrap();
        // The denied path records into the same registry.
        assert!(server.handle_request(&Request::subscribe("EMA", "weather"), None).is_err());

        let snapshot = server.telemetry_registry().snapshot();
        assert_eq!(snapshot.counter(Metric::Requests), 2);
        assert_eq!(snapshot.counter(Metric::RequestsGranted), 1);
        assert_eq!(snapshot.counter(Metric::RequestsDenied), 1);
        assert_eq!(snapshot.counter(Metric::PlanCacheMisses), 1);

        // The paper's Figure 6/7 series — PDP, query graph, DSMS deploy,
        // network — all present, and consistent with the per-request
        // RequestTiming the grant itself reported.
        assert_eq!(snapshot.stage(Stage::Pdp).unwrap().count, 2);
        assert_eq!(snapshot.stage(Stage::QueryGraph).unwrap().count, 1);
        assert_eq!(snapshot.stage(Stage::DsmsDeploy).unwrap().count, 1);
        assert_eq!(snapshot.stage(Stage::Network).unwrap().count, 1);
        assert_eq!(
            snapshot.stage(Stage::Network).unwrap().total_nanos,
            u64::try_from(response.timing.network.as_nanos()).unwrap()
        );
        assert!(
            snapshot.stage(Stage::DsmsDeploy).unwrap().total_nanos
                <= u64::try_from(response.timing.total.as_nanos()).unwrap()
        );

        // A plan-cache hit on a second subject under the same policy shape.
        let server = open_weather_server(true);
        server.handle_request(&Request::subscribe("a", "weather"), None).unwrap();
        server.handle_request(&Request::subscribe("b", "weather"), None).unwrap();
        let snapshot = server.telemetry_registry().snapshot();
        assert_eq!(snapshot.counter(Metric::PlanCacheHits), 1);
        assert_eq!(snapshot.counter(Metric::PlanCacheMisses), 1);
        assert_eq!(snapshot.stage(Stage::PlanCacheLookup).unwrap().count, 2);
    }

    #[test]
    fn mismatched_user_query_stream_is_rejected() {
        let server = server_with_weather();
        let query = UserQuery::for_stream("gps").with_filter("speed > 10");
        let err =
            server.handle_request(&Request::subscribe("LTA", "weather"), Some(&query)).unwrap_err();
        assert!(matches!(err, ExacmlError::StreamMismatch { .. }));
    }
}
