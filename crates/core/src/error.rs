//! Error types of the eXACML+ framework.

use crate::warnings::Warning;
use exacml_dsms::DsmsError;
use exacml_xacml::XacmlError;
use std::fmt;

/// Errors produced by the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ExacmlError {
    /// The PDP denied the request (or no policy applied).
    AccessDenied { decision: String, detail: String },
    /// The requester already holds a different live query on the same stream
    /// (Section 3.4 — only a single access per user per stream is allowed).
    MultipleAccess { subject: String, stream: String },
    /// Merging the policy graph with the user query raised warnings and the
    /// server is configured not to deploy in that case (Section 3.2 step 5).
    ConflictDetected { warnings: Vec<Warning> },
    /// The user query and the policy refer to different streams.
    StreamMismatch { requested: String, query: String },
    /// The user query asked for an aggregation window finer than the policy
    /// allows (Section 3.1 merge condition 2).
    WindowTooFine { detail: String },
    /// A user query document was malformed.
    InvalidUserQuery(String),
    /// An obligation could not be translated into a stream operator.
    BadObligation { obligation_id: String, detail: String },
    /// Request is missing a mandatory attribute (e.g. the resource id).
    IncompleteRequest(String),
    /// An error bubbled up from the DSMS substrate.
    Dsms(DsmsError),
    /// An error bubbled up from the XACML substrate.
    Xacml(XacmlError),
    /// The referenced stream handle is unknown or no longer live.
    UnknownHandle(String),
    /// The durability layer failed: a journal or snapshot could not be
    /// written, or a persisted store could not be read back into a
    /// consistent server state.
    Durability(String),
    /// A fabric node could not be reached: it is declared dead, crashed, or
    /// sits behind a dropped link / partition, and the broker exhausted its
    /// retry budget. The variant replaces what used to be a panic or a
    /// silent drop on the broker→node hop.
    NodeUnavailable {
        /// The unreachable node, in display form (e.g. `server-2`).
        node: String,
        /// Why the broker gave up (dead, partitioned, retries exhausted…).
        detail: String,
    },
}

impl fmt::Display for ExacmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExacmlError::AccessDenied { decision, detail } => {
                write!(f, "access denied ({decision}): {detail}")
            }
            ExacmlError::MultipleAccess { subject, stream } => write!(
                f,
                "subject '{subject}' already holds a different live query on stream '{stream}' \
                 (multiple aggregation windows would allow reconstructing the raw stream)"
            ),
            ExacmlError::ConflictDetected { warnings } => {
                write!(f, "query/policy conflict: {} warning(s)", warnings.len())
            }
            ExacmlError::StreamMismatch { requested, query } => write!(
                f,
                "the request asks for stream '{requested}' but the user query targets '{query}'"
            ),
            ExacmlError::WindowTooFine { detail } => {
                write!(f, "requested window is finer than the policy allows: {detail}")
            }
            ExacmlError::InvalidUserQuery(detail) => write!(f, "invalid user query: {detail}"),
            ExacmlError::BadObligation { obligation_id, detail } => {
                write!(f, "obligation '{obligation_id}' cannot be translated: {detail}")
            }
            ExacmlError::IncompleteRequest(detail) => write!(f, "incomplete request: {detail}"),
            ExacmlError::Dsms(e) => write!(f, "DSMS error: {e}"),
            ExacmlError::Xacml(e) => write!(f, "XACML error: {e}"),
            ExacmlError::UnknownHandle(uri) => write!(f, "unknown stream handle '{uri}'"),
            ExacmlError::Durability(detail) => write!(f, "durability error: {detail}"),
            ExacmlError::NodeUnavailable { node, detail } => {
                write!(f, "fabric node '{node}' is unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for ExacmlError {}

impl From<DsmsError> for ExacmlError {
    fn from(e: DsmsError) -> Self {
        ExacmlError::Dsms(e)
    }
}

impl From<XacmlError> for ExacmlError {
    fn from(e: XacmlError) -> Self {
        ExacmlError::Xacml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ExacmlError::MultipleAccess { subject: "LTA".into(), stream: "weather".into() };
        assert!(e.to_string().contains("LTA"));
        assert!(e.to_string().contains("weather"));
        let e = ExacmlError::ConflictDetected { warnings: vec![] };
        assert!(e.to_string().contains("0 warning"));
    }

    #[test]
    fn substrate_errors_convert() {
        let e: ExacmlError = DsmsError::UnknownStream("s".into()).into();
        assert!(matches!(e, ExacmlError::Dsms(_)));
        let e: ExacmlError = XacmlError::UnknownPolicy("p".into()).into();
        assert!(matches!(e, ExacmlError::Xacml(_)));
    }
}
