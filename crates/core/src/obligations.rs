//! The stream obligation vocabulary (Table 1 / Figure 2) and the translation
//! between obligations and Aurora query graphs.
//!
//! eXACML+ expresses fine-grained stream constraints inside the obligations
//! block of an XACML policy. Three obligation types exist, one per operator
//! box, each with a fixed set of attribute-assignment identifiers:
//!
//! | operator | obligation id | assignment ids |
//! |---|---|---|
//! | filter | `exacml:obligation:stream-filter` | `…stream-filter-condition-id` |
//! | map | `exacml:obligation:stream-map` | `…stream-map-attribute-id` (repeated) |
//! | window aggregation | `exacml:obligation:stream-window` | `…stream-window-type-id`, `…-size-id`, `…-step-id`, `…-attr-id` (repeated, `attr:function`) |
//!
//! [`obligations_from_graph`] renders a query graph into that vocabulary and
//! [`graph_from_obligations`] does the reverse (what the PEP performs on a
//! Permit decision). [`StreamPolicyBuilder`] is the convenience layer data
//! owners (and the evaluation workload generator) use to write complete
//! policies.

use crate::error::ExacmlError;
#[cfg(test)]
use exacml_dsms::AggFunc;
use exacml_dsms::{
    AggSpec, AggregateOp, FilterOp, MapOp, Operator, QueryGraph, WindowKind, WindowSpec,
};
use exacml_xacml::{Obligation, Policy, Rule, Target};

/// Obligation and attribute-assignment identifiers (Table 1 / Figure 2).
pub mod ids {
    /// Obligation id of the filter operator.
    pub const STREAM_FILTER: &str = "exacml:obligation:stream-filter";
    /// Obligation id of the map operator.
    pub const STREAM_MAP: &str = "exacml:obligation:stream-map";
    /// Obligation id of the window-based aggregation operator.
    pub const STREAM_WINDOW: &str = "exacml:obligation:stream-window";

    /// Alternative spellings used in the paper's Table 1 (the prose uses
    /// `-filtering` / `-mapping` / `-window-aggregation`; Figure 2 uses the
    /// short forms). Both are accepted when parsing.
    pub const STREAM_FILTER_ALT: &str = "exacml:obligation:stream-filtering";
    /// Alternative spelling of [`STREAM_MAP`].
    pub const STREAM_MAP_ALT: &str = "exacml:obligation:stream-mapping";
    /// Alternative spelling of [`STREAM_WINDOW`].
    pub const STREAM_WINDOW_ALT: &str = "exacml:obligation:stream-window-aggregation";

    /// Assignment id carrying the filter condition string.
    pub const FILTER_CONDITION: &str = "pCloud:obligation:stream-filter-condition-id";
    /// Assignment id carrying one visible attribute name (repeated).
    pub const MAP_ATTRIBUTE: &str = "pCloud:obligation:stream-map-attribute-id";
    /// Assignment id carrying the window type (`tuple` / `time`).
    pub const WINDOW_TYPE: &str = "pCloud:obligation:stream-window-type-id";
    /// Assignment id carrying the window size.
    pub const WINDOW_SIZE: &str = "pCloud:obligation:stream-window-size-id";
    /// Assignment id carrying the window advance step.
    pub const WINDOW_STEP: &str = "pCloud:obligation:stream-window-step-id";
    /// Assignment id carrying one `attribute:function` pair (repeated).
    pub const WINDOW_ATTR: &str = "pCloud:obligation:stream-window-attr-id";
}

fn is_filter_obligation(id: &str) -> bool {
    id == ids::STREAM_FILTER || id == ids::STREAM_FILTER_ALT
}
fn is_map_obligation(id: &str) -> bool {
    id == ids::STREAM_MAP || id == ids::STREAM_MAP_ALT
}
fn is_window_obligation(id: &str) -> bool {
    id == ids::STREAM_WINDOW || id == ids::STREAM_WINDOW_ALT
}

/// Render a query graph into the obligation vocabulary (one obligation per
/// operator box, in graph order).
#[must_use]
pub fn obligations_from_graph(graph: &QueryGraph) -> Vec<Obligation> {
    let mut obligations = Vec::with_capacity(graph.len());
    for node in &graph.nodes {
        match &node.operator {
            Operator::Filter(op) => {
                obligations.push(
                    Obligation::on_permit(ids::STREAM_FILTER)
                        .with_string(ids::FILTER_CONDITION, op.source()),
                );
            }
            Operator::Map(op) => {
                let mut ob = Obligation::on_permit(ids::STREAM_MAP);
                for attr in op.attributes() {
                    ob = ob.with_string(ids::MAP_ATTRIBUTE, attr.clone());
                }
                obligations.push(ob);
            }
            Operator::Aggregate(op) => {
                let mut ob = Obligation::on_permit(ids::STREAM_WINDOW)
                    .with_integer(ids::WINDOW_STEP, op.window.advance as i64)
                    .with_integer(ids::WINDOW_SIZE, op.window.size as i64)
                    .with_string(ids::WINDOW_TYPE, op.window.kind.keyword());
                for spec in &op.specs {
                    ob = ob.with_string(ids::WINDOW_ATTR, spec.encode());
                }
                obligations.push(ob);
            }
        }
    }
    obligations
}

/// Translate a set of obligations back into a query graph over `stream`.
/// This is what the PEP does when the PDP returns Permit (Section 3.2,
/// step 2). Obligations that are not part of the stream vocabulary are
/// ignored (they may be audit obligations handled elsewhere).
///
/// The resulting chain is always ordered filter → map → aggregation, as in
/// Figure 1, regardless of obligation order in the policy document.
///
/// # Errors
/// Returns [`ExacmlError::BadObligation`] when a stream obligation is
/// malformed (missing assignments, unparsable condition, unknown function).
pub fn graph_from_obligations(
    stream: &str,
    obligations: &[Obligation],
) -> Result<QueryGraph, ExacmlError> {
    let mut filter: Option<FilterOp> = None;
    let mut map: Option<MapOp> = None;
    let mut aggregate: Option<AggregateOp> = None;

    for ob in obligations {
        if is_filter_obligation(&ob.id) {
            let condition =
                ob.first_text(ids::FILTER_CONDITION).ok_or_else(|| ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "missing stream-filter-condition-id assignment".into(),
                })?;
            let op = FilterOp::parse(condition).map_err(|e| ExacmlError::BadObligation {
                obligation_id: ob.id.clone(),
                detail: e.to_string(),
            })?;
            filter = Some(match filter {
                // Multiple filter obligations conjoin.
                Some(existing) => {
                    FilterOp::new(existing.condition().clone().and(op.condition().clone()))
                }
                None => op,
            });
        } else if is_map_obligation(&ob.id) {
            let attrs: Vec<String> =
                ob.values_of(ids::MAP_ATTRIBUTE).iter().map(|v| v.text.clone()).collect();
            if attrs.is_empty() {
                return Err(ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "map obligation lists no attributes".into(),
                });
            }
            map = Some(MapOp::new(attrs));
        } else if is_window_obligation(&ob.id) {
            let size =
                ob.first_integer(ids::WINDOW_SIZE).ok_or_else(|| ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "missing or non-integer stream-window-size-id".into(),
                })?;
            let step =
                ob.first_integer(ids::WINDOW_STEP).ok_or_else(|| ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "missing or non-integer stream-window-step-id".into(),
                })?;
            let kind = ob
                .first_text(ids::WINDOW_TYPE)
                .and_then(WindowKind::from_keyword)
                .ok_or_else(|| ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "missing or unknown stream-window-type-id".into(),
                })?;
            if size <= 0 || step <= 0 {
                return Err(ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: format!("window size {size} / step {step} must be positive"),
                });
            }
            let mut specs = Vec::new();
            for v in ob.values_of(ids::WINDOW_ATTR) {
                let spec = AggSpec::parse(&v.text).ok_or_else(|| ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: format!("bad attribute:function pair '{}'", v.text),
                })?;
                specs.push(spec);
            }
            if specs.is_empty() {
                return Err(ExacmlError::BadObligation {
                    obligation_id: ob.id.clone(),
                    detail: "window obligation lists no attribute:function pairs".into(),
                });
            }
            aggregate = Some(AggregateOp::new(
                WindowSpec { kind, size: size as u64, advance: step as u64 },
                specs,
            ));
        }
    }

    let mut operators = Vec::new();
    if let Some(op) = filter {
        operators.push(Operator::Filter(op));
    }
    if let Some(op) = map {
        operators.push(Operator::Map(op));
    }
    if let Some(op) = aggregate {
        operators.push(Operator::Aggregate(op));
    }
    Ok(QueryGraph::from_operators(stream, operators))
}

/// Convenience builder for complete stream-access policies: the target names
/// who may subscribe to which stream, and the obligations encode what they
/// may see. This is the API data owners (the NEA in the paper's example) and
/// the workload generator use.
///
/// ```
/// use exacml_plus::StreamPolicyBuilder;
/// use exacml_dsms::{AggFunc, AggSpec, WindowSpec};
///
/// // The Example 1 policy: LTA may subscribe to the weather stream, sees
/// // only three attributes, in windows of 5 advancing by 2, and only while
/// // it rains hard.
/// let policy = StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
///     .subject("LTA")
///     .filter("rainrate > 5")
///     .visible_attributes(["samplingtime", "rainrate", "windspeed"])
///     .window(WindowSpec::tuples(5, 2), vec![
///         AggSpec::new("samplingtime", AggFunc::LastValue),
///         AggSpec::new("rainrate", AggFunc::Avg),
///         AggSpec::new("windspeed", AggFunc::Max),
///     ])
///     .build();
/// assert_eq!(policy.obligations.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPolicyBuilder {
    policy_id: String,
    stream: String,
    subject: Option<String>,
    action: String,
    description: String,
    filter: Option<String>,
    visible: Vec<String>,
    window: Option<(WindowSpec, Vec<AggSpec>)>,
}

impl StreamPolicyBuilder {
    /// A policy named `policy_id` governing access to `stream`.
    pub fn new(policy_id: impl Into<String>, stream: impl Into<String>) -> Self {
        StreamPolicyBuilder {
            policy_id: policy_id.into(),
            stream: stream.into(),
            subject: None,
            action: "subscribe".into(),
            description: String::new(),
            filter: None,
            visible: Vec::new(),
            window: None,
        }
    }

    /// Restrict the policy to one subject (data consumer). Without it the
    /// policy applies to any subject asking for the stream.
    #[must_use]
    pub fn subject(mut self, subject: impl Into<String>) -> Self {
        self.subject = Some(subject.into());
        self
    }

    /// Override the action (defaults to `subscribe`).
    #[must_use]
    pub fn action(mut self, action: impl Into<String>) -> Self {
        self.action = action.into();
        self
    }

    /// Free-form description.
    #[must_use]
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// The row-visibility condition (filter obligation).
    #[must_use]
    pub fn filter(mut self, condition: impl Into<String>) -> Self {
        self.filter = Some(condition.into());
        self
    }

    /// The visible attributes (map obligation).
    #[must_use]
    pub fn visible_attributes<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.visible = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// The mandatory aggregation window (window obligation).
    #[must_use]
    pub fn window(mut self, window: WindowSpec, specs: Vec<AggSpec>) -> Self {
        self.window = Some((window, specs));
        self
    }

    /// The query graph the policy's obligations describe.
    #[must_use]
    pub fn to_graph(&self) -> QueryGraph {
        let mut operators = Vec::new();
        if let Some(cond) = &self.filter {
            if let Ok(op) = FilterOp::parse(cond) {
                operators.push(Operator::Filter(op));
            }
        }
        if !self.visible.is_empty() {
            operators.push(Operator::Map(MapOp::new(self.visible.clone())));
        }
        if let Some((window, specs)) = &self.window {
            operators.push(Operator::Aggregate(AggregateOp::new(*window, specs.clone())));
        }
        QueryGraph::from_operators(&self.stream, operators)
    }

    /// Build the XACML policy: the target matches the subject / stream /
    /// action triple, a single Permit rule applies, and the obligations
    /// encode the stream constraints.
    #[must_use]
    pub fn build(&self) -> Policy {
        let target = match &self.subject {
            Some(subject) => Target::subject_resource_action(subject, &self.stream, &self.action),
            None => {
                use exacml_xacml::request::ids as req_ids;
                use exacml_xacml::{AttributeCategory, AttributeMatch};
                Target::new(vec![
                    AttributeMatch::new(
                        AttributeCategory::Resource,
                        req_ids::RESOURCE_ID,
                        &self.stream,
                    ),
                    AttributeMatch::new(
                        AttributeCategory::Action,
                        req_ids::ACTION_ID,
                        &self.action,
                    ),
                ])
            }
        };
        let mut policy = Policy::new(&self.policy_id)
            .with_description(&self.description)
            .with_target(target)
            .with_rule(Rule::permit_all(format!("{}-permit", self.policy_id)));
        for ob in obligations_from_graph(&self.to_graph()) {
            policy = policy.with_obligation(ob);
        }
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_dsms::Schema;

    fn example1_builder() -> StreamPolicyBuilder {
        StreamPolicyBuilder::new("nea-weather-for-lta", "weather")
            .subject("LTA")
            .description("real-time weather for the traffic warning system")
            .filter("rainrate > 5")
            .visible_attributes(["samplingtime", "rainrate", "windspeed"])
            .window(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
    }

    #[test]
    fn builder_produces_figure2_obligations() {
        let policy = example1_builder().build();
        assert_eq!(policy.obligations.len(), 3);
        let filter = &policy.obligations[0];
        assert_eq!(filter.id, ids::STREAM_FILTER);
        assert_eq!(filter.first_text(ids::FILTER_CONDITION), Some("rainrate > 5"));
        let map = &policy.obligations[1];
        assert_eq!(map.values_of(ids::MAP_ATTRIBUTE).len(), 3);
        let window = &policy.obligations[2];
        assert_eq!(window.first_integer(ids::WINDOW_SIZE), Some(5));
        assert_eq!(window.first_integer(ids::WINDOW_STEP), Some(2));
        assert_eq!(window.first_text(ids::WINDOW_TYPE), Some("tuple"));
        assert_eq!(window.values_of(ids::WINDOW_ATTR).len(), 3);
        assert_eq!(window.values_of(ids::WINDOW_ATTR)[1].text, "rainrate:avg");
    }

    #[test]
    fn graph_round_trips_through_obligations() {
        let graph = example1_builder().to_graph();
        let obligations = obligations_from_graph(&graph);
        let rebuilt = graph_from_obligations("weather", &obligations).unwrap();
        assert_eq!(rebuilt, graph);
        // The rebuilt graph validates against the weather schema and yields
        // the Figure 1 output schema.
        let out = rebuilt.output_schema(&Schema::weather_example()).unwrap();
        assert_eq!(out.field_names(), vec!["lastvalsamplingtime", "avgrainrate", "maxwindspeed"]);
    }

    #[test]
    fn obligation_order_does_not_matter() {
        let graph = example1_builder().to_graph();
        let mut obligations = obligations_from_graph(&graph);
        obligations.reverse();
        let rebuilt = graph_from_obligations("weather", &obligations).unwrap();
        assert_eq!(rebuilt.composition(), "FB+MB+AB");
        assert_eq!(rebuilt, graph);
    }

    #[test]
    fn alternative_table1_ids_are_accepted() {
        let ob = Obligation::on_permit(ids::STREAM_FILTER_ALT)
            .with_string(ids::FILTER_CONDITION, "a > 1");
        let graph = graph_from_obligations("s", &[ob]).unwrap();
        assert_eq!(graph.composition(), "FB");
        let ob = Obligation::on_permit(ids::STREAM_MAP_ALT).with_string(ids::MAP_ATTRIBUTE, "a");
        assert_eq!(graph_from_obligations("s", &[ob]).unwrap().composition(), "MB");
    }

    #[test]
    fn unrelated_obligations_are_ignored() {
        let ob = Obligation::on_permit("exacml:obligation:audit-log");
        let graph = graph_from_obligations("s", &[ob]).unwrap();
        assert!(graph.is_empty());
    }

    #[test]
    fn multiple_filter_obligations_conjoin() {
        let obs = vec![
            Obligation::on_permit(ids::STREAM_FILTER).with_string(ids::FILTER_CONDITION, "a > 1"),
            Obligation::on_permit(ids::STREAM_FILTER).with_string(ids::FILTER_CONDITION, "b < 2"),
        ];
        let graph = graph_from_obligations("s", &obs).unwrap();
        let cond = graph.filter().unwrap().condition().to_string();
        assert!(cond.contains("a > 1") && cond.contains("b < 2"));
    }

    #[test]
    fn malformed_obligations_are_rejected() {
        // Missing condition.
        let ob = Obligation::on_permit(ids::STREAM_FILTER);
        assert!(matches!(
            graph_from_obligations("s", &[ob]),
            Err(ExacmlError::BadObligation { .. })
        ));
        // Unparsable condition.
        let ob =
            Obligation::on_permit(ids::STREAM_FILTER).with_string(ids::FILTER_CONDITION, "a >");
        assert!(graph_from_obligations("s", &[ob]).is_err());
        // Empty map.
        let ob = Obligation::on_permit(ids::STREAM_MAP);
        assert!(graph_from_obligations("s", &[ob]).is_err());
        // Window without size.
        let ob = Obligation::on_permit(ids::STREAM_WINDOW)
            .with_integer(ids::WINDOW_STEP, 2)
            .with_string(ids::WINDOW_TYPE, "tuple")
            .with_string(ids::WINDOW_ATTR, "a:avg");
        assert!(graph_from_obligations("s", &[ob]).is_err());
        // Window with a negative size.
        let ob = Obligation::on_permit(ids::STREAM_WINDOW)
            .with_integer(ids::WINDOW_SIZE, -5)
            .with_integer(ids::WINDOW_STEP, 2)
            .with_string(ids::WINDOW_TYPE, "tuple")
            .with_string(ids::WINDOW_ATTR, "a:avg");
        assert!(graph_from_obligations("s", &[ob]).is_err());
        // Window with a bad function.
        let ob = Obligation::on_permit(ids::STREAM_WINDOW)
            .with_integer(ids::WINDOW_SIZE, 5)
            .with_integer(ids::WINDOW_STEP, 2)
            .with_string(ids::WINDOW_TYPE, "tuple")
            .with_string(ids::WINDOW_ATTR, "a:median");
        assert!(graph_from_obligations("s", &[ob]).is_err());
        // Window without attribute pairs.
        let ob = Obligation::on_permit(ids::STREAM_WINDOW)
            .with_integer(ids::WINDOW_SIZE, 5)
            .with_integer(ids::WINDOW_STEP, 2)
            .with_string(ids::WINDOW_TYPE, "tuple");
        assert!(graph_from_obligations("s", &[ob]).is_err());
    }

    #[test]
    fn policy_target_matches_only_named_subject() {
        use exacml_xacml::Request;
        let policy = example1_builder().build();
        assert!(policy.evaluate(&Request::subscribe("LTA", "weather")).is_some());
        assert!(policy.evaluate(&Request::subscribe("EMA", "weather")).is_none());
        // Without a subject restriction any subject matches.
        let open = StreamPolicyBuilder::new("open-weather", "weather").filter("TRUE").build();
        assert!(open.evaluate(&Request::subscribe("anyone", "weather")).is_some());
        assert!(open.evaluate(&Request::subscribe("anyone", "gps")).is_none());
    }

    #[test]
    fn policy_round_trips_through_xml() {
        let policy = example1_builder().build();
        let xml = exacml_xacml::xml::write_policy(&policy);
        let parsed = exacml_xacml::xml::parse_policy(&xml).unwrap();
        assert_eq!(parsed, policy);
        // And the obligations still translate to the same graph.
        let graph = graph_from_obligations("weather", &parsed.obligations).unwrap();
        assert_eq!(graph, example1_builder().to_graph());
    }
}
