//! Merging the policy-derived and user-supplied query graphs (Section 3.1).
//!
//! "One could simply concatenate the two graphs, but properly merging them
//! together gains advantages such as reducing the number of operators in the
//! query graph and therefore improving efficiency. It also allows for the
//! detection of empty/partial results."
//!
//! Merge rules, with the policy graph providing `F1`/`M1`/`A1` and the user
//! graph `F2`/`M2`/`A2`:
//!
//! * **filter** — `F3`'s condition is `(C1) AND (C2)`, simplified where
//!   possible (e.g. `x > v1 AND x > v2` → `x > max(v1, v2)`);
//! * **map** — the paper's text says `S3 = S1 ∪ S2`; taken literally that
//!   would expose attributes the policy hides, and the paper's own NR/PR
//!   rule for map is based on the intersection, so the default here is
//!   `S3 = S1 ∩ S2` and the literal union is available behind
//!   [`MergeOptions::map_union`] (documented in DESIGN.md);
//! * **window aggregation** — only allowed when the window types match and
//!   the user's window is at least as coarse as the policy's (size and
//!   advance step no smaller); the merged operator takes the user's window
//!   and the intersection of the `attribute:function` pairs.
//!
//! The NR/PR warnings of Section 3.5 are produced as part of the same pass.

use crate::error::ExacmlError;
use crate::warnings::{check_aggregate_merge, check_map_merge, Warning, WarningSource};
use exacml_dsms::{AggregateOp, FilterOp, MapOp, Operator, QueryGraph};
use exacml_expr::{analyze_merge, simplify, ConflictReport, Expr, Origin};
use serde::{Deserialize, Serialize};

/// Options controlling the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeOptions {
    /// Use the paper's literal `S3 = S1 ∪ S2` rule for map operators instead
    /// of the safe intersection (default `false`).
    pub map_union: bool,
    /// Simplify the merged filter condition (default `true`). Turning this
    /// off reproduces the "simply concatenate" baseline the paper compares
    /// against when motivating proper merging.
    pub simplify_filters: bool,
}

impl Default for MergeOptions {
    fn default() -> Self {
        MergeOptions { map_union: false, simplify_filters: true }
    }
}

/// The result of merging the two graphs.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged query graph (filter → map → aggregation order).
    pub graph: QueryGraph,
    /// NR/PR warnings raised during the merge.
    pub warnings: Vec<Warning>,
    /// The detailed filter-condition conflict report, when both sides
    /// contributed a filter.
    pub filter_report: Option<ConflictReport>,
}

impl MergeOutcome {
    /// Whether any warning was raised.
    #[must_use]
    pub fn has_warnings(&self) -> bool {
        !self.warnings.is_empty()
    }
}

/// Merge the policy-derived graph with the user-query graph.
///
/// # Errors
/// Returns [`ExacmlError::StreamMismatch`] when the graphs target different
/// streams and [`ExacmlError::WindowTooFine`] when the user requests a finer
/// aggregation window than the policy permits (merge condition 2 of
/// Section 3.1 — this is an error rather than a warning because honouring
/// the request would leak finer-grained data than the owner allowed).
pub fn merge_graphs(
    policy: &QueryGraph,
    user: &QueryGraph,
    options: MergeOptions,
) -> Result<MergeOutcome, ExacmlError> {
    if !policy.stream.eq_ignore_ascii_case(&user.stream) {
        return Err(ExacmlError::StreamMismatch {
            requested: policy.stream.clone(),
            query: user.stream.clone(),
        });
    }

    let mut warnings = Vec::new();
    let mut operators = Vec::new();
    let mut filter_report = None;

    // --- Filter boxes -----------------------------------------------------
    let merged_filter = match (policy.filter(), user.filter()) {
        (Some(f1), Some(f2)) => {
            let report = analyze_merge(f1.condition(), f2.condition());
            if let Some(w) = Warning::from_filter_verdict(
                report.verdict,
                &format!(
                    "policy condition '{}' combined with query condition '{}'",
                    f1.source(),
                    f2.source()
                ),
            ) {
                warnings.push(w);
            }
            filter_report = Some(report);
            let combined: Expr = f1
                .condition()
                .clone()
                .with_origin(Origin::Policy)
                .and(f2.condition().clone().with_origin(Origin::User));
            let condition = if options.simplify_filters { simplify(&combined) } else { combined };
            Some(FilterOp::new(condition))
        }
        (Some(f1), None) => Some(f1.clone()),
        (None, Some(f2)) => Some(f2.clone()),
        (None, None) => None,
    };
    if let Some(f) = merged_filter {
        operators.push(Operator::Filter(f));
    }

    // --- Map boxes ---------------------------------------------------------
    let merged_map = match (policy.map(), user.map()) {
        (Some(m1), Some(m2)) => {
            if let Some(w) = check_map_merge(m1, m2) {
                warnings.push(w);
            }
            let attrs: Vec<String> = if options.map_union {
                // The paper's literal rule: S3 = S1 ∪ S2.
                let mut union: Vec<String> = m1.attributes().to_vec();
                for a in m2.attributes() {
                    if !union.iter().any(|x| x.eq_ignore_ascii_case(a)) {
                        union.push(a.clone());
                    }
                }
                union
            } else {
                // Safe reading: only attributes both sides expose.
                m1.attributes()
                    .iter()
                    .filter(|a| m2.attributes().iter().any(|b| b.eq_ignore_ascii_case(a)))
                    .cloned()
                    .collect()
            };
            if attrs.is_empty() {
                // Nothing remains visible; the NR warning is already recorded.
                None
            } else {
                Some(MapOp::new(attrs))
            }
        }
        // Single-sided merges are option-independent: `map_union` widens only
        // the two-sided union above. Reading an absent map as "all attributes
        // visible" and taking the literal union would be wrong on either
        // side — with no *user* map it would widen the projection past the
        // policy-visible schema, and with no *policy* map it would erase the
        // user's own projection. The surviving side's projection is the
        // merged projection, exactly.
        (Some(m), None) | (None, Some(m)) => Some(m.clone()),
        (None, None) => None,
    };
    if let Some(m) = merged_map {
        operators.push(Operator::Map(m));
    }

    // --- Aggregation boxes ---------------------------------------------------
    let merged_agg = match (policy.aggregate(), user.aggregate()) {
        (Some(a1), Some(a2)) => {
            // Merge condition 2: the user may not ask for a finer window.
            if !a2.window.is_coarsening_of(&a1.window) {
                return Err(ExacmlError::WindowTooFine {
                    detail: format!(
                        "policy window is {}, requested window is {}",
                        a1.window, a2.window
                    ),
                });
            }
            if let Some(w) = check_aggregate_merge(a1, a2) {
                warnings.push(w);
            }
            // Intersection of attribute:function pairs; the merged window is
            // the user's (coarser or equal) window.
            let specs: Vec<_> = a2
                .specs
                .iter()
                .filter(|s| {
                    a1.specs.iter().any(|p| {
                        p.function == s.function && p.attribute.eq_ignore_ascii_case(&s.attribute)
                    })
                })
                .cloned()
                .collect();
            if specs.is_empty() {
                if !warnings.iter().any(|w| w.source == WarningSource::Aggregate) {
                    warnings.push(Warning::empty(
                        WarningSource::Aggregate,
                        "no aggregation requested by the query is offered by the policy",
                    ));
                }
                // Fall back to the policy's aggregation so the owner's
                // coarsening is still enforced if the graph is deployed.
                Some(AggregateOp::new(a2.window, a1.specs.clone()))
            } else {
                Some(AggregateOp::new(a2.window, specs))
            }
        }
        (Some(a1), None) => Some(a1.clone()),
        (None, Some(a2)) => Some(a2.clone()),
        (None, None) => None,
    };
    if let Some(a) = merged_agg {
        operators.push(Operator::Aggregate(a));
    }

    Ok(MergeOutcome {
        graph: QueryGraph::from_operators(&policy.stream, operators),
        warnings,
        filter_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warnings::WarningKind;
    use exacml_dsms::{AggFunc, AggSpec, QueryGraphBuilder, Schema, WindowSpec};

    fn policy_graph() -> QueryGraph {
        // The Example 1 policy graph (Figure 1).
        QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 5")
            .unwrap()
            .map(["samplingtime", "rainrate", "windspeed"])
            .aggregate(
                WindowSpec::tuples(5, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                    AggSpec::new("windspeed", AggFunc::Max),
                ],
            )
            .build()
    }

    fn user_graph() -> QueryGraph {
        // The Section 3.1 user refinement (Figure 4a): rain above 50 mm/h,
        // only rain rate, windows of 10 advancing by 2.
        QueryGraphBuilder::on_stream("weather")
            .filter_str("rainrate > 50")
            .unwrap()
            .map(["samplingtime", "rainrate"])
            .aggregate(
                WindowSpec::tuples(10, 2),
                vec![
                    AggSpec::new("samplingtime", AggFunc::LastValue),
                    AggSpec::new("rainrate", AggFunc::Avg),
                ],
            )
            .build()
    }

    #[test]
    fn merges_the_paper_running_example() {
        let outcome =
            merge_graphs(&policy_graph(), &user_graph(), MergeOptions::default()).unwrap();
        let g = &outcome.graph;
        assert_eq!(g.composition(), "FB+MB+AB");
        // Filter simplifies to the stricter bound.
        assert_eq!(g.filter().unwrap().condition().to_string(), "rainrate > 50");
        // Map keeps the attributes both sides expose.
        assert_eq!(
            g.map().unwrap().attributes(),
            &["samplingtime".to_string(), "rainrate".to_string()]
        );
        // Window takes the user's coarser size, policy's functions survive the
        // intersection.
        let agg = g.aggregate().unwrap();
        assert_eq!(agg.window, WindowSpec::tuples(10, 2));
        assert_eq!(agg.specs.len(), 2);
        // The merged graph matches Figure 4(b) when rendered as StreamSQL.
        let sql = exacml_dsms::streamsql::generate(g, &Schema::weather_example());
        assert!(sql.contains("WHERE rainrate > 50"));
        assert!(sql.contains("SIZE 10 ADVANCE 2 TUPLES"));
        assert!(sql.contains("avg(rainrate) AS avgrainrate"));
        // A PR warning is raised: the user query's map asks only for a subset
        // (and the policy filter narrows nothing here, since 50 > 5).
        assert!(outcome.has_warnings());
        // The merged graph is still valid against the stream schema.
        g.validate(&Schema::weather_example()).unwrap();
    }

    #[test]
    fn filter_only_policy_passes_user_query_through() {
        let policy = QueryGraphBuilder::on_stream("s").filter_str("a > 1").unwrap().build();
        let user = QueryGraphBuilder::on_stream("s").map(["a", "b"]).build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.graph.composition(), "FB+MB");
        assert!(!outcome.has_warnings());
    }

    #[test]
    fn filter_conflict_produces_nr_warning() {
        let policy = QueryGraphBuilder::on_stream("s").filter_str("a < 4").unwrap().build();
        let user = QueryGraphBuilder::on_stream("s").filter_str("a > 5").unwrap().build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.warnings.len(), 1);
        assert_eq!(outcome.warnings[0].kind, WarningKind::EmptyResult);
        assert_eq!(outcome.warnings[0].source, WarningSource::Filter);
        // The simplified merged condition is the constant FALSE.
        assert_eq!(outcome.graph.filter().unwrap().condition(), &Expr::False);
        assert!(outcome.filter_report.is_some());
    }

    #[test]
    fn filter_narrowing_produces_pr_warning() {
        let policy = QueryGraphBuilder::on_stream("s").filter_str("a > 8").unwrap().build();
        let user = QueryGraphBuilder::on_stream("s").filter_str("a > 5").unwrap().build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.warnings[0].kind, WarningKind::PartialResult);
        assert_eq!(outcome.graph.filter().unwrap().condition().to_string(), "a > 8");
    }

    #[test]
    fn simplification_can_be_disabled() {
        let policy = QueryGraphBuilder::on_stream("s").filter_str("a > 5").unwrap().build();
        let user = QueryGraphBuilder::on_stream("s").filter_str("a > 50").unwrap().build();
        let options = MergeOptions { simplify_filters: false, ..MergeOptions::default() };
        let outcome = merge_graphs(&policy, &user, options).unwrap();
        // Without simplification both leaves survive.
        assert_eq!(outcome.graph.filter().unwrap().condition().leaf_count(), 2);
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.graph.filter().unwrap().condition().leaf_count(), 1);
    }

    #[test]
    fn map_union_option_follows_the_paper_text() {
        let policy = QueryGraphBuilder::on_stream("s").map(["a", "b"]).build();
        let user = QueryGraphBuilder::on_stream("s").map(["b", "c"]).build();
        let safe = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(safe.graph.map().unwrap().attributes(), &["b".to_string()]);
        let union = merge_graphs(
            &policy,
            &user,
            MergeOptions { map_union: true, ..MergeOptions::default() },
        )
        .unwrap();
        assert_eq!(
            union.graph.map().unwrap().attributes(),
            &["a".to_string(), "b".to_string(), "c".to_string()]
        );
        // Both produce the same PR warning (sets differ but intersect).
        assert_eq!(safe.warnings[0].kind, WarningKind::PartialResult);
        assert_eq!(union.warnings[0].kind, WarningKind::PartialResult);
    }

    #[test]
    fn map_union_never_widens_single_sided_merges() {
        // Regression pin: with `map_union` on, a merge where only ONE side
        // carries a map must keep exactly that side's projection. A literal
        // `S1 ∪ S2` reading with the absent side as "everything visible"
        // would expose attributes the policy hides (policy-map side) or
        // un-project the user's query (user-map side).
        let options = MergeOptions { map_union: true, ..MergeOptions::default() };
        let policy_mapped = QueryGraphBuilder::on_stream("s").map(["a", "b"]).build();
        let user_plain = QueryGraphBuilder::on_stream("s").filter_str("a > 1").unwrap().build();
        let outcome = merge_graphs(&policy_mapped, &user_plain, options).unwrap();
        assert_eq!(
            outcome.graph.map().unwrap().attributes(),
            &["a".to_string(), "b".to_string()],
            "user side without a map must not widen past the policy projection"
        );
        let policy_plain = QueryGraphBuilder::on_stream("s").filter_str("b > 2").unwrap().build();
        let user_mapped = QueryGraphBuilder::on_stream("s").map(["b"]).build();
        let outcome = merge_graphs(&policy_plain, &user_mapped, options).unwrap();
        assert_eq!(
            outcome.graph.map().unwrap().attributes(),
            &["b".to_string()],
            "policy side without a map must not erase the user projection"
        );
    }

    #[test]
    fn disjoint_maps_drop_the_operator_and_warn_nr() {
        let policy = QueryGraphBuilder::on_stream("s").map(["a"]).build();
        let user = QueryGraphBuilder::on_stream("s").map(["b"]).build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.warnings[0].kind, WarningKind::EmptyResult);
        assert!(outcome.graph.map().is_none());
    }

    #[test]
    fn finer_user_window_is_rejected() {
        let policy = QueryGraphBuilder::on_stream("s")
            .aggregate(WindowSpec::tuples(5, 2), vec![AggSpec::new("a", AggFunc::Sum)])
            .build();
        for user_window in
            [WindowSpec::tuples(3, 2), WindowSpec::tuples(5, 1), WindowSpec::time(10, 2)]
        {
            let user = QueryGraphBuilder::on_stream("s")
                .aggregate(user_window, vec![AggSpec::new("a", AggFunc::Sum)])
                .build();
            assert!(matches!(
                merge_graphs(&policy, &user, MergeOptions::default()),
                Err(ExacmlError::WindowTooFine { .. })
            ));
        }
    }

    #[test]
    fn aggregation_function_mismatch_warns_and_keeps_policy_specs() {
        let policy = QueryGraphBuilder::on_stream("s")
            .aggregate(WindowSpec::tuples(5, 2), vec![AggSpec::new("a", AggFunc::Sum)])
            .build();
        let user = QueryGraphBuilder::on_stream("s")
            .aggregate(WindowSpec::tuples(10, 4), vec![AggSpec::new("a", AggFunc::Avg)])
            .build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.warnings[0].kind, WarningKind::EmptyResult);
        let agg = outcome.graph.aggregate().unwrap();
        assert_eq!(agg.specs, vec![AggSpec::new("a", AggFunc::Sum)]);
        assert_eq!(agg.window, WindowSpec::tuples(10, 4));
    }

    #[test]
    fn policy_only_aggregation_is_kept() {
        let policy = QueryGraphBuilder::on_stream("s")
            .aggregate(WindowSpec::tuples(5, 2), vec![AggSpec::new("a", AggFunc::Sum)])
            .build();
        let user = QueryGraphBuilder::on_stream("s").filter_str("a > 0").unwrap().build();
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.graph.composition(), "FB+AB");
        assert_eq!(outcome.graph.aggregate().unwrap().window, WindowSpec::tuples(5, 2));
        assert!(!outcome.has_warnings());
    }

    #[test]
    fn stream_mismatch_is_rejected() {
        let policy = QueryGraphBuilder::on_stream("weather").build();
        let user = QueryGraphBuilder::on_stream("gps").build();
        assert!(matches!(
            merge_graphs(&policy, &user, MergeOptions::default()),
            Err(ExacmlError::StreamMismatch { .. })
        ));
    }

    #[test]
    fn identity_user_query_reproduces_policy_graph() {
        let policy = policy_graph();
        let user = QueryGraph::identity("weather");
        let outcome = merge_graphs(&policy, &user, MergeOptions::default()).unwrap();
        assert_eq!(outcome.graph, policy);
        assert!(!outcome.has_warnings());
    }
}
