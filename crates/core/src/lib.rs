//! # exacml-plus — fine-grained access control over data streams
//!
//! This crate is the reproduction of the eXACML+ framework proposed in
//! *"Cloud and the City: Facilitating Flexible Access Control over Data
//! Streams"* (Wang, Dinh, Lim, Datta, 2012). It layers fine-grained,
//! obligation-driven access control on top of an Aurora-model stream engine:
//!
//! 1. data owners write XACML policies whose **obligations** encode the
//!    stream operators a consumer is allowed to see — a filter condition,
//!    the visible attributes and a window-based aggregation
//!    ([`obligations`], Table 1 / Figure 2 of the paper);
//! 2. consumers send an access **request** plus an optional customised
//!    continuous query ([`user_query`], Figure 4a);
//! 3. the **PEP** asks the PDP for a decision, derives a query graph from
//!    the obligations, derives another from the user query, **merges** the
//!    two ([`merge`], Section 3.1) while checking for **empty / partial
//!    result conflicts** ([`warnings`], Section 3.5);
//! 4. a **single-access guard** blocks the multi-window reconstruction
//!    attack ([`access_guard`], [`attack`], Section 3.4);
//! 5. the merged graph is converted to StreamSQL, deployed on the DSMS and
//!    tracked per policy so that removing or modifying a policy withdraws
//!    every graph it spawned ([`graph_mgmt`], Section 3.3);
//! 6. the consumer receives a **stream handle** (URI) rather than data, and
//!    subscribes to the derived stream through it.
//!
//! The deployment entities of Figure 3 — data server, proxy with handle
//! cache and client interface — live in [`server`], [`proxy`] and
//! [`client`]; per-request timing (PDP / query-graph / DSMS / network) is
//! collected in [`metrics`], which is what the evaluation figures are built
//! from. [`fabric`] scales the data server out: N nodes (each with its own
//! PDP, policy store and engine) behind a routing broker over simulated
//! links, with consistent stream placement, fabric-wide policy propagation
//! and virtual-clock-driven subscriber delivery.
//!
//! Every deployment shape speaks **one API**: the object-safe trait stack in
//! [`backend`] ([`StreamBackend`] / [`AccessControl`] / [`PolicyAdmin`],
//! composed as [`Backend`]) is implemented by [`DataServer`] and [`Fabric`]
//! alike, with unified responses ([`BackendResponse`]), subscriptions
//! ([`Subscription`]) and errors — scenario code written against
//! `&dyn Backend` runs unchanged on one node or N.

pub mod access_guard;
pub mod attack;
pub mod audit;
pub mod backend;
pub mod client;
pub mod error;
pub mod fabric;
pub mod graph_mgmt;
pub mod merge;
pub mod metrics;
pub mod obligations;
pub mod proxy;
pub mod router;
pub mod server;
pub mod shared_plan;
pub mod user_query;
pub mod warnings;

pub use access_guard::AccessGuard;
pub use audit::{AuditEvent, AuditEventKind, AuditLog};
pub use backend::{
    AccessControl, Backend, BackendHealth, BackendResponse, PolicyAdmin, StreamBackend,
    StreamBatch, Subscription, TaggedAuditEvent,
};
pub use client::{ClientInterface, RequestResult};
pub use error::ExacmlError;
pub use fabric::{
    rendezvous_owner, DeliveredTuple, Fabric, FabricConfig, FabricNode, FabricResponse,
    FabricStats, FabricSubscription, RetryPolicy,
};
pub use merge::{merge_graphs, MergeOptions, MergeOutcome};
pub use metrics::{RequestTiming, RobustnessStats, TimingBreakdown};
pub use obligations::{graph_from_obligations, obligations_from_graph, StreamPolicyBuilder};
pub use proxy::{Proxy, ProxyStats};
pub use router::ShardedMap;
pub use server::{AccessResponse, DataServer, ServerConfig};
pub use shared_plan::{PlanCache, PlanId};
pub use user_query::{UserAggregation, UserQuery};
pub use warnings::{Warning, WarningKind, WarningSource};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::access_guard::AccessGuard;
    pub use crate::backend::{
        AccessControl, Backend, BackendHealth, BackendResponse, PolicyAdmin, StreamBackend,
        StreamBatch, Subscription, TaggedAuditEvent,
    };
    pub use crate::client::{ClientInterface, RequestResult};
    pub use crate::error::ExacmlError;
    pub use crate::fabric::{
        rendezvous_owner, DeliveredTuple, Fabric, FabricConfig, FabricNode, FabricResponse,
        FabricStats, FabricSubscription, RetryPolicy,
    };
    pub use crate::merge::{merge_graphs, MergeOptions, MergeOutcome};
    pub use crate::metrics::{RequestTiming, RobustnessStats, TimingBreakdown};
    pub use crate::obligations::{
        graph_from_obligations, obligations_from_graph, StreamPolicyBuilder,
    };
    pub use crate::proxy::{Proxy, ProxyStats};
    pub use crate::server::{AccessResponse, DataServer, ServerConfig};
    pub use crate::shared_plan::{PlanCache, PlanId};
    pub use crate::user_query::{UserAggregation, UserQuery};
    pub use crate::warnings::{Warning, WarningKind, WarningSource};
}
