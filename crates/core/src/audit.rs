//! Access audit trail.
//!
//! The paper's trust model assumes an honest cloud provider and names
//! "accountability mechanisms" as the primary next challenge (Section 6).
//! This module is a first step in that direction: an append-only, bounded
//! in-memory audit log of every access-control decision the data server
//! makes — grants, denials, conflicts, reuse of existing handles, and policy
//! life-cycle events — that owners can query per subject, per stream or per
//! policy.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{SystemTime, UNIX_EPOCH};

/// The kind of event recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditEventKind {
    /// A request was granted and a new query graph deployed.
    Granted,
    /// A request was answered with an already-live handle.
    Reused,
    /// The PDP denied the request (or nothing applied).
    Denied,
    /// The request conflicted with the policy (NR/PR) and was not deployed.
    Conflict,
    /// The requester already held a different live query on the stream.
    MultipleAccessBlocked,
    /// A policy was loaded.
    PolicyLoaded,
    /// A policy was removed (its graphs withdrawn).
    PolicyRemoved,
    /// A policy was updated (its graphs withdrawn).
    PolicyUpdated,
    /// A consumer (or the server) released a live access.
    AccessReleased,
}

impl AuditEventKind {
    /// Every kind, in declaration order. A journal that serializes kinds by
    /// name (the serde derive uses the *variant* names, e.g. `"Granted"`)
    /// can parse them back by scanning this list.
    pub const ALL: [AuditEventKind; 9] = [
        AuditEventKind::Granted,
        AuditEventKind::Reused,
        AuditEventKind::Denied,
        AuditEventKind::Conflict,
        AuditEventKind::MultipleAccessBlocked,
        AuditEventKind::PolicyLoaded,
        AuditEventKind::PolicyRemoved,
        AuditEventKind::PolicyUpdated,
        AuditEventKind::AccessReleased,
    ];
}

impl AuditEventKind {
    /// Parse a kind from its display name (`granted`,
    /// `multiple-access-blocked`, …) — what scenario-pack oracles and other
    /// data-driven audit checks use.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AuditEventKind> {
        AuditEventKind::ALL.into_iter().find(|kind| kind.to_string() == name)
    }
}

impl std::fmt::Display for AuditEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AuditEventKind::Granted => "granted",
            AuditEventKind::Reused => "reused",
            AuditEventKind::Denied => "denied",
            AuditEventKind::Conflict => "conflict",
            AuditEventKind::MultipleAccessBlocked => "multiple-access-blocked",
            AuditEventKind::PolicyLoaded => "policy-loaded",
            AuditEventKind::PolicyRemoved => "policy-removed",
            AuditEventKind::PolicyUpdated => "policy-updated",
            AuditEventKind::AccessReleased => "access-released",
        };
        f.write_str(s)
    }
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Monotonically increasing sequence number.
    pub sequence: u64,
    /// Wall-clock timestamp (milliseconds since the Unix epoch).
    pub timestamp_ms: u64,
    /// What happened.
    pub kind: AuditEventKind,
    /// The requesting subject, when applicable.
    pub subject: Option<String>,
    /// The stream involved, when applicable.
    pub stream: Option<String>,
    /// The policy involved, when applicable.
    pub policy_id: Option<String>,
    /// Free-form detail (e.g. the warning list or the denial reason).
    pub detail: String,
}

/// A bounded, append-only audit log.
#[derive(Debug)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
    capacity: usize,
    next_sequence: u64,
    dropped: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::with_capacity(10_000)
    }
}

impl AuditLog {
    /// A log keeping at most `capacity` most-recent events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        AuditLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            next_sequence: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest one if the log is full.
    pub fn record(
        &mut self,
        kind: AuditEventKind,
        subject: Option<&str>,
        stream: Option<&str>,
        policy_id: Option<&str>,
        detail: impl Into<String>,
    ) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(AuditEvent {
            sequence,
            timestamp_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            kind,
            subject: subject.map(str::to_string),
            stream: stream.map(str::to_string),
            policy_id: policy_id.map(str::to_string),
            detail: detail.into(),
        });
        sequence
    }

    /// Recovery hook: replace the log's contents with journaled events,
    /// preserving their original sequence numbers and timestamps. Only the
    /// `capacity` most-recent events are retained (older ones count as
    /// dropped, as if they had been evicted live); new recordings continue
    /// after the highest restored sequence number.
    pub fn restore(&mut self, mut events: Vec<AuditEvent>) {
        self.next_sequence =
            events.iter().map(|e| e.sequence + 1).max().unwrap_or(0).max(self.next_sequence);
        let overflow = events.len().saturating_sub(self.capacity);
        self.dropped += overflow as u64;
        self.events = events.drain(overflow..).collect();
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because of the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<AuditEvent> {
        self.events.iter().cloned().collect()
    }

    /// Retained events with `sequence >= from`, oldest first. Incremental
    /// consumers (e.g. a journal tailing the log) pass one past the last
    /// sequence they saw and clone only the new tail, not the whole log.
    #[must_use]
    pub fn events_since(&self, from: u64) -> Vec<AuditEvent> {
        // Events are stored in sequence order; skip the already-seen prefix.
        let start = self.events.partition_point(|e| e.sequence < from);
        self.events.iter().skip(start).cloned().collect()
    }

    /// Retained events involving a subject.
    #[must_use]
    pub fn by_subject(&self, subject: &str) -> Vec<AuditEvent> {
        self.filtered(|e| e.subject.as_deref() == Some(subject))
    }

    /// Retained events involving a stream.
    #[must_use]
    pub fn by_stream(&self, stream: &str) -> Vec<AuditEvent> {
        self.filtered(|e| e.stream.as_deref() == Some(stream))
    }

    /// Retained events involving a policy.
    #[must_use]
    pub fn by_policy(&self, policy_id: &str) -> Vec<AuditEvent> {
        self.filtered(|e| e.policy_id.as_deref() == Some(policy_id))
    }

    /// Retained events of one kind.
    #[must_use]
    pub fn by_kind(&self, kind: AuditEventKind) -> Vec<AuditEvent> {
        self.filtered(|e| e.kind == kind)
    }

    fn filtered(&self, keep: impl Fn(&AuditEvent) -> bool) -> Vec<AuditEvent> {
        self.events.iter().filter(|e| keep(e)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_events() {
        let mut log = AuditLog::with_capacity(100);
        log.record(AuditEventKind::PolicyLoaded, None, Some("weather"), Some("p1"), "loaded");
        log.record(AuditEventKind::Granted, Some("LTA"), Some("weather"), Some("p1"), "ok");
        log.record(AuditEventKind::Denied, Some("EMA"), Some("weather"), None, "no policy");
        assert_eq!(log.len(), 3);
        assert_eq!(log.by_subject("LTA").len(), 1);
        assert_eq!(log.by_stream("weather").len(), 3);
        assert_eq!(log.by_policy("p1").len(), 2);
        assert_eq!(log.by_kind(AuditEventKind::Denied).len(), 1);
        // Sequence numbers increase monotonically.
        let events = log.events();
        assert!(events.windows(2).all(|w| w[1].sequence > w[0].sequence));
        assert!(events[0].kind.to_string().contains("policy-loaded"));
    }

    #[test]
    fn events_since_returns_only_the_new_tail() {
        let mut log = AuditLog::with_capacity(100);
        for i in 0..6 {
            log.record(AuditEventKind::Granted, Some(&format!("u{i}")), None, None, "");
        }
        assert_eq!(log.events_since(0).len(), 6);
        let tail = log.events_since(4);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].sequence, 4);
        assert!(log.events_since(6).is_empty());
        assert!(log.events_since(999).is_empty());
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut log = AuditLog::with_capacity(5);
        for i in 0..12 {
            log.record(AuditEventKind::Granted, Some(&format!("u{i}")), None, None, "");
        }
        assert_eq!(log.len(), 5);
        assert_eq!(log.dropped(), 7);
        // The oldest retained event is the 8th one recorded.
        assert_eq!(log.events()[0].subject.as_deref(), Some("u7"));
    }

    #[test]
    fn default_log_is_large_and_empty() {
        let log = AuditLog::default();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
