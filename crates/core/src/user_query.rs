//! Customised user queries (Figure 4a).
//!
//! "In many cases, the data stream accessible by the user may not directly
//! fit the actual requirement" (Section 3.1) — the LTA only cares about
//! downpours above 50 mm/h and wants coarser windows than the policy's
//! default. Rather than post-processing locally, the user attaches a
//! customised query to the access request; the PEP turns it into a query
//! graph and merges it with the policy-derived graph.
//!
//! The wire format is the XML document of Figure 4(a):
//!
//! ```xml
//! <UserQuery>
//!   <Stream name="weather"/>
//!   <Filter><FilterCondition>RainRate &gt; 50</FilterCondition></Filter>
//!   <Map><Attribute>RainRate</Attribute></Map>
//!   <Aggregation>
//!     <WindowType>tuple</WindowType>
//!     <WindowSize>10</WindowSize>
//!     <WindowStep>2</WindowStep>
//!     <Attribute>avg(RainRate)</Attribute>
//!   </Aggregation>
//! </UserQuery>
//! ```

use crate::error::ExacmlError;
use exacml_dsms::{AggFunc, AggSpec, QueryGraph, QueryGraphBuilder, WindowKind, WindowSpec};
use exacml_xacml::xml::{parse_document, XmlElement};
use serde::{Deserialize, Serialize};

/// The aggregation part of a user query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserAggregation {
    /// Requested sliding window.
    pub window: WindowSpec,
    /// Requested `function(attribute)` pairs.
    pub specs: Vec<AggSpec>,
}

/// A customised continuous query attached to an access request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserQuery {
    /// The stream the query targets.
    pub stream: String,
    /// Optional additional filter condition.
    pub filter: Option<String>,
    /// Optional projection (attribute names); empty means "no projection".
    pub map: Vec<String>,
    /// Optional window-based aggregation.
    pub aggregation: Option<UserAggregation>,
}

impl UserQuery {
    /// A query over a stream with no additional constraints.
    pub fn for_stream(stream: impl Into<String>) -> Self {
        UserQuery { stream: stream.into(), filter: None, map: Vec::new(), aggregation: None }
    }

    /// Add a filter condition (builder style).
    #[must_use]
    pub fn with_filter(mut self, condition: impl Into<String>) -> Self {
        self.filter = Some(condition.into());
        self
    }

    /// Add a projection (builder style).
    #[must_use]
    pub fn with_map<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.map = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Add an aggregation (builder style).
    #[must_use]
    pub fn with_aggregation(mut self, window: WindowSpec, specs: Vec<AggSpec>) -> Self {
        self.aggregation = Some(UserAggregation { window, specs });
        self
    }

    /// Whether the query adds no constraints at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filter.is_none() && self.map.is_empty() && self.aggregation.is_none()
    }

    /// Convert into an Aurora query graph (filter → map → aggregation).
    ///
    /// # Errors
    /// Fails when the filter condition does not parse.
    pub fn to_graph(&self) -> Result<QueryGraph, ExacmlError> {
        let mut builder = QueryGraphBuilder::on_stream(&self.stream);
        if let Some(cond) = &self.filter {
            builder = builder
                .filter_str(cond)
                .map_err(|e| ExacmlError::InvalidUserQuery(e.to_string()))?;
        }
        if !self.map.is_empty() {
            builder = builder.map(self.map.clone());
        }
        if let Some(agg) = &self.aggregation {
            builder = builder.aggregate(agg.window, agg.specs.clone());
        }
        Ok(builder.build())
    }

    /// A canonical fingerprint of the query, used by the proxy cache and by
    /// the single-access guard to recognise "the same query again".
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut parts = vec![format!("stream={}", self.stream.to_ascii_lowercase())];
        if let Some(f) = &self.filter {
            parts.push(format!("filter={}", f.split_whitespace().collect::<Vec<_>>().join(" ")));
        }
        if !self.map.is_empty() {
            let mut attrs: Vec<String> = self.map.iter().map(|a| a.to_ascii_lowercase()).collect();
            attrs.sort();
            parts.push(format!("map={}", attrs.join(",")));
        }
        if let Some(agg) = &self.aggregation {
            let mut specs: Vec<String> =
                agg.specs.iter().map(|s| s.encode().to_ascii_lowercase()).collect();
            specs.sort();
            parts.push(format!(
                "window={}:{}:{}:{}",
                agg.window.kind.keyword(),
                agg.window.size,
                agg.window.advance,
                specs.join(",")
            ));
        }
        parts.join(";")
    }

    /// Serialize to the Figure 4(a) XML form.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut root = XmlElement::new("UserQuery")
            .child(XmlElement::new("Stream").attr("name", self.stream.clone()));
        if let Some(filter) = &self.filter {
            root = root.child(
                XmlElement::new("Filter")
                    .child(XmlElement::new("FilterCondition").with_text(filter.clone())),
            );
        }
        if !self.map.is_empty() {
            let mut map_el = XmlElement::new("Map");
            for attr in &self.map {
                map_el = map_el.child(XmlElement::new("Attribute").with_text(attr.clone()));
            }
            root = root.child(map_el);
        }
        if let Some(agg) = &self.aggregation {
            let mut agg_el = XmlElement::new("Aggregation")
                .child(XmlElement::new("WindowType").with_text(agg.window.kind.keyword()))
                .child(XmlElement::new("WindowSize").with_text(agg.window.size.to_string()))
                .child(XmlElement::new("WindowStep").with_text(agg.window.advance.to_string()));
            for spec in &agg.specs {
                agg_el = agg_el.child(XmlElement::new("Attribute").with_text(format!(
                    "{}({})",
                    spec.function.keyword(),
                    spec.attribute
                )));
            }
            root = root.child(agg_el);
        }
        root.to_xml()
    }

    /// Parse the Figure 4(a) XML form.
    ///
    /// # Errors
    /// Returns [`ExacmlError::InvalidUserQuery`] describing the problem.
    pub fn from_xml(xml: &str) -> Result<UserQuery, ExacmlError> {
        let root = parse_document(xml).map_err(|e| ExacmlError::InvalidUserQuery(e.to_string()))?;
        if root.name != "UserQuery" {
            return Err(ExacmlError::InvalidUserQuery(format!(
                "expected <UserQuery>, found <{}>",
                root.name
            )));
        }
        let stream = root
            .first_child("Stream")
            .and_then(|s| s.attribute("name").map(str::to_string))
            .ok_or_else(|| ExacmlError::InvalidUserQuery("missing <Stream name=...>".into()))?;
        let mut query = UserQuery::for_stream(stream);

        if let Some(filter_el) = root.first_child("Filter") {
            let condition = filter_el
                .first_child("FilterCondition")
                .map(|c| c.text.clone())
                .filter(|t| !t.trim().is_empty())
                .ok_or_else(|| {
                    ExacmlError::InvalidUserQuery("<Filter> without <FilterCondition>".into())
                })?;
            query.filter = Some(condition);
        }
        if let Some(map_el) = root.first_child("Map") {
            let attrs: Vec<String> = map_el
                .children_named("Attribute")
                .iter()
                .map(|a| a.text.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if attrs.is_empty() {
                return Err(ExacmlError::InvalidUserQuery("<Map> lists no attributes".into()));
            }
            query.map = attrs;
        }
        if let Some(agg_el) = root.first_child("Aggregation") {
            let kind = agg_el
                .first_child("WindowType")
                .and_then(|t| WindowKind::from_keyword(t.text.trim()))
                .ok_or_else(|| {
                    ExacmlError::InvalidUserQuery("bad or missing <WindowType>".into())
                })?;
            let size: u64 = agg_el
                .first_child("WindowSize")
                .and_then(|t| t.text.trim().parse().ok())
                .ok_or_else(|| {
                    ExacmlError::InvalidUserQuery("bad or missing <WindowSize>".into())
                })?;
            let advance: u64 = agg_el
                .first_child("WindowStep")
                .and_then(|t| t.text.trim().parse().ok())
                .ok_or_else(|| {
                    ExacmlError::InvalidUserQuery("bad or missing <WindowStep>".into())
                })?;
            let mut specs = Vec::new();
            for attr_el in agg_el.children_named("Attribute") {
                let text = attr_el.text.trim();
                let spec = parse_func_attr(text).ok_or_else(|| {
                    ExacmlError::InvalidUserQuery(format!("bad aggregation attribute '{text}'"))
                })?;
                specs.push(spec);
            }
            if specs.is_empty() {
                return Err(ExacmlError::InvalidUserQuery(
                    "<Aggregation> lists no attributes".into(),
                ));
            }
            query.aggregation =
                Some(UserAggregation { window: WindowSpec { kind, size, advance }, specs });
        }
        Ok(query)
    }
}

/// Parse `func(attr)` (the Figure 4a spelling) or `attr:func` (the obligation
/// spelling) into an aggregation spec.
fn parse_func_attr(text: &str) -> Option<AggSpec> {
    if let Some(open) = text.find('(') {
        let close = text.rfind(')')?;
        let func = AggFunc::from_keyword(text[..open].trim())?;
        let attr = text[open + 1..close].trim();
        if attr.is_empty() {
            return None;
        }
        return Some(AggSpec::new(attr, func));
    }
    AggSpec::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4a_query() -> UserQuery {
        UserQuery::for_stream("weather")
            .with_filter("RainRate > 50")
            .with_map(["RainRate"])
            .with_aggregation(
                WindowSpec::tuples(10, 2),
                vec![AggSpec::new("RainRate", AggFunc::Avg)],
            )
    }

    #[test]
    fn builder_and_graph() {
        let q = figure4a_query();
        assert!(!q.is_empty());
        let g = q.to_graph().unwrap();
        assert_eq!(g.composition(), "FB+MB+AB");
        assert_eq!(g.stream, "weather");
        assert_eq!(g.aggregate().unwrap().window, WindowSpec::tuples(10, 2));
    }

    #[test]
    fn empty_query_builds_identity_graph() {
        let q = UserQuery::for_stream("weather");
        assert!(q.is_empty());
        assert!(q.to_graph().unwrap().is_empty());
    }

    #[test]
    fn bad_filter_is_reported() {
        let q = UserQuery::for_stream("weather").with_filter("rainrate >");
        assert!(matches!(q.to_graph(), Err(ExacmlError::InvalidUserQuery(_))));
    }

    #[test]
    fn xml_round_trip_matches_figure4a() {
        let q = figure4a_query();
        let xml = q.to_xml();
        assert!(xml.contains("<UserQuery>"));
        assert!(xml.contains("<Stream name=\"weather\"/>"));
        assert!(xml.contains("<FilterCondition>RainRate &gt; 50</FilterCondition>"));
        assert!(xml.contains("<WindowSize>10</WindowSize>"));
        assert!(xml.contains("avg(RainRate)"));
        let parsed = UserQuery::from_xml(&xml).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn xml_round_trip_for_partial_queries() {
        for q in [
            UserQuery::for_stream("gps"),
            UserQuery::for_stream("gps").with_filter("speed > 80"),
            UserQuery::for_stream("gps").with_map(["latitude", "longitude"]),
            UserQuery::for_stream("gps").with_aggregation(
                WindowSpec::time(60_000, 60_000),
                vec![AggSpec::new("speed", AggFunc::Max)],
            ),
        ] {
            let parsed = UserQuery::from_xml(&q.to_xml()).unwrap();
            assert_eq!(parsed, q);
        }
    }

    #[test]
    fn from_xml_rejects_malformed_documents() {
        assert!(UserQuery::from_xml("<NotAQuery/>").is_err());
        assert!(UserQuery::from_xml("<UserQuery/>").is_err());
        assert!(
            UserQuery::from_xml("<UserQuery><Stream name=\"s\"/><Filter/></UserQuery>").is_err()
        );
        assert!(
            UserQuery::from_xml("<UserQuery><Stream name=\"s\"/><Map></Map></UserQuery>").is_err()
        );
        assert!(UserQuery::from_xml(
            "<UserQuery><Stream name=\"s\"/><Aggregation><WindowType>tuple</WindowType></Aggregation></UserQuery>"
        )
        .is_err());
        assert!(UserQuery::from_xml(
            "<UserQuery><Stream name=\"s\"/><Aggregation><WindowType>tuple</WindowType>\
             <WindowSize>5</WindowSize><WindowStep>2</WindowStep>\
             <Attribute>median(x)</Attribute></Aggregation></UserQuery>"
        )
        .is_err());
        assert!(UserQuery::from_xml("not xml").is_err());
    }

    #[test]
    fn fingerprint_is_insensitive_to_attribute_order_and_case() {
        let a = UserQuery::for_stream("Weather").with_map(["b", "a"]);
        let b = UserQuery::for_stream("weather").with_map(["A", "B"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = UserQuery::for_stream("weather").with_map(["a"]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Aggregations participate too.
        let d = figure4a_query();
        let e = figure4a_query().with_aggregation(
            WindowSpec::tuples(11, 2),
            vec![AggSpec::new("RainRate", AggFunc::Avg)],
        );
        assert_ne!(d.fingerprint(), e.fingerprint());
    }

    #[test]
    fn both_aggregation_spellings_parse() {
        let xml = "<UserQuery><Stream name=\"s\"/><Aggregation><WindowType>tuple</WindowType>\
                   <WindowSize>5</WindowSize><WindowStep>2</WindowStep>\
                   <Attribute>avg(a)</Attribute><Attribute>b:max</Attribute></Aggregation></UserQuery>";
        let q = UserQuery::from_xml(xml).unwrap();
        let agg = q.aggregation.unwrap();
        assert_eq!(agg.specs.len(), 2);
        assert_eq!(agg.specs[0], AggSpec::new("a", AggFunc::Avg));
        assert_eq!(agg.specs[1], AggSpec::new("b", AggFunc::Max));
    }
}
