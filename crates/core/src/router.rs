//! Sharded broker routing tables.
//!
//! The routing broker fronts every fabric request with two control-plane
//! lookups: *stream → owner node* (placement) and *handle → owner node*
//! (routing). With a single `RwLock<HashMap>` those lookups serialise on one
//! lock word even though reads vastly outnumber writes and keys are
//! independent — the same bottleneck the engine's window store had before it
//! was sharded (PR 2). [`ShardedMap`] applies the identical cure at the
//! broker: keys are spread over a fixed power-of-two number of
//! independently locked shards by an FNV-1a hash, so concurrent lookups for
//! different streams (the common case: every client talks about its own
//! streams) touch different locks and control-plane throughput scales with
//! the number of nodes instead of collapsing onto one word.
//!
//! Invariants:
//! - A key lives on exactly one shard (pure function of the key's hash), so
//!   `insert`/`remove`/`get` for one key always agree on a lock and the map
//!   behaves exactly like a single `HashMap` under a single lock.
//! - Cross-shard operations (`len`, `retain`, `snapshot`) take the shard
//!   locks one at a time and therefore observe a *per-shard*-consistent
//!   view, which is all the broker needs (it never requires a global
//!   point-in-time snapshot — handles and placements are independently
//!   owned).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;

/// Number of shards. A small power of two: enough to spread 1–8 nodes'
/// worth of concurrent brokering, cheap enough to iterate for `retain`.
const SHARDS: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A hash map sharded over independently locked segments, used for the
/// broker's placement (stream → node) and routing (handle → node) tables.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap { shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }
}

impl<K: ShardKey + Eq + Hash, V: Clone> ShardedMap<K, V> {
    /// An empty sharded map.
    #[must_use]
    pub fn new() -> Self {
        ShardedMap::default()
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        &self.shards[(key.shard_hash() as usize) & (SHARDS - 1)]
    }

    /// Look up a key under its shard's read lock.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).read().get(key).cloned()
    }

    /// Whether the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Insert a key, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().insert(key, value)
    }

    /// Remove a key, returning its value if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().remove(key)
    }

    /// Total number of entries across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Keep only the entries for which the predicate holds, shard by shard.
    /// Returns how many entries were dropped.
    pub fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut guard = shard.write();
            let before = guard.len();
            guard.retain(|k, v| keep(k, v));
            dropped += before - guard.len();
        }
        dropped
    }

    /// Clone every entry out, shard by shard (per-shard consistent).
    #[must_use]
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.read().iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all
    }
}

/// How a key picks its shard. FNV-1a over a stable byte representation so
/// shard assignment is deterministic across processes and runs.
pub trait ShardKey {
    /// A stable hash of the key used only for shard selection.
    fn shard_hash(&self) -> u64;
}

/// FNV-1a over raw bytes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl ShardKey for String {
    fn shard_hash(&self) -> u64 {
        // Case-insensitive to match the broker's stream-name semantics:
        // "Weather" and "weather" are the same stream, so they must share a
        // shard as well as an owner.
        let mut hash = FNV_OFFSET;
        for byte in self.bytes() {
            hash ^= u64::from(byte.to_ascii_lowercase());
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

impl ShardKey for exacml_dsms::StreamHandle {
    fn shard_hash(&self) -> u64 {
        fnv1a(self.uri().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_hash_map() {
        let map: ShardedMap<String, usize> = ShardedMap::new();
        assert!(map.is_empty());
        for i in 0..200 {
            assert_eq!(map.insert(format!("stream{i}"), i), None);
        }
        assert_eq!(map.len(), 200);
        assert_eq!(map.get(&"stream7".to_string()), Some(7));
        assert_eq!(map.insert("stream7".to_string(), 70), Some(7));
        assert_eq!(map.remove(&"stream7".to_string()), Some(70));
        assert_eq!(map.get(&"stream7".to_string()), None);
        assert!(!map.contains_key(&"stream7".to_string()));
        assert_eq!(map.len(), 199);
    }

    #[test]
    fn retain_drops_across_shards() {
        let map: ShardedMap<String, usize> = ShardedMap::new();
        for i in 0..100 {
            map.insert(format!("s{i}"), i);
        }
        let dropped = map.retain(|_, v| v % 2 == 0);
        assert_eq!(dropped, 50);
        assert_eq!(map.len(), 50);
        assert!(map.snapshot().iter().all(|(_, v)| v % 2 == 0));
    }

    #[test]
    fn keys_spread_over_more_than_one_shard() {
        // Not a uniformity proof — just that the FNV split actually splits.
        let map: ShardedMap<String, ()> = ShardedMap::new();
        for i in 0..64 {
            map.insert(format!("stream{i}"), ());
        }
        let populated = map.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(populated > SHARDS / 2, "only {populated} shards populated");
    }

    #[test]
    fn case_insensitive_stream_keys_share_a_shard() {
        assert_eq!("Weather".to_string().shard_hash(), "weather".to_string().shard_hash());
    }
}
