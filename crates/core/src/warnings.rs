//! Empty-result (NR) and partial-result (PR) warnings.
//!
//! Section 3.5 of the paper: when the PEP merges the query graph derived from
//! the policy obligations with the graph derived from the user's customised
//! query, the combination may yield no tuples at all (**NR**) or silently
//! withhold tuples the user asked for (**PR**). Detecting this at request
//! time and telling the user "improves system efficiency by informing users
//! of empty/partial results due to policy and query mismatches".
//!
//! The filter-operator analysis lives in the predicate engine
//! ([`exacml_expr::check`]); this module adds the map and aggregation rules
//! and the warning data type shared by the whole framework.

use exacml_dsms::{AggregateOp, MapOp};
use exacml_expr::Verdict;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which operator pair produced the warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarningSource {
    /// Filter vs filter condition conflict.
    Filter,
    /// Map vs map attribute-set conflict.
    Map,
    /// Aggregation window / function conflict.
    Aggregate,
}

impl fmt::Display for WarningSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarningSource::Filter => f.write_str("filter"),
            WarningSource::Map => f.write_str("map"),
            WarningSource::Aggregate => f.write_str("aggregation"),
        }
    }
}

/// The severity of a warning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WarningKind {
    /// Partial result: some tuples matching the user query are withheld.
    PartialResult,
    /// Empty result: no tuple will ever be returned.
    EmptyResult,
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarningKind::PartialResult => f.write_str("PR"),
            WarningKind::EmptyResult => f.write_str("NR"),
        }
    }
}

/// A warning raised while merging the policy and user query graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Warning {
    /// PR or NR.
    pub kind: WarningKind,
    /// The operator pair that produced it.
    pub source: WarningSource,
    /// Human-readable explanation, suitable for returning to the user.
    pub detail: String,
}

impl Warning {
    /// A partial-result warning.
    pub fn partial(source: WarningSource, detail: impl Into<String>) -> Self {
        Warning { kind: WarningKind::PartialResult, source, detail: detail.into() }
    }

    /// An empty-result warning.
    pub fn empty(source: WarningSource, detail: impl Into<String>) -> Self {
        Warning { kind: WarningKind::EmptyResult, source, detail: detail.into() }
    }

    /// Convert a filter-analysis verdict into a warning (if any).
    #[must_use]
    pub fn from_filter_verdict(verdict: Verdict, detail: &str) -> Option<Warning> {
        match verdict {
            Verdict::Compatible => None,
            Verdict::Pr => Some(Warning::partial(WarningSource::Filter, detail)),
            Verdict::Nr => Some(Warning::empty(WarningSource::Filter, detail)),
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} operator: {}", self.kind, self.source, self.detail)
    }
}

/// Whether a set of warnings contains an empty-result warning.
#[must_use]
pub fn has_empty_result(warnings: &[Warning]) -> bool {
    warnings.iter().any(|w| w.kind == WarningKind::EmptyResult)
}

/// Whether a set of warnings contains a partial-result warning.
#[must_use]
pub fn has_partial_result(warnings: &[Warning]) -> bool {
    warnings.iter().any(|w| w.kind == WarningKind::PartialResult)
}

/// The map-operator NR/PR rule (Section 3.5):
/// with `S1` the policy's visible attributes and `S2` the user's requested
/// attributes — if `S1 ∩ S2 = ∅` alert NR, otherwise alert PR when
/// `S1 ≠ S2`.
#[must_use]
pub fn check_map_merge(policy: &MapOp, user: &MapOp) -> Option<Warning> {
    let policy_set: Vec<&str> = policy.attributes().iter().map(String::as_str).collect();
    let user_set: Vec<&str> = user.attributes().iter().map(String::as_str).collect();
    let intersection: Vec<&str> = user_set
        .iter()
        .copied()
        .filter(|a| policy_set.iter().any(|p| p.eq_ignore_ascii_case(a)))
        .collect();
    if intersection.is_empty() {
        return Some(Warning::empty(
            WarningSource::Map,
            format!(
                "none of the requested attributes [{}] is visible under the policy [{}]",
                user_set.join(", "),
                policy_set.join(", ")
            ),
        ));
    }
    let same_sets = policy_set.len() == user_set.len()
        && user_set.iter().all(|a| policy_set.iter().any(|p| p.eq_ignore_ascii_case(a)));
    if !same_sets {
        let hidden: Vec<&str> = user_set
            .iter()
            .copied()
            .filter(|a| !policy_set.iter().any(|p| p.eq_ignore_ascii_case(a)))
            .collect();
        return Some(Warning::partial(
            WarningSource::Map,
            if hidden.is_empty() {
                "the policy exposes attributes the query does not request".to_string()
            } else {
                format!("requested attributes [{}] are hidden by the policy", hidden.join(", "))
            },
        ));
    }
    None
}

/// The aggregation-operator NR/PR rules (Section 3.5), with `A1` from the
/// policy and `A2` from the user query:
///
/// 1. `A1.size > A2.size` → NR
/// 2. `A1.advancestep > A2.advancestep` → NR
/// 3. `A1.type ≠ A2.type` → NR
/// 4. different functions applied to the same attribute → NR
/// 5. attribute present in both with the same function → no alert
/// 6. all other cases (attribute requested but absent from the policy) → PR
#[must_use]
pub fn check_aggregate_merge(policy: &AggregateOp, user: &AggregateOp) -> Option<Warning> {
    if policy.window.kind != user.window.kind {
        return Some(Warning::empty(
            WarningSource::Aggregate,
            format!(
                "window types differ: policy uses {}, query asks for {}",
                policy.window.kind, user.window.kind
            ),
        ));
    }
    if policy.window.size > user.window.size {
        return Some(Warning::empty(
            WarningSource::Aggregate,
            format!(
                "policy window size {} exceeds requested size {}",
                policy.window.size, user.window.size
            ),
        ));
    }
    if policy.window.advance > user.window.advance {
        return Some(Warning::empty(
            WarningSource::Aggregate,
            format!(
                "policy advance step {} exceeds requested step {}",
                policy.window.advance, user.window.advance
            ),
        ));
    }

    let mut partial: Option<Warning> = None;
    for spec in &user.specs {
        match policy.specs.iter().find(|p| p.attribute.eq_ignore_ascii_case(&spec.attribute)) {
            Some(p) if p.function == spec.function => {}
            Some(p) => {
                return Some(Warning::empty(
                    WarningSource::Aggregate,
                    format!(
                        "attribute '{}' is aggregated with {} by the policy but {} was requested",
                        spec.attribute,
                        p.function.keyword(),
                        spec.function.keyword()
                    ),
                ));
            }
            None => {
                partial.get_or_insert_with(|| {
                    Warning::partial(
                        WarningSource::Aggregate,
                        format!(
                            "requested aggregation {}({}) is not offered by the policy",
                            spec.function.keyword(),
                            spec.attribute
                        ),
                    )
                });
            }
        }
    }
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use exacml_dsms::{AggFunc, AggSpec, WindowSpec};

    #[test]
    fn map_rules_from_paper() {
        let policy = MapOp::new(["samplingtime", "rainrate", "windspeed"]);
        // Identical sets → no warning.
        assert!(check_map_merge(&policy, &MapOp::new(["samplingtime", "rainrate", "windspeed"]))
            .is_none());
        // Disjoint sets → NR.
        let w = check_map_merge(&policy, &MapOp::new(["temperature"])).unwrap();
        assert_eq!(w.kind, WarningKind::EmptyResult);
        assert_eq!(w.source, WarningSource::Map);
        // Overlapping but different → PR.
        let w = check_map_merge(&policy, &MapOp::new(["rainrate", "temperature"])).unwrap();
        assert_eq!(w.kind, WarningKind::PartialResult);
        assert!(w.detail.contains("temperature"));
        // Subset requested (user asks for less) → still PR per the paper's
        // "alert PR if S1 != S2" rule.
        let w = check_map_merge(&policy, &MapOp::new(["rainrate"])).unwrap();
        assert_eq!(w.kind, WarningKind::PartialResult);
    }

    #[test]
    fn aggregate_rules_from_paper() {
        let policy = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg), AggSpec::new("windspeed", AggFunc::Max)],
        );
        // Coarser user window with a matching function → no warning.
        let user = AggregateOp::new(
            WindowSpec::tuples(10, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg)],
        );
        assert!(check_aggregate_merge(&policy, &user).is_none());
        // Rule 1: finer user window size → NR.
        let user = AggregateOp::new(
            WindowSpec::tuples(4, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg)],
        );
        assert_eq!(check_aggregate_merge(&policy, &user).unwrap().kind, WarningKind::EmptyResult);
        // Rule 2: finer advance step → NR.
        let user = AggregateOp::new(
            WindowSpec::tuples(5, 1),
            vec![AggSpec::new("rainrate", AggFunc::Avg)],
        );
        assert_eq!(check_aggregate_merge(&policy, &user).unwrap().kind, WarningKind::EmptyResult);
        // Rule 3: different window type → NR.
        let user =
            AggregateOp::new(WindowSpec::time(5, 2), vec![AggSpec::new("rainrate", AggFunc::Avg)]);
        assert_eq!(check_aggregate_merge(&policy, &user).unwrap().kind, WarningKind::EmptyResult);
        // Rule 4: different function on the same attribute → NR.
        let user = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![AggSpec::new("rainrate", AggFunc::Max)],
        );
        assert_eq!(check_aggregate_merge(&policy, &user).unwrap().kind, WarningKind::EmptyResult);
        // Rule 6: attribute not offered by the policy → PR.
        let user = AggregateOp::new(
            WindowSpec::tuples(5, 2),
            vec![AggSpec::new("rainrate", AggFunc::Avg), AggSpec::new("humidity", AggFunc::Avg)],
        );
        assert_eq!(check_aggregate_merge(&policy, &user).unwrap().kind, WarningKind::PartialResult);
    }

    #[test]
    fn warning_helpers() {
        let warnings = vec![
            Warning::partial(WarningSource::Map, "x"),
            Warning::empty(WarningSource::Filter, "y"),
        ];
        assert!(has_empty_result(&warnings));
        assert!(has_partial_result(&warnings));
        assert!(!has_empty_result(&warnings[..1]));
        assert!(warnings[0].to_string().contains("PR"));
        assert!(warnings[1].to_string().contains("NR"));
    }

    #[test]
    fn filter_verdict_conversion() {
        assert!(Warning::from_filter_verdict(Verdict::Compatible, "d").is_none());
        assert_eq!(
            Warning::from_filter_verdict(Verdict::Pr, "d").unwrap().kind,
            WarningKind::PartialResult
        );
        assert_eq!(
            Warning::from_filter_verdict(Verdict::Nr, "d").unwrap().kind,
            WarningKind::EmptyResult
        );
    }
}
