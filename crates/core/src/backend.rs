//! One backend API for every enforcement substrate.
//!
//! The paper describes a single enforcement model — XACML decisions compiled
//! into continuous queries on the stream engine — and this crate grows it
//! across deployment shapes: the in-process [`DataServer`], the N-node
//! brokering [`Fabric`], and whatever comes next (a persistent store, a real
//! network). This module is the one API they all speak, split into three
//! object-safe planes plus an umbrella trait:
//!
//! * [`StreamBackend`] — the data plane: register streams, push tuples,
//!   subscribe to granted handles;
//! * [`AccessControl`] — the request plane: the Section 3.2 workflow
//!   (`handle_request`) and explicit release;
//! * [`PolicyAdmin`] — the policy plane of Section 3.3: load / remove /
//!   update / count;
//! * [`Backend`] — the composition, adding the audit trail and deployment
//!   observability every backend must expose.
//!
//! Responses and errors are unified: every backend answers a request with a
//! [`BackendResponse`] (node identity + workflow response + brokering cost,
//! zero on a single server) and reports failures as [`ExacmlError`] — the
//! fabric's routing misses surface as [`ExacmlError::UnknownHandle`] exactly
//! like a withdrawn handle on a single server. Subscriptions are unified
//! behind [`Subscription`], which hides whether derived tuples arrive on an
//! in-process channel or through simulated links driven by a virtual clock.
//!
//! Scenario code written against `&dyn Backend` (or a generic
//! `B: Backend`) therefore runs unchanged on one node or N nodes; the
//! conformance suite in `tests/backend_conformance.rs` pins that promise.

use crate::audit::AuditEvent;
use crate::error::ExacmlError;
use crate::fabric::{DeliveredTuple, Fabric, FabricConfig, FabricSubscription};
use crate::metrics::RobustnessStats;
use crate::server::{AccessResponse, DataServer, ServerConfig};
use crate::user_query::UserQuery;
use exacml_dsms::{DsmsError, Schema, StreamEngine, StreamHandle, Tuple};
use exacml_simnet::NodeId;
use exacml_telemetry::TelemetrySnapshot;
use exacml_xacml::{Policy, Request};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// The answer every backend returns for a granted access request.
///
/// On a single [`DataServer`] the request is handled in-process:
/// `node` is [`NodeId::DataServer`] and `broker_network` is zero. Through a
/// [`Fabric`] the request is routed to the stream's owner shard and the
/// simulated broker → node round trip is charged on top.
#[derive(Debug, Clone)]
pub struct BackendResponse {
    /// The node that handled the request.
    pub node: NodeId,
    /// The node-local Section 3.2 workflow response.
    pub response: AccessResponse,
    /// The simulated brokering round trip charged on top (zero when the
    /// backend is a single in-process server).
    pub broker_network: Duration,
}

impl BackendResponse {
    /// End-to-end latency: node-local workflow plus the brokering hop.
    #[must_use]
    pub fn total_latency(&self) -> Duration {
        self.response.timing.total + self.broker_network
    }

    /// The granted stream handle.
    #[must_use]
    pub fn handle(&self) -> &StreamHandle {
        &self.response.handle
    }
}

/// An audit record tagged with the node that produced it.
///
/// A single server tags everything with [`NodeId::DataServer`]; a fabric
/// aggregates its node-local logs and tags each event with the owning
/// shard's [`NodeId::Server`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaggedAuditEvent {
    /// The node whose audit log recorded the event.
    pub node: NodeId,
    /// The record itself.
    pub event: AuditEvent,
}

/// A point-in-time health report for a backend, surfaced through
/// [`Backend::health`] so callers observe degradation *before* a mutation
/// fails — a sticky journal failure, replication falling behind, or dead
/// fabric nodes used to be discoverable only by tripping over the resulting
/// errors.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BackendHealth {
    /// Nodes the backend currently cannot serve from: declared dead,
    /// crashed and awaiting failover, or behind an active fault window.
    /// Empty on a healthy backend; always empty on a single server (its
    /// one node answering at all is what produced this report).
    pub degraded_nodes: Vec<NodeId>,
    /// The sticky journal failure, when the durability layer has refused
    /// further mutations (`None` when journaling is healthy or absent).
    /// On a replicated fabric, the first failed node's journal error.
    pub journal_failure: Option<String>,
    /// Journal records appended locally but not yet acknowledged by every
    /// replication peer (0 without replication).
    pub replication_lag_records: u64,
    /// Fault-tolerance counters: failovers, re-minted handles, replication
    /// batch acks/retries, broker retries.
    pub robustness: RobustnessStats,
}

impl BackendHealth {
    /// A report with nothing wrong (what non-durable single-node backends
    /// always answer).
    #[must_use]
    pub fn healthy() -> Self {
        BackendHealth::default()
    }

    /// Whether anything in the report needs operator attention: a degraded
    /// node, a sticky journal failure, or replication lag.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.degraded_nodes.is_empty()
            || self.journal_failure.is_some()
            || self.replication_lag_records > 0
    }
}

/// A subscription to a granted handle, independent of the backend shape.
///
/// A single server hands derived tuples straight to an in-process channel; a
/// fabric stamps them with simulated arrival times and releases them as its
/// virtual clock advances. [`Subscription::drain`] hides the difference:
/// it returns every tuple derived so far, advancing the fabric's virtual
/// clock until nothing remains in flight.
pub enum Subscription {
    /// In-process delivery straight off the engine's fan-out channel.
    Local(crossbeam::channel::Receiver<Tuple>),
    /// Delivery through the fabric's simulated links and virtual clock.
    Fabric(FabricSubscription),
}

impl Subscription {
    /// Every tuple derived so far. For a fabric subscription this advances
    /// the shared virtual clock until all in-flight deliveries have arrived,
    /// so the caller never has to know the backend simulates a network.
    pub fn drain(&mut self) -> Vec<Tuple> {
        self.drain_settled().into_iter().map(|d| d.tuple).collect()
    }

    /// Every delivery settled so far, **with** its arrival metadata: pull
    /// everything derived, then (on a fabric) advance the shared virtual
    /// clock until nothing remains in flight. In-process channels have no
    /// network to settle — each tuple reports zero latency — so callers
    /// flush in-flight delivery identically on every backend shape instead
    /// of matching on the enum to find a fabric.
    pub fn drain_settled(&mut self) -> Vec<DeliveredTuple> {
        match self {
            Subscription::Local(rx) => rx.try_iter().map(DeliveredTuple::in_process).collect(),
            Subscription::Fabric(sub) => sub.drain_settled(),
        }
    }

    /// Tuples already deliverable without advancing any clock (in-flight
    /// fabric tuples stay in flight).
    pub fn poll_now(&mut self) -> Vec<Tuple> {
        match self {
            Subscription::Local(rx) => rx.try_iter().collect(),
            Subscription::Fabric(sub) => sub.poll().into_iter().map(|d| d.tuple).collect(),
        }
    }

    /// The fabric-side view, when the backend is a fabric (for
    /// latency-sensitive callers that drive the virtual clock themselves).
    pub fn as_fabric_mut(&mut self) -> Option<&mut FabricSubscription> {
        match self {
            Subscription::Local(_) => None,
            Subscription::Fabric(sub) => Some(sub),
        }
    }
}

/// One stream's slice of a multi-stream ingest call: the unit
/// [`StreamBackend::push_batches`] routes. On a fabric, batches sharing an
/// owner node travel as **one** broker→node frame, which is what makes
/// batched routing amortise the per-hop latency sample.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    /// Target stream name.
    pub stream: String,
    /// Source tuples for that stream.
    pub tuples: Vec<Tuple>,
}

impl StreamBatch {
    /// A batch of tuples bound for one stream.
    #[must_use]
    pub fn new(stream: impl Into<String>, tuples: Vec<Tuple>) -> Self {
        StreamBatch { stream: stream.into(), tuples }
    }

    /// Approximate wire size of the batch: its tuples plus a small framing
    /// overhead for the stream name.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::approx_size_bytes).sum::<usize>() + self.stream.len() + 16
    }
}

/// The data plane: stream registration, ingest and delivery.
///
/// Implemented by [`DataServer`], [`Fabric`] and the bare
/// [`StreamEngine`] (for feeds that bypass access control, e.g. benches).
pub trait StreamBackend: Send + Sync {
    /// Register an input stream; returns the node the stream was placed on
    /// ([`NodeId::DataServer`] when the backend is a single server,
    /// [`NodeId::Dsms`] on a bare engine).
    ///
    /// # Errors
    /// Fails when the name is taken on the owner or the schema invalid.
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError>;

    /// Push one source tuple into a registered stream. Returns the number of
    /// derived tuples emitted on the owning node.
    ///
    /// # Errors
    /// Fails when the stream is unknown or the tuple malformed.
    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError>;

    /// Push a batch of source tuples, amortizing routing and shard locking
    /// over the whole batch. Returns the number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when the stream is unknown or any tuple malformed.
    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError>;

    /// Push batches for **several streams** in one call. Single-node
    /// backends apply them in order; a fabric groups them by owner node and
    /// ships one broker→node frame per `(node, call)` group, so producers
    /// feeding many streams pay one routed hop per node instead of one per
    /// stream. Returns the total number of derived tuples emitted.
    ///
    /// # Errors
    /// Fails when a stream is unknown or a tuple malformed; batches applied
    /// before the failing one stay applied (identical to issuing the same
    /// sequence of [`StreamBackend::push_batch`] calls).
    fn push_batches(&self, batches: Vec<StreamBatch>) -> Result<usize, ExacmlError> {
        let mut emitted = 0;
        for batch in batches {
            emitted += self.push_batch(&batch.stream, batch.tuples)?;
        }
        Ok(emitted)
    }

    /// Subscribe to the derived tuples behind a granted handle.
    ///
    /// # Errors
    /// [`ExacmlError::UnknownHandle`] when the handle was never granted here
    /// or its deployment is gone — on every backend.
    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError>;

    /// Whether a handle still points at a live deployment.
    fn handle_is_live(&self, handle: &StreamHandle) -> bool;
}

/// The request plane: the Section 3.2 workflow and explicit release.
pub trait AccessControl: Send + Sync {
    /// Handle one access request, optionally refined by a customised query.
    ///
    /// # Errors
    /// * [`ExacmlError::AccessDenied`] when the PDP does not permit,
    /// * [`ExacmlError::MultipleAccess`] when a different live query exists,
    /// * [`ExacmlError::ConflictDetected`] on blocking NR/PR warnings,
    /// * plus translation/merging/DSMS errors.
    fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError>;

    /// Release the access a subject holds on a stream, withdrawing the
    /// backing deployment. Returns `true` when something was released;
    /// unknown pairs and double releases are no-ops on every backend.
    fn release_access(&self, subject: &str, stream: &str) -> bool;
}

/// The policy plane of Section 3.3: load / remove / update / count.
pub trait PolicyAdmin: Send + Sync {
    /// Load a policy; returns the (simulated-network-inclusive) load time.
    /// On a fabric the policy is propagated to every node and the slowest
    /// node's time is returned.
    ///
    /// # Errors
    /// Fails when the policy is invalid or its id already loaded.
    fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError>;

    /// Load a policy from its XACML XML document.
    ///
    /// # Errors
    /// Fails when the document does not parse or the policy is invalid.
    fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError>;

    /// Remove a policy; every query graph it spawned is withdrawn wherever
    /// it lives. Returns the number of withdrawn deployments.
    ///
    /// # Errors
    /// Fails when the policy is unknown.
    fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError>;

    /// Replace a policy; graphs spawned by the old version are withdrawn.
    /// Returns the number of withdrawn deployments.
    ///
    /// # Errors
    /// Fails when the policy is unknown or the new version invalid.
    fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError>;

    /// Number of loaded policies (per node on a fabric — propagation keeps
    /// every node's store identical).
    fn policy_count(&self) -> usize;
}

/// A complete eXACML+ enforcement backend: data, request and policy planes
/// plus the audit trail and deployment observability.
///
/// Write scenarios against `&dyn Backend` (or a generic `B: Backend + ?Sized`)
/// and they run unchanged on a single [`DataServer`] or an N-node
/// [`Fabric`]; `tests/backend_conformance.rs` pins the shared semantics.
pub trait Backend: StreamBackend + AccessControl + PolicyAdmin {
    /// A short human-readable name for diagnostics ("data-server",
    /// "fabric-3", …).
    fn backend_kind(&self) -> String;

    /// Number of live deployments across the whole backend.
    fn live_deployments(&self) -> usize;

    /// Number of live shared operator plans across the whole backend —
    /// the distinct compiled subgraphs actually executing. With plan
    /// sharing enabled (the default), N overlapping grants on one stream
    /// count one plan here while [`Backend::live_deployments`] stays at
    /// one too; with sharing disabled both counters grow per grant.
    fn live_plans(&self) -> usize;

    /// The audit trail, each event tagged with the node that recorded it.
    /// On a fabric the node-local logs are aggregated and interleaved by
    /// wall-clock timestamp.
    fn audit_events(&self) -> Vec<TaggedAuditEvent>;

    /// Audit events involving one subject.
    fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent>;

    /// The audit trail folded into per-kind counts (keyed by the kind's
    /// display name, see [`crate::AuditEventKind`]) — the oracle hook
    /// scenario packs check their audit invariants against. Counts span the
    /// whole backend; on a fabric, policy-lifecycle kinds therefore count
    /// once per node while decision kinds count once per decision.
    fn audit_kind_counts(&self) -> std::collections::BTreeMap<String, u64> {
        let mut counts = std::collections::BTreeMap::new();
        for tagged in self.audit_events() {
            *counts.entry(tagged.event.kind.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// A point-in-time health report: degraded nodes, sticky journal
    /// failures, replication lag and the fault-tolerance counters. The
    /// default implementation reports a perfectly healthy backend, which is
    /// correct for the in-memory single-node shapes; backends with a
    /// durability or replication story override it.
    fn health(&self) -> BackendHealth {
        BackendHealth::healthy()
    }

    /// A point-in-time telemetry snapshot: event counters and per-stage
    /// latency histograms (see `docs/OBSERVABILITY.md` for the stage
    /// taxonomy). Multi-node shapes answer an aggregate whose `nodes` list
    /// carries one tagged sub-snapshot per node. The default is an empty
    /// snapshot, correct for shapes that carry no registry.
    fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }
}

/// Quick constructors so a backend swap is one line:
/// `<dyn Backend>::local()` vs `<dyn Backend>::fabric(3)`. The facade
/// crate's `BackendBuilder` offers the configurable version.
impl dyn Backend {
    /// A single in-process data server on loopback links.
    #[must_use]
    pub fn local() -> Arc<dyn Backend> {
        Arc::new(DataServer::new(ServerConfig::local()))
    }

    /// An N-node brokering fabric on loopback links.
    #[must_use]
    pub fn fabric(nodes: usize) -> Arc<dyn Backend> {
        Arc::new(Fabric::new(FabricConfig::local(nodes)))
    }

    /// An N-node fabric on the paper's coordinator/broker/server testbed.
    #[must_use]
    pub fn paper_testbed(nodes: usize) -> Arc<dyn Backend> {
        Arc::new(Fabric::new(FabricConfig::paper_testbed(nodes)))
    }
}

/// Map the engine's "unknown handle" to the unified error variant so every
/// backend reports a dead or foreign handle the same way.
fn unify_unknown_handle(error: ExacmlError, handle: &StreamHandle) -> ExacmlError {
    match error {
        ExacmlError::Dsms(DsmsError::UnknownHandle(_)) => {
            ExacmlError::UnknownHandle(handle.uri().to_string())
        }
        other => other,
    }
}

// --- DataServer: the single-node backend ----------------------------------

impl StreamBackend for DataServer {
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        DataServer::register_stream(self, name, schema)?;
        Ok(NodeId::DataServer)
    }

    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        DataServer::push(self, stream, tuple)
    }

    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        DataServer::push_batch(self, stream, tuples)
    }

    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError> {
        DataServer::subscribe(self, handle)
            .map(Subscription::Local)
            .map_err(|e| unify_unknown_handle(e, handle))
    }

    fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        DataServer::handle_is_live(self, handle)
    }
}

impl AccessControl for DataServer {
    fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        let response = DataServer::handle_request(self, request, user_query)?;
        Ok(BackendResponse { node: NodeId::DataServer, response, broker_network: Duration::ZERO })
    }

    fn release_access(&self, subject: &str, stream: &str) -> bool {
        DataServer::release_access(self, subject, stream)
    }
}

impl PolicyAdmin for DataServer {
    fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        DataServer::load_policy(self, policy)
    }

    fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        DataServer::load_policy_xml(self, xml)
    }

    fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        DataServer::remove_policy(self, policy_id)
    }

    fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        DataServer::update_policy(self, policy)
    }

    fn policy_count(&self) -> usize {
        DataServer::policy_count(self)
    }
}

impl Backend for DataServer {
    fn backend_kind(&self) -> String {
        "data-server".to_string()
    }

    fn live_deployments(&self) -> usize {
        DataServer::live_deployments(self)
    }

    fn live_plans(&self) -> usize {
        DataServer::plan_count(self)
    }

    fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        DataServer::audit_events(self)
            .into_iter()
            .map(|event| TaggedAuditEvent { node: NodeId::DataServer, event })
            .collect()
    }

    fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        DataServer::audit_events_for_subject(self, subject)
            .into_iter()
            .map(|event| TaggedAuditEvent { node: NodeId::DataServer, event })
            .collect()
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry_registry().snapshot_tagged("data-server")
    }
}

// --- Fabric: the N-node backend --------------------------------------------

impl StreamBackend for Fabric {
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        Fabric::register_stream(self, name, schema)
    }

    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        Fabric::push(self, stream, tuple)
    }

    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        Fabric::push_batch(self, stream, tuples)
    }

    fn push_batches(&self, batches: Vec<StreamBatch>) -> Result<usize, ExacmlError> {
        Fabric::push_batches(self, batches)
    }

    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError> {
        Fabric::subscribe(self, handle).map(Subscription::Fabric)
    }

    fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        Fabric::handle_is_live(self, handle)
    }
}

impl AccessControl for Fabric {
    fn handle_request(
        &self,
        request: &Request,
        user_query: Option<&UserQuery>,
    ) -> Result<BackendResponse, ExacmlError> {
        Fabric::handle_request(self, request, user_query)
    }

    fn release_access(&self, subject: &str, stream: &str) -> bool {
        Fabric::release_access(self, subject, stream)
    }
}

impl PolicyAdmin for Fabric {
    fn load_policy(&self, policy: Policy) -> Result<Duration, ExacmlError> {
        Fabric::load_policy(self, policy)
    }

    fn load_policy_xml(&self, xml: &str) -> Result<Duration, ExacmlError> {
        Fabric::load_policy_xml(self, xml)
    }

    fn remove_policy(&self, policy_id: &str) -> Result<usize, ExacmlError> {
        Fabric::remove_policy(self, policy_id)
    }

    fn update_policy(&self, policy: Policy) -> Result<usize, ExacmlError> {
        Fabric::update_policy(self, policy)
    }

    fn policy_count(&self) -> usize {
        Fabric::policy_count(self)
    }
}

impl Backend for Fabric {
    fn backend_kind(&self) -> String {
        format!("fabric-{}", self.nodes().len())
    }

    fn live_deployments(&self) -> usize {
        Fabric::live_deployments(self)
    }

    fn live_plans(&self) -> usize {
        Fabric::live_plans(self)
    }

    fn audit_events(&self) -> Vec<TaggedAuditEvent> {
        Fabric::audit_events(self)
    }

    fn audit_events_for_subject(&self, subject: &str) -> Vec<TaggedAuditEvent> {
        Fabric::audit_events_for_subject(self, subject)
    }

    fn health(&self) -> BackendHealth {
        BackendHealth {
            degraded_nodes: self.degraded_nodes(),
            journal_failure: None,
            replication_lag_records: 0,
            robustness: self.robustness(),
        }
    }

    fn telemetry(&self) -> TelemetrySnapshot {
        Fabric::telemetry(self)
    }
}

// --- StreamEngine: the bare data plane (no access control) -----------------

impl StreamBackend for StreamEngine {
    fn register_stream(&self, name: &str, schema: Schema) -> Result<NodeId, ExacmlError> {
        StreamEngine::register_stream(self, name, schema)?;
        Ok(NodeId::Dsms)
    }

    fn push(&self, stream: &str, tuple: Tuple) -> Result<usize, ExacmlError> {
        StreamEngine::push(self, stream, tuple).map_err(ExacmlError::from)
    }

    fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<usize, ExacmlError> {
        StreamEngine::push_batch(self, stream, tuples).map_err(ExacmlError::from)
    }

    fn subscribe(&self, handle: &StreamHandle) -> Result<Subscription, ExacmlError> {
        StreamEngine::subscribe(self, handle)
            .map(Subscription::Local)
            .map_err(|e| unify_unknown_handle(ExacmlError::from(e), handle))
    }

    fn handle_is_live(&self, handle: &StreamHandle) -> bool {
        self.catalog().handle_is_live(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligations::StreamPolicyBuilder;
    use exacml_dsms::Value;

    fn weather_tuple(schema: &Arc<Schema>, i: i64, rain: f64) -> Tuple {
        Tuple::builder_shared(schema)
            .set("samplingtime", Value::Timestamp(i * 30_000))
            .set("rainrate", rain)
            .finish_with_defaults()
    }

    /// One scenario, written once against `&dyn Backend`, exercised by both
    /// backend shapes (the full matrix lives in
    /// `tests/backend_conformance.rs`).
    fn grant_stream_release(backend: &dyn Backend) {
        let node = backend.register_stream("weather", Schema::weather_example()).unwrap();
        assert!(matches!(node, NodeId::DataServer | NodeId::Server(_)));
        backend
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        assert_eq!(backend.policy_count(), 1);

        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert_eq!(granted.node, node);
        assert!(backend.handle_is_live(granted.handle()));
        let mut subscription = backend.subscribe(granted.handle()).unwrap();

        let schema = Schema::weather_example().shared();
        let batch: Vec<Tuple> = (0..10).map(|i| weather_tuple(&schema, i, 10.0)).collect();
        assert_eq!(backend.push_batch("weather", batch).unwrap(), 10);
        assert_eq!(backend.push("weather", weather_tuple(&schema, 10, 1.0)).unwrap(), 0);
        assert_eq!(subscription.drain().len(), 10);

        assert!(backend.release_access("LTA", "weather"));
        assert!(!backend.release_access("LTA", "weather"));
        assert!(!backend.handle_is_live(granted.handle()));
        assert!(matches!(backend.subscribe(granted.handle()), Err(ExacmlError::UnknownHandle(_))));
        assert_eq!(backend.remove_policy("p").unwrap(), 0);
        assert_eq!(backend.policy_count(), 0);
    }

    #[test]
    fn the_same_scenario_runs_on_both_backend_shapes() {
        let local = <dyn Backend>::local();
        assert_eq!(local.backend_kind(), "data-server");
        grant_stream_release(local.as_ref());

        let fabric = <dyn Backend>::fabric(3);
        assert_eq!(fabric.backend_kind(), "fabric-3");
        grant_stream_release(fabric.as_ref());
    }

    #[test]
    fn bare_engine_speaks_the_data_plane() {
        let engine = StreamEngine::new();
        let backend: &dyn StreamBackend = &engine;
        assert_eq!(
            backend.register_stream("weather", Schema::weather_example()).unwrap(),
            NodeId::Dsms
        );
        let deployment = engine.deploy(&exacml_dsms::QueryGraph::identity("weather")).unwrap();
        let schema = Schema::weather_example().shared();
        assert_eq!(backend.push("weather", weather_tuple(&schema, 0, 1.0)).unwrap(), 1);
        assert_eq!(
            backend
                .push_batch("weather", (1..5).map(|i| weather_tuple(&schema, i, 2.0)).collect())
                .unwrap(),
            4
        );
        let mut subscription = backend.subscribe(&deployment.output_handle).unwrap();
        assert!(backend.handle_is_live(&deployment.output_handle));
        assert_eq!(backend.push("weather", weather_tuple(&schema, 5, 3.0)).unwrap(), 1);
        assert_eq!(subscription.drain().len(), 1);
        engine.withdraw(deployment.id).unwrap();
        assert!(matches!(
            backend.subscribe(&deployment.output_handle),
            Err(ExacmlError::UnknownHandle(_))
        ));
    }

    #[test]
    fn unified_response_exposes_handle_and_latency() {
        let backend = <dyn Backend>::paper_testbed(2);
        backend.register_stream("weather", Schema::weather_example()).unwrap();
        backend
            .load_policy(
                StreamPolicyBuilder::new("p", "weather")
                    .subject("LTA")
                    .filter("rainrate > 5")
                    .build(),
            )
            .unwrap();
        let granted = backend.handle_request(&Request::subscribe("LTA", "weather"), None).unwrap();
        assert!(granted.broker_network > Duration::ZERO);
        assert!(granted.total_latency() >= granted.broker_network);
        assert!(granted.handle().uri().starts_with("exacml://"));
    }
}
