//! The client interface.
//!
//! The last entity of Figure 3: the data consumer's library. It sends access
//! requests (optionally with a customised query) through the proxy, adds the
//! client↔proxy network hop to the measured response time, and offers the
//! *direct-query* path used as the evaluation baseline — a StreamSQL script
//! sent straight to the DSMS with no access control at all.

use crate::error::ExacmlError;
use crate::metrics::RequestTiming;
use crate::proxy::Proxy;
use crate::server::AccessResponse;
use crate::user_query::UserQuery;
use exacml_dsms::StreamHandle;
use exacml_simnet::NodeId;
use exacml_xacml::Request;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Result of a client request.
pub type RequestResult = Result<AccessResponse, ExacmlError>;

/// The client interface entity.
pub struct ClientInterface {
    proxy: Arc<Proxy>,
    rng: Mutex<StdRng>,
}

impl ClientInterface {
    /// A client talking to the given proxy.
    #[must_use]
    pub fn new(proxy: Arc<Proxy>) -> Self {
        let seed = proxy.server().config().seed.wrapping_add(2);
        ClientInterface { proxy, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// The proxy this client talks to.
    #[must_use]
    pub fn proxy(&self) -> &Arc<Proxy> {
        &self.proxy
    }

    /// Request access to a stream, optionally refined by a customised query.
    /// The returned timing includes every hop: client ↔ proxy ↔ data server
    /// ↔ DSMS.
    ///
    /// # Errors
    /// Propagates denial, conflict and substrate errors.
    pub fn request_access(
        &self,
        subject: &str,
        stream: &str,
        user_query: Option<&UserQuery>,
    ) -> RequestResult {
        let started = Instant::now();
        let request = Request::subscribe(subject, stream);
        // Client → proxy hop: the request (and query) out, the handle back.
        let request_bytes = exacml_xacml::xml::write_request(&request).len()
            + user_query.map_or(0, |q| q.to_xml().len());
        let network = {
            let mut rng = self.rng.lock();
            self.proxy.server().topology().round_trip(
                NodeId::Client,
                NodeId::Proxy,
                request_bytes,
                128,
                &mut *rng,
            )
        };
        let mut response = self.proxy.request(&request, user_query)?;
        response.timing.network += network;
        response.timing.total = started.elapsed() + response.timing.network;
        Ok(response)
    }

    /// The direct-query baseline: send a StreamSQL script straight to the
    /// DSMS, bypassing the whole access-control stack (Section 4.2's
    /// "direct-query system").
    ///
    /// # Errors
    /// Fails when the script does not parse or cannot be deployed.
    pub fn direct_query(&self, script: &str) -> Result<(StreamHandle, RequestTiming), ExacmlError> {
        let started = Instant::now();
        let (handle, mut timing) = self.proxy.server().direct_deploy(script)?;
        timing.total = started.elapsed() + timing.network;
        Ok((handle, timing))
    }

    /// Release the access this subject holds on a stream (so another
    /// customised query can be issued later).
    pub fn release(&self, subject: &str, stream: &str) -> bool {
        self.proxy.server().release_access(subject, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligations::StreamPolicyBuilder;
    use crate::server::{DataServer, ServerConfig};
    use exacml_dsms::{streamsql, QueryGraphBuilder, Schema};

    fn client_setup() -> ClientInterface {
        let server = Arc::new(DataServer::new(ServerConfig::local()));
        server.register_stream("weather", Schema::weather_example()).unwrap();
        let policy = StreamPolicyBuilder::new("weather-lta", "weather")
            .subject("LTA")
            .filter("rainrate > 5")
            .build();
        server.load_policy(policy).unwrap();
        ClientInterface::new(Arc::new(Proxy::new(server)))
    }

    #[test]
    fn end_to_end_access_through_proxy() {
        let client = client_setup();
        let response = client.request_access("LTA", "weather", None).unwrap();
        assert!(response.handle.uri().starts_with("exacml://"));
        assert!(response.timing.total >= response.timing.network);
        // Second identical request is served from the proxy cache.
        let again = client.request_access("LTA", "weather", None).unwrap();
        assert!(again.reused);
        assert_eq!(client.proxy().stats().hits, 1);
    }

    #[test]
    fn denied_access_propagates() {
        let client = client_setup();
        assert!(matches!(
            client.request_access("EMA", "weather", None),
            Err(ExacmlError::AccessDenied { .. })
        ));
    }

    #[test]
    fn direct_query_baseline_works_without_policies() {
        let client = client_setup();
        let graph =
            QueryGraphBuilder::on_stream("weather").filter_str("windspeed > 20").unwrap().build();
        let script = streamsql::generate(&graph, &Schema::weather_example());
        let (handle, timing) = client.direct_query(&script).unwrap();
        assert!(client.proxy().server().handle_is_live(&handle));
        assert_eq!(timing.pdp, std::time::Duration::ZERO);
        assert!(timing.total >= timing.dsms);
    }

    #[test]
    fn release_allows_a_new_customised_query() {
        let client = client_setup();
        client.request_access("LTA", "weather", None).unwrap();
        let query = UserQuery::for_stream("weather").with_filter("rainrate > 50");
        assert!(matches!(
            client.request_access("LTA", "weather", Some(&query)),
            Err(ExacmlError::MultipleAccess { .. })
        ));
        assert!(client.release("LTA", "weather"));
        assert!(client.request_access("LTA", "weather", Some(&query)).is_ok());
    }
}
