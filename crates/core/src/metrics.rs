//! Per-request timing instrumentation.
//!
//! The evaluation (Section 4.2, Figures 6 and 7) decomposes the time taken to
//! fulfil an access request into: PDP decision time, query-graph
//! manipulation time (obligation translation + merging + NR/PR checking),
//! the time to ship the StreamSQL script to the DSMS and deploy it, and the
//! network time between the entities. [`RequestTiming`] carries that
//! decomposition for one request; [`TimingBreakdown`] aggregates many of
//! them into the statistics the figures plot (CDFs, means, percentiles).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The timing decomposition of one fulfilled request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestTiming {
    /// Time spent in the PDP (policy evaluation).
    pub pdp: Duration,
    /// Time spent manipulating query graphs (obligations → graph, user query
    /// → graph, merging, NR/PR checks, StreamSQL generation).
    pub query_graph: Duration,
    /// Time spent deploying on the DSMS (the "StreamBase" series of
    /// Figure 7).
    pub dsms: Duration,
    /// Simulated network time across entity hops.
    pub network: Duration,
    /// End-to-end response time observed by the client.
    pub total: Duration,
}

impl RequestTiming {
    /// The part of the total not attributed to any specific component
    /// (marshalling, cache lookups, bookkeeping). Saturates at zero when
    /// the components sum past the measured total — each is measured by its
    /// own clock pair, so rounding can make them overshoot slightly; a
    /// Duration underflow panic on that path would take down the request.
    #[must_use]
    pub fn other(&self) -> Duration {
        self.total
            .saturating_sub(self.pdp)
            .saturating_sub(self.query_graph)
            .saturating_sub(self.dsms)
            .saturating_sub(self.network)
    }

    /// The fraction of the total spent on the network, the quantity the
    /// paper estimates at roughly two thirds.
    #[must_use]
    pub fn network_share(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.network.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Element-wise sum of two timings (used when a proxy adds its own hops
    /// on top of the server-side timing).
    #[must_use]
    pub fn merged_with(&self, other: &RequestTiming) -> RequestTiming {
        RequestTiming {
            pdp: self.pdp + other.pdp,
            query_graph: self.query_graph + other.query_graph,
            dsms: self.dsms + other.dsms,
            network: self.network + other.network,
            total: self.total + other.total,
        }
    }
}

/// Counters of the fault-tolerance machinery: how often the fabric broker
/// retried an unreachable node, how the WAL-shipping pipeline is keeping up,
/// and what failover has re-built so far. Snapshot-style (a point-in-time
/// copy of atomic counters), so it is `Copy` and cheap to report through
/// `Backend::health()` or a bench JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Dead-node ownership transfers completed (journal replayed on a peer).
    pub failovers_completed: u64,
    /// Handles re-minted at their recorded URIs during failovers.
    pub handles_reminted: u64,
    /// Replication batches shipped and acknowledged by a peer.
    pub replication_batches_acked: u64,
    /// Replication batch sends that hit a dropped link and were retried
    /// (or deferred to the next shipping round).
    pub replication_batches_retried: u64,
    /// Journal records appended locally but not yet acknowledged by every
    /// replication peer — the replication lag the shipping protocol bounds.
    pub replication_lag_records: u64,
    /// Broker→node hops that needed at least one retry before succeeding.
    pub broker_retries: u64,
}

impl RobustnessStats {
    /// Element-wise sum (used to aggregate per-node shippers fabric-wide).
    #[must_use]
    pub fn merged_with(&self, other: &RobustnessStats) -> RobustnessStats {
        RobustnessStats {
            failovers_completed: self.failovers_completed + other.failovers_completed,
            handles_reminted: self.handles_reminted + other.handles_reminted,
            replication_batches_acked: self.replication_batches_acked
                + other.replication_batches_acked,
            replication_batches_retried: self.replication_batches_retried
                + other.replication_batches_retried,
            replication_lag_records: self.replication_lag_records + other.replication_lag_records,
            broker_retries: self.broker_retries + other.broker_retries,
        }
    }
}

/// Aggregated statistics over many request timings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimingBreakdown {
    totals: Vec<f64>,
    pdp: Vec<f64>,
    query_graph: Vec<f64>,
    dsms: Vec<f64>,
    network: Vec<f64>,
}

impl TimingBreakdown {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        TimingBreakdown::default()
    }

    /// Record one request.
    pub fn record(&mut self, timing: &RequestTiming) {
        self.totals.push(timing.total.as_secs_f64());
        self.pdp.push(timing.pdp.as_secs_f64());
        self.query_graph.push(timing.query_graph.as_secs_f64());
        self.dsms.push(timing.dsms.as_secs_f64());
        self.network.push(timing.network.as_secs_f64());
    }

    /// Number of recorded requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// All recorded total response times, in seconds, in arrival order.
    #[must_use]
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// The per-component series (total, pdp, query-graph, dsms, network) for
    /// one request index — the rows Figure 7 plots.
    #[must_use]
    pub fn series_at(&self, index: usize) -> Option<(f64, f64, f64, f64, f64)> {
        if index >= self.totals.len() {
            return None;
        }
        Some((
            self.totals[index],
            self.pdp[index],
            self.query_graph[index],
            self.dsms[index],
            self.network[index],
        ))
    }

    /// The empirical CDF of total response times: `points` (x, F(x)) pairs
    /// with x in seconds — the curves of Figure 6.
    #[must_use]
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.totals.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut sorted = self.totals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
                (sorted[idx], q)
            })
            .collect()
    }

    /// Mean of a series in seconds.
    fn mean_of(series: &[f64]) -> f64 {
        if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<f64>() / series.len() as f64
        }
    }

    /// Mean total response time in seconds.
    #[must_use]
    pub fn mean_total(&self) -> f64 {
        Self::mean_of(&self.totals)
    }

    /// Mean PDP time in seconds.
    #[must_use]
    pub fn mean_pdp(&self) -> f64 {
        Self::mean_of(&self.pdp)
    }

    /// Mean query-graph time in seconds.
    #[must_use]
    pub fn mean_query_graph(&self) -> f64 {
        Self::mean_of(&self.query_graph)
    }

    /// Mean DSMS time in seconds.
    #[must_use]
    pub fn mean_dsms(&self) -> f64 {
        Self::mean_of(&self.dsms)
    }

    /// Mean network time in seconds.
    #[must_use]
    pub fn mean_network(&self) -> f64 {
        Self::mean_of(&self.network)
    }

    /// Standard deviation of the total response time in seconds.
    #[must_use]
    pub fn stddev_total(&self) -> f64 {
        if self.totals.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_total();
        let var = self.totals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / self.totals.len() as f64;
        var.sqrt()
    }

    /// A percentile of the total response time in seconds. `q` is clamped
    /// into [0.0, 1.0] — an out-of-range quantile (a caller-computed
    /// 1.0000001, a negative, or NaN) degrades to the nearest recorded
    /// sample instead of indexing out of bounds — and an empty breakdown
    /// answers 0.0.
    #[must_use]
    pub fn percentile_total(&self, q: f64) -> f64 {
        if self.totals.is_empty() {
            return 0.0;
        }
        let mut sorted = self.totals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(total_ms: u64, network_ms: u64) -> RequestTiming {
        RequestTiming {
            pdp: Duration::from_millis(1),
            query_graph: Duration::from_millis(2),
            dsms: Duration::from_millis(3),
            network: Duration::from_millis(network_ms),
            total: Duration::from_millis(total_ms),
        }
    }

    #[test]
    fn other_and_network_share() {
        let t = timing(20, 10);
        assert_eq!(t.other(), Duration::from_millis(4));
        assert!((t.network_share() - 0.5).abs() < 1e-12);
        assert_eq!(RequestTiming::default().network_share(), 0.0);
    }

    #[test]
    fn merged_with_adds_componentwise() {
        let a = timing(20, 10);
        let b = timing(5, 1);
        let m = a.merged_with(&b);
        assert_eq!(m.total, Duration::from_millis(25));
        assert_eq!(m.network, Duration::from_millis(11));
        assert_eq!(m.pdp, Duration::from_millis(2));
    }

    #[test]
    fn breakdown_statistics() {
        let mut b = TimingBreakdown::new();
        for total in [10u64, 20, 30, 40] {
            b.record(&timing(total, 5));
        }
        assert_eq!(b.len(), 4);
        assert!((b.mean_total() - 0.025).abs() < 1e-12);
        assert!((b.percentile_total(0.5) - 0.020).abs() < 1e-12);
        assert!((b.percentile_total(1.0) - 0.040).abs() < 1e-12);
        assert!(b.stddev_total() > 0.0);
        assert!((b.mean_pdp() - 0.001).abs() < 1e-12);
        assert_eq!(b.series_at(0).unwrap().0, 0.010);
        assert!(b.series_at(10).is_none());
    }

    #[test]
    fn percentile_clamps_out_of_range_quantiles_and_answers_empty() {
        assert_eq!(TimingBreakdown::new().percentile_total(0.5), 0.0);
        let mut b = TimingBreakdown::new();
        for total in [10u64, 20, 30, 40] {
            b.record(&timing(total, 5));
        }
        // Out-of-range quantiles degrade to the extremes, NaN to the min.
        assert!((b.percentile_total(1.5) - 0.040).abs() < 1e-12);
        assert!((b.percentile_total(-0.3) - 0.010).abs() < 1e-12);
        assert!((b.percentile_total(f64::NAN) - 0.010).abs() < 1e-12);
    }

    #[test]
    fn other_saturates_when_components_overshoot_the_total() {
        // Component clocks can sum past the separately measured total;
        // `other` must answer zero, not panic on Duration underflow.
        let t = RequestTiming {
            pdp: Duration::from_millis(8),
            query_graph: Duration::from_millis(8),
            dsms: Duration::from_millis(8),
            network: Duration::from_millis(8),
            total: Duration::from_millis(20),
        };
        assert_eq!(t.other(), Duration::ZERO);
        assert_eq!(RequestTiming::default().other(), Duration::ZERO);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut b = TimingBreakdown::new();
        for total in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 10] {
            b.record(&timing(total, 0));
        }
        let cdf = b.cdf(10);
        assert_eq!(cdf.len(), 10);
        for pair in cdf.windows(2) {
            assert!(pair[1].0 >= pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((cdf.last().unwrap().0 - 0.010).abs() < 1e-12);
        assert!(TimingBreakdown::new().cdf(10).is_empty());
    }
}
