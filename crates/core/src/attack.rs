//! The multiple-window reconstruction attack (Section 3.4).
//!
//! If a user were allowed to hold several aggregation windows over the same
//! stream simultaneously, they could recover the raw tuples the policy meant
//! to hide. Example 2 of the paper: with sum windows of sizes 3, 4, 5 and a
//! fixed advance step of 2, subtracting consecutive result streams yields the
//! individual elements `a3, a4, a5, ...` — everything except the first few
//! tuples.
//!
//! [`reconstruct_from_sums`] implements the general construction of the
//! paper's inductive proof (window sizes `N, N+1, ..., N+M` with advance
//! step `M` recover the original stream from the `N`-th tuple on), and
//! [`simulate_attack`] runs the whole attack end-to-end against the DSMS to
//! demonstrate the leak that the single-access guard
//! ([`crate::access_guard`]) prevents. The `leak_reconstruction` example and
//! the integration tests use it as the paper's Example 2 evidence.

use exacml_dsms::{
    AggFunc, AggSpec, QueryGraphBuilder, Schema, StreamEngine, Tuple, Value, WindowSpec,
};

/// Reconstruct raw stream values from the outputs of multiple sum windows.
///
/// `window_sums[i]` must hold the emissions of a sum-aggregation window of
/// size `base_size + i` (i = 0 ..= step), all with the same advance `step`
/// and all applied to the same stream from its first tuple. Following the
/// paper's notation, `base_size` is `N` and `step` is `M`; the return value
/// is the reconstructed `a_N, a_{N+1}, a_{N+2}, ...` (the original stream
/// minus its first `N` tuples).
#[must_use]
pub fn reconstruct_from_sums(window_sums: &[Vec<f64>], base_size: usize, step: usize) -> Vec<f64> {
    let _ = base_size; // kept for symmetry with the paper's statement
    if window_sums.len() < 2 || step == 0 {
        return Vec::new();
    }
    // T_i = S_i − S_{i−1}: the j-th entry isolates one original value from
    // the residue class (i − 1) mod `step`.
    let usable = window_sums.len().min(step + 1);
    let mut differences: Vec<Vec<f64>> = Vec::with_capacity(usable - 1);
    for i in 1..usable {
        let shorter = &window_sums[i - 1];
        let longer = &window_sums[i];
        let len = shorter.len().min(longer.len());
        differences.push((0..len).map(|j| longer[j] - shorter[j]).collect());
    }
    if differences.is_empty() {
        return Vec::new();
    }
    // Interleave T_1 ... T_M: emission j of T_i is a_{N + j·M + (i−1)}.
    let rounds = differences.iter().map(Vec::len).min().unwrap_or(0);
    let mut reconstructed = Vec::with_capacity(rounds * differences.len());
    for j in 0..rounds {
        for diff in &differences {
            reconstructed.push(diff[j]);
        }
    }
    reconstructed
}

/// The outcome of running the Example 2 attack end-to-end.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The values actually pushed into the stream.
    pub original: Vec<f64>,
    /// The values the attacker reconstructed.
    pub reconstructed: Vec<f64>,
    /// Index of the first original value the attacker recovered
    /// (the paper's `N`).
    pub first_recovered_index: usize,
}

impl AttackOutcome {
    /// Fraction of the hidden suffix (`a_N ..`) the attacker recovered
    /// exactly.
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        let suffix = &self.original[self.first_recovered_index.min(self.original.len())..];
        if suffix.is_empty() {
            return 0.0;
        }
        let matching = self
            .reconstructed
            .iter()
            .zip(suffix.iter())
            .filter(|(a, b)| (**a - **b).abs() < 1e-9)
            .count();
        matching as f64 / suffix.len() as f64
    }
}

/// Run the Section 3.4 attack against a real engine: deploy `step + 1` sum
/// windows of sizes `base_size ..= base_size + step` over one stream, push
/// `values`, collect the aggregated outputs and reconstruct the raw values.
///
/// This only succeeds because the engine itself enforces no single-access
/// rule — exactly the situation eXACML+'s access guard exists to prevent.
///
/// # Panics
/// Panics on engine errors; this is a demonstration/test helper, not
/// production API.
#[must_use]
pub fn simulate_attack(values: &[f64], base_size: u64, step: u64) -> AttackOutcome {
    let schema = Schema::from_pairs([
        ("samplingtime", exacml_dsms::DataType::Timestamp),
        ("a", exacml_dsms::DataType::Double),
    ]);
    let engine = StreamEngine::new();
    engine.register_stream("s", schema.clone()).expect("stream registration");

    let mut receivers = Vec::new();
    for extra in 0..=step {
        let graph = QueryGraphBuilder::on_stream("s")
            .aggregate(
                WindowSpec::tuples(base_size + extra, step),
                vec![AggSpec::new("a", AggFunc::Sum)],
            )
            .build();
        let deployment = engine.deploy(&graph).expect("deployment");
        receivers.push(engine.subscribe(&deployment.output_handle).expect("subscription"));
    }

    for (i, v) in values.iter().enumerate() {
        let tuple = Tuple::builder(&schema)
            .set("samplingtime", Value::Timestamp(i as i64))
            .set("a", *v)
            .finish()
            .expect("tuple construction");
        engine.push("s", tuple).expect("push");
    }

    let window_sums: Vec<Vec<f64>> = receivers
        .iter()
        .map(|rx| rx.try_iter().map(|t| t.values()[0].as_f64().unwrap_or(0.0)).collect())
        .collect();
    let reconstructed = reconstruct_from_sums(&window_sums, base_size as usize, step as usize);

    AttackOutcome {
        original: values.to_vec(),
        reconstructed,
        first_recovered_index: base_size as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example2_reconstruction() {
        // S = a0, a1, ..., with windows of sizes 3, 4, 5 and step 2:
        // S2 − S1 yields a3, a5, a7, ...; S3 − S2 yields a4, a6, a8, ...
        // Interleaving recovers a3, a4, a5, ... exactly as Example 2 claims.
        let values: Vec<f64> = (0..20).map(|i| f64::from(i) * 1.5 + 0.25).collect();
        let outcome = simulate_attack(&values, 3, 2);
        assert_eq!(outcome.first_recovered_index, 3);
        assert!(!outcome.reconstructed.is_empty());
        for (k, reconstructed) in outcome.reconstructed.iter().enumerate() {
            let original = values[3 + k];
            assert!(
                (reconstructed - original).abs() < 1e-9,
                "position {k}: reconstructed {reconstructed}, original {original}"
            );
        }
        assert!(outcome.recovery_rate() > 0.8);
    }

    #[test]
    fn reconstruction_matches_for_other_parameters() {
        // N = 4, M = 3 → windows of sizes 4, 5, 6, 7.
        let values: Vec<f64> = (0..30).map(|i| (f64::from(i) * 0.7).sin() * 10.0).collect();
        let outcome = simulate_attack(&values, 4, 3);
        for (k, reconstructed) in outcome.reconstructed.iter().enumerate() {
            assert!((reconstructed - values[4 + k]).abs() < 1e-9, "mismatch at {k}");
        }
    }

    #[test]
    fn single_window_cannot_reconstruct() {
        let sums = vec![vec![6.0, 15.0, 24.0]];
        assert!(reconstruct_from_sums(&sums, 3, 2).is_empty());
        assert!(reconstruct_from_sums(&[], 3, 2).is_empty());
        assert!(reconstruct_from_sums(&[vec![1.0], vec![2.0]], 3, 0).is_empty());
    }

    #[test]
    fn reconstruction_rate_is_high_even_for_random_like_data() {
        let values: Vec<f64> = (0..50).map(|i| f64::from((i * 7919 + 13) % 101) / 3.0).collect();
        let outcome = simulate_attack(&values, 5, 2);
        assert!(outcome.recovery_rate() > 0.8, "rate = {}", outcome.recovery_rate());
    }
}
