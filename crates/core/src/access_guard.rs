//! The single-access-per-(subject, stream) guard (Sections 3.2 and 3.4).
//!
//! Step 3 of the PEP workflow: "PEP checks that for the credentials included
//! in the request, no query is currently being applied to the same data
//! stream." Allowing multiple simultaneous aggregation windows would let the
//! requester reconstruct the raw stream (see [`crate::attack`]).
//!
//! A repeated request with the *same* customised query is harmless — the
//! attack needs *different* windows — so the guard answers such re-requests
//! with the already-granted handle instead of rejecting them; this also lets
//! the Zipf-distributed evaluation workload (many repeated popular requests)
//! run without spurious failures.

use crate::error::ExacmlError;
use crate::shared_plan::PlanId;
use exacml_dsms::{DeploymentId, StreamHandle};
use std::collections::HashMap;

/// What the guard decided about a new request.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardOutcome {
    /// No live access exists; the caller may deploy a new query graph and
    /// must then call [`AccessGuard::register`].
    Allowed,
    /// The same subject already holds the *same* query on this stream; reuse
    /// the existing handle instead of deploying again.
    Reuse {
        /// The handle granted earlier.
        handle: StreamHandle,
        /// The deployment behind it.
        deployment: DeploymentId,
        /// The shared plan the grant rides on.
        plan: PlanId,
    },
}

/// What was backing an access released from the guard: the caller retires
/// the per-grant handle and drops one plan reference (withdrawing the
/// deployment only when it was the last grant).
#[derive(Debug, Clone, PartialEq)]
pub struct ReleasedAccess {
    /// The per-grant handle the consumer held.
    pub handle: StreamHandle,
    /// The shared deployment behind it.
    pub deployment: DeploymentId,
    /// The shared plan the grant rode on.
    pub plan: PlanId,
}

/// One live access entry.
#[derive(Debug, Clone)]
struct ActiveAccess {
    fingerprint: String,
    handle: StreamHandle,
    deployment: DeploymentId,
    plan: PlanId,
}

/// Tracks which (subject, stream) pairs currently hold a live query.
#[derive(Debug, Default)]
pub struct AccessGuard {
    active: HashMap<(String, String), ActiveAccess>,
}

impl AccessGuard {
    /// An empty guard.
    #[must_use]
    pub fn new() -> Self {
        AccessGuard::default()
    }

    fn key(subject: &str, stream: &str) -> (String, String) {
        (subject.to_ascii_lowercase(), stream.to_ascii_lowercase())
    }

    /// Check whether `subject` may open a query with `fingerprint` on
    /// `stream`.
    ///
    /// # Errors
    /// Returns [`ExacmlError::MultipleAccess`] when the subject already holds
    /// a *different* live query on the stream.
    pub fn check(
        &self,
        subject: &str,
        stream: &str,
        fingerprint: &str,
    ) -> Result<GuardOutcome, ExacmlError> {
        match self.active.get(&Self::key(subject, stream)) {
            None => Ok(GuardOutcome::Allowed),
            Some(existing) if existing.fingerprint == fingerprint => Ok(GuardOutcome::Reuse {
                handle: existing.handle.clone(),
                deployment: existing.deployment,
                plan: existing.plan,
            }),
            Some(_) => Err(ExacmlError::MultipleAccess {
                subject: subject.to_string(),
                stream: stream.to_string(),
            }),
        }
    }

    /// Record a granted access.
    pub fn register(
        &mut self,
        subject: &str,
        stream: &str,
        fingerprint: impl Into<String>,
        handle: StreamHandle,
        deployment: DeploymentId,
        plan: PlanId,
    ) {
        self.active.insert(
            Self::key(subject, stream),
            ActiveAccess { fingerprint: fingerprint.into(), handle, deployment, plan },
        );
    }

    /// Release the access a subject holds on a stream (e.g. when the client
    /// disconnects or the policy is withdrawn). Returns what was backing it,
    /// if anything. Deliberately per-(subject, stream), never per
    /// deployment: under plan sharing one deployment backs many grants, and
    /// releasing by deployment would evict innocent co-sharers.
    pub fn release(&mut self, subject: &str, stream: &str) -> Option<ReleasedAccess> {
        self.active.remove(&Self::key(subject, stream)).map(|a| ReleasedAccess {
            handle: a.handle,
            deployment: a.deployment,
            plan: a.plan,
        })
    }

    /// Number of live accesses.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Whether a subject currently holds any access on a stream.
    #[must_use]
    pub fn is_active(&self, subject: &str, stream: &str) -> bool {
        self.active.contains_key(&Self::key(subject, stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(n: u64) -> StreamHandle {
        StreamHandle::mint("dsms", n)
    }

    #[test]
    fn first_access_is_allowed_and_then_tracked() {
        let mut guard = AccessGuard::new();
        assert_eq!(guard.check("LTA", "weather", "q1").unwrap(), GuardOutcome::Allowed);
        guard.register("LTA", "weather", "q1", handle(1), DeploymentId(1), PlanId(1));
        assert!(guard.is_active("LTA", "weather"));
        assert_eq!(guard.active_count(), 1);
    }

    #[test]
    fn same_query_again_reuses_the_existing_handle() {
        let mut guard = AccessGuard::new();
        guard.register("LTA", "weather", "q1", handle(7), DeploymentId(7), PlanId(2));
        match guard.check("LTA", "weather", "q1").unwrap() {
            GuardOutcome::Reuse { handle: h, deployment, plan } => {
                assert_eq!(h, handle(7));
                assert_eq!(deployment, DeploymentId(7));
                assert_eq!(plan, PlanId(2));
            }
            other => panic!("expected Reuse, got {other:?}"),
        }
    }

    #[test]
    fn different_query_on_same_stream_is_rejected() {
        let mut guard = AccessGuard::new();
        guard.register("LTA", "weather", "window-size-3", handle(1), DeploymentId(1), PlanId(0));
        // Example 2: the second, differently-sized window must be refused.
        let err = guard.check("LTA", "weather", "window-size-4").unwrap_err();
        assert!(matches!(err, ExacmlError::MultipleAccess { .. }));
    }

    #[test]
    fn different_subject_or_stream_is_independent() {
        let mut guard = AccessGuard::new();
        guard.register("LTA", "weather", "q1", handle(1), DeploymentId(1), PlanId(0));
        assert_eq!(guard.check("EMA", "weather", "q2").unwrap(), GuardOutcome::Allowed);
        assert_eq!(guard.check("LTA", "gps", "q2").unwrap(), GuardOutcome::Allowed);
    }

    #[test]
    fn keys_are_case_insensitive() {
        let mut guard = AccessGuard::new();
        guard.register("LTA", "Weather", "q1", handle(1), DeploymentId(1), PlanId(0));
        assert!(guard.is_active("lta", "weather"));
        assert!(guard.check("lta", "WEATHER", "q2").is_err());
    }

    #[test]
    fn release_frees_the_slot_and_reports_what_backed_it() {
        let mut guard = AccessGuard::new();
        guard.register("LTA", "weather", "q1", handle(1), DeploymentId(1), PlanId(9));
        assert_eq!(
            guard.release("LTA", "weather"),
            Some(ReleasedAccess {
                handle: handle(1),
                deployment: DeploymentId(1),
                plan: PlanId(9)
            })
        );
        assert_eq!(guard.release("LTA", "weather"), None);
        assert_eq!(guard.check("LTA", "weather", "q2").unwrap(), GuardOutcome::Allowed);
    }

    #[test]
    fn sharing_grants_release_independently() {
        // Two subjects riding on one shared deployment: releasing one must
        // not evict the other (release is keyed per (subject, stream), never
        // per deployment).
        let mut guard = AccessGuard::new();
        guard.register("LTA", "weather", "q1", handle(1), DeploymentId(1), PlanId(0));
        guard.register("EMA", "weather", "q2", handle(2), DeploymentId(1), PlanId(0));
        assert_eq!(guard.release("LTA", "weather").unwrap().deployment, DeploymentId(1));
        assert!(!guard.is_active("LTA", "weather"));
        assert!(guard.is_active("EMA", "weather"));
    }
}
