//! Query-graph management (Section 3.3).
//!
//! Unlike the bounded-data eXACML system, where every request re-consults the
//! PDP, a stream consumer keeps using the handle it was given long after the
//! decision was made. If the owner later removes or modifies the policy, the
//! consumer must lose access immediately: "whenever a policy has been removed
//! or modified by the user, all query graphs that are spawned by the policy
//! are immediately withdrawn from back-end data stream engines."
//!
//! [`QueryGraphManager`] is that bookkeeping, one entry per **grant**. Under
//! plan sharing a deployment can back many grants (and, across policies with
//! identical cores, grants of *different* policies), so entries are keyed by
//! the grant's (subject, stream) pair — the same key the single-access guard
//! uses — not by deployment id. Policy-change events evict exactly the
//! grants the policy authorised; the caller then retires each grant's handle
//! and withdraws a shared deployment only when its last grant is gone.

use crate::shared_plan::PlanId;
use exacml_dsms::{DeploymentId, QueryGraph, StreamHandle};
use std::collections::HashMap;

/// One tracked grant.
#[derive(Debug, Clone)]
pub struct TrackedGraph {
    /// The (possibly shared) deployment the DSMS assigned.
    pub deployment: DeploymentId,
    /// The shared plan the grant rides on.
    pub plan: PlanId,
    /// The per-grant handle handed to the client.
    pub handle: StreamHandle,
    /// The policy that authorised the grant.
    pub policy_id: String,
    /// The subject the grant serves.
    pub subject: String,
    /// The source stream.
    pub stream: String,
    /// The merged query graph the grant delivers (core + residual combined).
    pub graph: QueryGraph,
}

/// Bookkeeping of live grants, indexed by policy.
#[derive(Debug, Default)]
pub struct QueryGraphManager {
    by_grant: HashMap<(String, String), TrackedGraph>,
}

impl QueryGraphManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> Self {
        QueryGraphManager::default()
    }

    fn key(subject: &str, stream: &str) -> (String, String) {
        (subject.to_ascii_lowercase(), stream.to_ascii_lowercase())
    }

    /// Record a grant.
    pub fn track(&mut self, entry: TrackedGraph) {
        self.by_grant.insert(Self::key(&entry.subject, &entry.stream), entry);
    }

    /// Forget a single grant (e.g. the client released it).
    pub fn untrack(&mut self, subject: &str, stream: &str) -> Option<TrackedGraph> {
        self.by_grant.remove(&Self::key(subject, stream))
    }

    /// The deployments backing grants of one policy (sorted, deduplicated —
    /// shared deployments appear once).
    #[must_use]
    pub fn deployments_of_policy(&self, policy_id: &str) -> Vec<DeploymentId> {
        let mut ids: Vec<DeploymentId> = self
            .by_grant
            .values()
            .filter(|t| t.policy_id == policy_id)
            .map(|t| t.deployment)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Remove every grant spawned by one policy from the bookkeeping,
    /// returning the removed entries (the caller retires their handles,
    /// releases the access-guard slots and withdraws deployments whose last
    /// grant is gone).
    pub fn evict_policy(&mut self, policy_id: &str) -> Vec<TrackedGraph> {
        let keys: Vec<(String, String)> = self
            .by_grant
            .iter()
            .filter(|(_, t)| t.policy_id == policy_id)
            .map(|(k, _)| k.clone())
            .collect();
        let mut evicted: Vec<TrackedGraph> =
            keys.iter().filter_map(|k| self.by_grant.remove(k)).collect();
        evicted.sort_by(|a, b| (a.deployment, &a.subject).cmp(&(b.deployment, &b.subject)));
        evicted
    }

    /// The entry behind a handle, if tracked.
    #[must_use]
    pub fn find_by_handle(&self, handle: &StreamHandle) -> Option<&TrackedGraph> {
        self.by_grant.values().find(|t| &t.handle == handle)
    }

    /// Number of live tracked grants.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.by_grant.len()
    }

    /// Number of live grants per policy (sorted by policy id), useful for
    /// observability and tests.
    #[must_use]
    pub fn per_policy_counts(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for t in self.by_grant.values() {
            *counts.entry(t.policy_id.clone()).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dep: u64, policy: &str, subject: &str) -> TrackedGraph {
        TrackedGraph {
            deployment: DeploymentId(dep),
            plan: PlanId(dep),
            handle: StreamHandle::mint("dsms", 100 + dep),
            policy_id: policy.to_string(),
            subject: subject.to_string(),
            stream: "weather".to_string(),
            graph: QueryGraph::identity("weather"),
        }
    }

    #[test]
    fn tracking_and_lookup() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        mgr.track(entry(2, "p1", "EMA"));
        mgr.track(entry(3, "p2", "NEA"));
        assert_eq!(mgr.live_count(), 3);
        assert_eq!(mgr.deployments_of_policy("p1"), vec![DeploymentId(1), DeploymentId(2)]);
        assert_eq!(mgr.deployments_of_policy("p3"), vec![]);
        let handle = StreamHandle::mint("dsms", 103);
        assert_eq!(mgr.find_by_handle(&handle).unwrap().policy_id, "p2");
        assert_eq!(mgr.per_policy_counts(), vec![("p1".to_string(), 2), ("p2".to_string(), 1)]);
    }

    #[test]
    fn shared_deployments_are_tracked_per_grant() {
        // Two subjects on one shared deployment: two grants, one deployment.
        let mut mgr = QueryGraphManager::new();
        mgr.track(TrackedGraph { subject: "EMA".into(), ..entry(7, "p1", "EMA") });
        mgr.track(TrackedGraph { subject: "LTA".into(), ..entry(7, "p1", "LTA") });
        assert_eq!(mgr.live_count(), 2);
        assert_eq!(mgr.deployments_of_policy("p1"), vec![DeploymentId(7)]);
        let evicted = mgr.evict_policy("p1");
        assert_eq!(evicted.len(), 2);
    }

    #[test]
    fn evicting_a_policy_removes_only_its_grants() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        mgr.track(entry(2, "p1", "EMA"));
        mgr.track(entry(3, "p2", "NEA"));
        let evicted = mgr.evict_policy("p1");
        assert_eq!(evicted.len(), 2);
        assert_eq!(mgr.live_count(), 1);
        assert!(mgr.deployments_of_policy("p1").is_empty());
        assert_eq!(mgr.deployments_of_policy("p2"), vec![DeploymentId(3)]);
    }

    #[test]
    fn untrack_single_grant_is_keyed_case_insensitively() {
        let mut mgr = QueryGraphManager::new();
        mgr.track(entry(1, "p1", "LTA"));
        assert!(mgr.untrack("lta", "WEATHER").is_some());
        assert!(mgr.untrack("LTA", "weather").is_none());
        assert_eq!(mgr.live_count(), 0);
    }
}
